//! Async authoritative UDP DNS server.
//!
//! The simulated networks publish their reverse zones through this server so
//! that the scanner exercises a real resolver code path over real sockets.
//! Fault injection reproduces the error classes of the paper's Fig. 6:
//! dropped datagrams become client-side *timeouts*, injected SERVFAILs are
//! *name-server failures*, and missing names are genuine *NXDOMAIN*s.

use crate::message::{Message, Opcode, Rcode};
use crate::response_cache::{CacheOutcome, ResponseCache, ResponseClass};
use crate::zone::{LookupResult, ZoneStore};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rdns_telemetry::{Counter, Determinism, Histogram, Registry};
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use tokio::net::UdpSocket;
use tokio::sync::watch;

/// Maximum UDP payload we accept (we are tolerant on receive).
const MAX_DATAGRAM: usize = 1500;

/// Upper bound on datagrams drained per batch pass. Bounds the worker's
/// scratch memory; the drain loop keeps re-filling until the receive queue
/// is empty, so this is a buffer size, not a throughput cap.
const MAX_BATCH: usize = 32;

/// Classic DNS-over-UDP response limit without EDNS (RFC 1035 §4.2.1):
/// larger responses are truncated with TC set, prompting TCP retry.
pub const UDP_PAYLOAD_LIMIT: usize = 512;

/// Probabilistic fault injection, sampled per query.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability of silently dropping the query (client sees a timeout).
    pub drop_probability: f64,
    /// Probability of answering SERVFAIL regardless of zone contents.
    pub servfail_probability: f64,
    /// Seed for the fault RNG, for reproducible experiments.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_probability: 0.0,
            servfail_probability: 0.0,
            seed: 0,
        }
    }
}

/// Counters exposed by the server: a typed facade over
/// [`rdns_telemetry::Counter`] cells. A default-constructed `ServerStats` is
/// unregistered (counters work but render nowhere); route it through a
/// [`Registry`] with [`UdpServer::with_registry`].
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Datagrams received.
    pub received: Counter,
    /// Datagrams that failed to parse.
    pub malformed: Counter,
    /// Responses with at least one answer record.
    pub answered: Counter,
    /// NXDOMAIN responses.
    pub nxdomain: Counter,
    /// NoError/NoData responses.
    pub nodata: Counter,
    /// SERVFAIL responses (injected faults).
    pub servfail: Counter,
    /// REFUSED responses (out-of-bailiwick queries).
    pub refused: Counter,
    /// Queries dropped by fault injection.
    pub dropped: Counter,
    /// Queries answered from the pre-rendered response cache.
    pub cache_hits: Counter,
    /// Cacheable queries that fell through to the full answer path.
    pub cache_misses: Counter,
    /// Cache misses caused by a generation-stamp mismatch (zone churn).
    pub cache_invalidations: Counter,
    /// Datagrams drained per socket wakeup (log2 buckets).
    pub batch_size: Histogram,
}

impl ServerStats {
    /// Registry-backed stats: every counter lives under `rdns_dns_server_*`.
    /// Server counters are classed [`Determinism::WallClock`] — what a wire
    /// server sees depends on client retries and kernel timing.
    pub fn with_registry(registry: &Registry) -> ServerStats {
        Self::registered(registry, "")
    }

    /// Like [`ServerStats::with_registry`] but with a Prometheus-style label
    /// suffix on every counter name, e.g. `labels = "shard=\"3\""` yields
    /// `rdns_dns_server_received_total{shard="3"}`. Used by
    /// [`ShardedUdpServer`] so each socket shard renders as its own sample
    /// line within the shared metric family.
    pub fn with_registry_labeled(registry: &Registry, labels: &str) -> ServerStats {
        let suffix = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        Self::registered(registry, &suffix)
    }

    fn registered(registry: &Registry, suffix: &str) -> ServerStats {
        let c = |name: &str, help| {
            registry.counter(&format!("{name}{suffix}"), help, Determinism::WallClock)
        };
        ServerStats {
            received: c("rdns_dns_server_received_total", "Datagrams received."),
            malformed: c(
                "rdns_dns_server_malformed_total",
                "Datagrams that failed to parse as DNS queries.",
            ),
            answered: c(
                "rdns_dns_server_answered_total",
                "Responses carrying at least one answer record.",
            ),
            nxdomain: c("rdns_dns_server_nxdomain_total", "NXDOMAIN responses."),
            nodata: c("rdns_dns_server_nodata_total", "NoError/NoData responses."),
            servfail: c(
                "rdns_dns_server_servfail_total",
                "SERVFAIL responses (injected faults).",
            ),
            refused: c(
                "rdns_dns_server_refused_total",
                "REFUSED responses (out-of-bailiwick queries).",
            ),
            dropped: c(
                "rdns_dns_server_dropped_total",
                "Queries dropped by fault injection.",
            ),
            cache_hits: c(
                "rdns_dns_response_cache_hits_total",
                "Queries answered from the pre-rendered response cache.",
            ),
            cache_misses: c(
                "rdns_dns_response_cache_misses_total",
                "Cacheable queries that fell through to the full answer path.",
            ),
            cache_invalidations: c(
                "rdns_dns_response_cache_invalidations_total",
                "Cache misses caused by a generation-stamp mismatch (zone churn).",
            ),
            batch_size: registry.histogram(
                &format!("rdns_dns_server_batch_size{suffix}"),
                "Datagrams drained per socket wakeup (log2 buckets).",
                Determinism::WallClock,
            ),
        }
    }

    /// Fold counts accumulated before registration into this facade.
    fn absorb(&self, old: &ServerStats) {
        self.received.absorb(&old.received);
        self.malformed.absorb(&old.malformed);
        self.answered.absorb(&old.answered);
        self.nxdomain.absorb(&old.nxdomain);
        self.nodata.absorb(&old.nodata);
        self.servfail.absorb(&old.servfail);
        self.refused.absorb(&old.refused);
        self.dropped.absorb(&old.dropped);
        self.cache_hits.absorb(&old.cache_hits);
        self.cache_misses.absorb(&old.cache_misses);
        self.cache_invalidations.absorb(&old.cache_invalidations);
        self.batch_size.absorb(&old.batch_size);
    }

    /// Snapshot all counters as plain values.
    pub fn snapshot(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            received: self.received.get(),
            malformed: self.malformed.get(),
            answered: self.answered.get(),
            nxdomain: self.nxdomain.get(),
            nodata: self.nodata.get(),
            servfail: self.servfail.get(),
            refused: self.refused.get(),
            dropped: self.dropped.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            cache_invalidations: self.cache_invalidations.get(),
        }
    }
}

/// Plain-value view of [`ServerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Datagrams received.
    pub received: u64,
    /// Datagrams that failed to parse.
    pub malformed: u64,
    /// Responses with at least one answer record.
    pub answered: u64,
    /// NXDOMAIN responses.
    pub nxdomain: u64,
    /// NoError/NoData responses.
    pub nodata: u64,
    /// SERVFAIL responses.
    pub servfail: u64,
    /// REFUSED responses.
    pub refused: u64,
    /// Fault-dropped queries.
    pub dropped: u64,
    /// Response-cache hits.
    pub cache_hits: u64,
    /// Response-cache misses.
    pub cache_misses: u64,
    /// Response-cache generation invalidations.
    pub cache_invalidations: u64,
}

/// Per-worker seed spacing for the fault RNG (golden-ratio increment). With
/// one worker the XOR term is zero, so single-worker fault sequences match
/// the historical single-loop server exactly.
const WORKER_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Shared, lock-free state behind every serve worker: the zone store is an
/// `RwLock` taken for read only on the answer path, and all counters are
/// relaxed atomics, so concurrent workers never serialize on a hot lock.
struct ServerCore {
    store: ZoneStore,
    faults: FaultConfig,
    stats: Arc<ServerStats>,
    /// Pre-rendered response cache; `None` disables it (the differential
    /// tests run a cache-less oracle server over the same live store).
    cache: Option<ResponseCache>,
}

/// The fields of a canonically-shaped PTR query that the cached fast path
/// needs: everything else about such a query is fixed by its shape.
struct FastQuery {
    id: u16,
    /// The recursion-desired bit (0 or 1), echoed into the response.
    rd: u8,
    /// /24 network prefix of the queried address (`u32::from(addr) >> 8`).
    prefix: u32,
    /// Final host octet of the queried address.
    octet: u8,
}

/// Shallow, allocation-free parse of a cacheable PTR query.
///
/// Accepts exactly the canonical wire shape the load generator and stub
/// resolvers emit: opcode QUERY, QR/TC clear, counts 1/0/0/0, an
/// uncompressed all-lowercase `d.c.b.a.in-addr.arpa.` qname with canonical
/// decimal octet labels, QTYPE PTR, QCLASS IN, nothing trailing. Anything
/// else returns `None` and takes the general decode path — strictness here
/// is what makes serving a patched cached response byte-identical to the
/// full `decode`→`response_to`→`encode` pipeline (which lowercases names
/// and re-encodes them without compression in the question section).
fn parse_cacheable_ptr_query(d: &[u8]) -> Option<FastQuery> {
    let id = u16::from_be_bytes([*d.first()?, *d.get(1)?]);
    let flags_hi = *d.get(2)?;
    // QR (0x80), opcode (0x78) and TC (0x02) must be zero; AA is ignored by
    // the responder and RD (0x01) is echoed. The low flags byte (RA/Z/rcode)
    // is entirely overwritten in responses, so it can hold anything.
    if flags_hi & 0xFA != 0 {
        return None;
    }
    if d.get(4..12)? != [0u8, 1, 0, 0, 0, 0, 0, 0].as_slice() {
        return None;
    }
    let mut pos = 12usize;
    let mut octets = [0u8; 4];
    for slot in octets.iter_mut() {
        let len = *d.get(pos)? as usize;
        if len == 0 || len > 3 {
            return None;
        }
        let label = d.get(pos + 1..pos + 1 + len)?;
        if len > 1 && label.first() == Some(&b'0') {
            return None;
        }
        let mut value = 0u32;
        for &c in label {
            if !c.is_ascii_digit() {
                return None;
            }
            value = value * 10 + u32::from(c.wrapping_sub(b'0'));
        }
        if value > 255 {
            return None;
        }
        *slot = value as u8;
        pos += 1 + len;
    }
    let suffix = [
        7u8, b'i', b'n', b'-', b'a', b'd', b'd', b'r', 4, b'a', b'r', b'p', b'a', 0,
    ];
    if d.get(pos..pos + 14)? != suffix.as_slice() {
        return None;
    }
    pos += 14;
    // QTYPE PTR, QCLASS IN, and the datagram must end with the question.
    if d.get(pos..pos + 4)? != [0u8, 12, 0, 1].as_slice() || pos + 4 != d.len() {
        return None;
    }
    // Labels run last-octet-first: `34.216.184.93.in-addr.arpa` is 93.184.216.34.
    let [last, c, b, a] = octets;
    Some(FastQuery {
        id,
        rd: flags_hi & 0x01,
        prefix: (u32::from(a) << 16) | (u32::from(b) << 8) | u32::from(c),
        octet: last,
    })
}

/// Encode `response` into `out` (reusing its allocation), truncating per
/// RFC 1035 §4.2.1 when it exceeds the UDP payload limit. Returns whether
/// truncation happened (a truncated rendering must not be cached).
fn encode_bounded(mut response: Message, out: &mut Vec<u8>) -> bool {
    response.encode_into(out);
    if out.len() <= UDP_PAYLOAD_LIMIT {
        return false;
    }
    response.answers.clear();
    response.authorities.clear();
    response.additionals.clear();
    response.header.truncated = true;
    response.encode_into(out);
    true
}

impl ServerCore {
    /// Serve one datagram, writing the reply into `out` (reusing its
    /// allocation). Returns `false` when there is nothing to send
    /// (malformed input or a fault-injected drop).
    fn handle_datagram_into(&self, datagram: &[u8], rng: &mut SmallRng, out: &mut Vec<u8>) -> bool {
        if let Some(cache) = self.cache.as_ref() {
            if let Some(fq) = parse_cacheable_ptr_query(datagram) {
                return self.serve_cacheable(cache, datagram, &fq, rng, out);
            }
        }
        let query = match Message::decode(datagram) {
            Ok(m) => m,
            Err(_) => {
                self.stats.malformed.inc();
                return false;
            }
        };
        if query.header.response {
            // Not a query at all; ignore silently like BIND does.
            self.stats.malformed.inc();
            return false;
        }
        if self.faults.drop_probability > 0.0 && rng.gen::<f64>() < self.faults.drop_probability {
            self.stats.dropped.inc();
            return false;
        }
        encode_bounded(self.answer(&query, rng), out);
        true
    }

    /// The cached fast path for a canonically-shaped PTR query.
    ///
    /// Observable behaviour is identical to the general path: the fault
    /// draws happen in the same order (drop, then SERVFAIL) under the same
    /// `> 0.0` guards, so cached and uncached servers consume identical RNG
    /// streams; counters bump the same cells; and the bytes sent are
    /// byte-for-byte what `decode`→`answer`→`encode` would have produced
    /// (see [`ResponseCache`] for why ID/RD patching is exact).
    fn serve_cacheable(
        &self,
        cache: &ResponseCache,
        datagram: &[u8],
        fq: &FastQuery,
        rng: &mut SmallRng,
        out: &mut Vec<u8>,
    ) -> bool {
        if self.faults.drop_probability > 0.0 && rng.gen::<f64>() < self.faults.drop_probability {
            self.stats.dropped.inc();
            return false;
        }
        if self.faults.servfail_probability > 0.0
            && rng.gen::<f64>() < self.faults.servfail_probability
        {
            self.stats.servfail.inc();
            return self.render_forced(datagram, Rcode::ServFail, out);
        }
        // The stamp is read before the cache probe (and before any miss
        // render), which is what makes generation-checked hits safe: see
        // the coherence contract in [`crate::response_cache`].
        let Some(stamp) = self.store.rev24_generation(fq.prefix) else {
            // No /24 stripe, or deep reverse zones could shadow it — the
            // stamp can't vouch for freshness, so serve uncached.
            self.stats.cache_misses.inc();
            return self.render_uncached(datagram, out).is_some() || !out.is_empty();
        };
        match cache.lookup(fq.prefix, fq.octet, stamp, fq.id, fq.rd, out) {
            CacheOutcome::Hit(class) => {
                self.stats.cache_hits.inc();
                self.class_counter(class).inc();
                return true;
            }
            CacheOutcome::MissStale => {
                self.stats.cache_invalidations.inc();
                self.stats.cache_misses.inc();
            }
            CacheOutcome::MissCold => self.stats.cache_misses.inc(),
        }
        match self.render_uncached(datagram, out) {
            Some(class) => {
                cache.insert(fq.prefix, fq.octet, stamp, class, out);
                true
            }
            None => !out.is_empty(),
        }
    }

    /// Decode + answer from the store + encode, bumping the same counters
    /// as [`ServerCore::answer`]. Returns the response class when the
    /// rendering is cacheable (NoError/NXDOMAIN, untruncated), `None`
    /// otherwise. `out` is left empty only if the datagram fails to decode
    /// (impossible after the fast parse accepted it, but accounted anyway).
    fn render_uncached(&self, datagram: &[u8], out: &mut Vec<u8>) -> Option<ResponseClass> {
        let Ok(query) = Message::decode(datagram) else {
            self.stats.malformed.inc();
            out.clear();
            return None;
        };
        let resp = answer_from_store(&self.store, &query);
        let class = match (resp.header.rcode, resp.answers.is_empty()) {
            (Rcode::NoError, false) => {
                self.stats.answered.inc();
                Some(ResponseClass::Answered)
            }
            (Rcode::NoError, true) => {
                self.stats.nodata.inc();
                Some(ResponseClass::NoData)
            }
            (Rcode::NxDomain, _) => {
                self.stats.nxdomain.inc();
                Some(ResponseClass::NxDomain)
            }
            (Rcode::Refused, _) => {
                self.stats.refused.inc();
                None
            }
            _ => {
                self.stats.malformed.inc();
                None
            }
        };
        if encode_bounded(resp, out) {
            return None;
        }
        class
    }

    /// Decode and answer with a fixed rcode (the injected-SERVFAIL path).
    fn render_forced(&self, datagram: &[u8], rcode: Rcode, out: &mut Vec<u8>) -> bool {
        let Ok(query) = Message::decode(datagram) else {
            self.stats.malformed.inc();
            return false;
        };
        encode_bounded(Message::response_to(&query, rcode), out);
        true
    }

    fn class_counter(&self, class: ResponseClass) -> &Counter {
        match class {
            ResponseClass::Answered => &self.stats.answered,
            ResponseClass::NoData => &self.stats.nodata,
            ResponseClass::NxDomain => &self.stats.nxdomain,
        }
    }

    fn answer(&self, query: &Message, rng: &mut SmallRng) -> Message {
        if query.header.opcode != Opcode::Query || query.questions.len() != 1 {
            self.stats.malformed.inc();
            return Message::response_to(query, Rcode::NotImp);
        }
        if self.faults.servfail_probability > 0.0
            && rng.gen::<f64>() < self.faults.servfail_probability
        {
            self.stats.servfail.inc();
            return Message::response_to(query, Rcode::ServFail);
        }
        let resp = answer_from_store(&self.store, query);
        let counter = match (resp.header.rcode, resp.answers.is_empty()) {
            (Rcode::NoError, false) => &self.stats.answered,
            (Rcode::NoError, true) => &self.stats.nodata,
            (Rcode::NxDomain, _) => &self.stats.nxdomain,
            (Rcode::Refused, _) => &self.stats.refused,
            _ => &self.stats.malformed,
        };
        counter.inc();
        resp
    }

    /// One serve loop. Multiple workers run this concurrently over the same
    /// socket; the kernel delivers each datagram to exactly one of them.
    /// Each wakeup drains every queued datagram in batches of up to
    /// [`MAX_BATCH`], answering them back-to-back before re-arming, so the
    /// executor's poll cadence is amortized over N queries instead of 1.
    async fn worker_loop(
        self: Arc<Self>,
        worker: u64,
        socket: Arc<UdpSocket>,
        mut shutdown_rx: watch::Receiver<bool>,
    ) -> io::Result<()> {
        let mut rng =
            SmallRng::seed_from_u64(self.faults.seed ^ worker.wrapping_mul(WORKER_SEED_STRIDE));
        let mut batch = RecvBatch::new();
        let mut reply = Vec::with_capacity(MAX_DATAGRAM);
        loop {
            tokio::select! {
                _ = shutdown_rx.changed() => {
                    if *shutdown_rx.borrow() {
                        return Ok(());
                    }
                }
                ready = socket.readable() => {
                    ready?;
                    self.drain_ready(&socket, &mut batch, &mut reply, &mut rng).await?;
                }
            }
        }
    }

    /// Drain and answer every datagram queued on `socket`. Receives up to
    /// [`MAX_BATCH`] datagrams into the reusable batch buffers, answers
    /// them back-to-back, and repeats until the queue is empty.
    async fn drain_ready(
        &self,
        socket: &UdpSocket,
        batch: &mut RecvBatch,
        reply: &mut Vec<u8>,
        rng: &mut SmallRng,
    ) -> io::Result<()> {
        loop {
            batch.meta.clear();
            for buf in batch.bufs.iter_mut() {
                match socket.try_recv_from(buf) {
                    Ok((len, peer)) => batch.meta.push((len, peer)),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) => return Err(e),
                }
            }
            if batch.meta.is_empty() {
                return Ok(());
            }
            self.stats.batch_size.observe(batch.meta.len() as u64);
            for (i, &(len, peer)) in batch.meta.iter().enumerate() {
                self.stats.received.inc();
                // `try_recv_from` can't report more than the buffer holds,
                // but the serve loop must not be one kernel quirk away from
                // a panic: an impossible slot or length counts as malformed.
                let Some(buf) = batch.bufs.get(i) else {
                    self.stats.malformed.inc();
                    continue;
                };
                let Some(datagram) = buf.get(..len) else {
                    self.stats.malformed.inc();
                    continue;
                };
                if self.handle_datagram_into(datagram, rng, reply) {
                    // Best-effort send; a full socket buffer is the
                    // client's timeout problem, mirroring real servers.
                    match socket.try_send_to(reply, peer) {
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            let _ = socket.send_to(reply, peer).await;
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}

/// Reusable receive-side scratch for one serve worker: [`MAX_BATCH`]
/// datagram buffers plus the `(length, peer)` metadata of the filled ones.
struct RecvBatch {
    bufs: Vec<Vec<u8>>,
    meta: Vec<(usize, SocketAddr)>,
}

impl RecvBatch {
    fn new() -> RecvBatch {
        RecvBatch {
            bufs: (0..MAX_BATCH).map(|_| vec![0u8; MAX_DATAGRAM]).collect(),
            meta: Vec::with_capacity(MAX_BATCH),
        }
    }
}

/// An authoritative UDP server bound to a local address.
///
/// [`UdpServer::run`] serves with a pool of worker tasks sharing the socket
/// (see [`UdpServer::with_workers`]), so independent queries are parsed and
/// answered concurrently — the pipelined wire path of the daily full-sweep
/// measurement needs the server side to keep up with hundreds of in-flight
/// queries.
pub struct UdpServer {
    socket: Arc<UdpSocket>,
    core: Arc<ServerCore>,
    workers: usize,
    shutdown_tx: watch::Sender<bool>,
    shutdown_rx: watch::Receiver<bool>,
}

/// Default size of the serve worker pool.
pub const DEFAULT_SERVER_WORKERS: usize = 4;

impl UdpServer {
    /// Bind to `addr` (use port 0 for an ephemeral port) serving `store`.
    pub async fn bind(
        addr: SocketAddr,
        store: ZoneStore,
        faults: FaultConfig,
    ) -> io::Result<UdpServer> {
        let socket = UdpSocket::bind(addr).await?;
        let (shutdown_tx, shutdown_rx) = watch::channel(false);
        Ok(UdpServer {
            socket: Arc::new(socket),
            core: Arc::new(ServerCore {
                store,
                faults,
                stats: Arc::new(ServerStats::default()),
                cache: Some(ResponseCache::new()),
            }),
            workers: DEFAULT_SERVER_WORKERS,
            shutdown_tx,
            shutdown_rx,
        })
    }

    /// Serve with `n` concurrent worker tasks (clamped to at least 1).
    pub fn with_workers(mut self, n: usize) -> UdpServer {
        self.workers = n.max(1);
        self
    }

    /// Enable or disable the pre-rendered response cache (default: on).
    /// Disabling it forces every query through the full
    /// decode→answer→encode path — the differential tests use this to run
    /// a cache-less oracle over the same live store. Must be called before
    /// [`UdpServer::run`].
    pub fn with_response_cache(mut self, enabled: bool) -> UdpServer {
        let core = Arc::get_mut(&mut self.core)
            .expect("with_response_cache must be called before the server starts");
        core.cache = if enabled {
            Some(ResponseCache::new())
        } else {
            None
        };
        self
    }

    /// Route the server's counters through `registry` (as
    /// `rdns_dns_server_*`). Counts accumulated so far are carried over.
    /// Must be called before [`UdpServer::run`], while the core is still
    /// exclusively owned by the builder.
    pub fn with_registry(mut self, registry: &Registry) -> UdpServer {
        let core = Arc::get_mut(&mut self.core)
            .expect("with_registry must be called before the server starts");
        let stats = ServerStats::with_registry(registry);
        stats.absorb(&core.stats);
        core.stats = Arc::new(stats);
        self
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.core.stats)
    }

    /// A handle that stops the serve loop when invoked.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            tx: self.shutdown_tx.clone(),
        }
    }

    /// Serve until shut down. Typically run via `tokio::spawn`. Spawns the
    /// worker pool and resolves once every worker has exited.
    pub async fn run(self) -> io::Result<()> {
        let UdpServer {
            socket,
            core,
            workers,
            shutdown_rx,
            shutdown_tx: _shutdown_tx,
        } = self;
        let handles: Vec<_> = (0..workers as u64)
            .map(|w| {
                let core = Arc::clone(&core);
                let socket = Arc::clone(&socket);
                let rx = shutdown_rx.clone();
                tokio::spawn(core.worker_loop(w, socket, rx))
            })
            .collect();
        let mut result = Ok(());
        for handle in handles {
            let outcome = match handle.await {
                Ok(Ok(())) => Ok(()),
                Ok(Err(e)) => Err(e),
                Err(_) => Err(io::Error::other("server worker panicked")),
            };
            if let Err(e) = outcome {
                if result.is_ok() {
                    // First failure: stop the sibling workers too.
                    let _ = _shutdown_tx.send(true);
                    result = Err(e);
                }
            }
        }
        result
    }

    /// Build the authoritative answer for `query` (pure; used by tests too).
    pub fn answer(&self, query: &Message, rng: &mut SmallRng) -> Message {
        self.core.answer(query, rng)
    }
}

/// Per-shard seed spacing for the fault RNG. A different constant from
/// [`WORKER_SEED_STRIDE`] so that (shard, worker) pairs never collide, and
/// shard 0 reproduces the unsharded server's fault sequence exactly.
const SHARD_SEED_STRIDE: u64 = 0xD1B5_4A32_D192_ED03;

/// SO_REUSEPORT-style sharded UDP front: `n` independent sockets, each with
/// its own worker pool, all answering from one shared lock-striped
/// [`ZoneStore`].
///
/// Real deployments spread load across a socket group with `SO_REUSEPORT`
/// and let the kernel hash flows onto sockets. The shim runtime has no
/// kernel-side distribution, so the client picks the shard instead (the
/// load generator assigns each client to `client % shards`) — the serving
/// economics are the same: independent receive queues, no shared socket
/// lock, contention only on the striped zone-store reads.
///
/// Shards are homogeneous. Per-shard observability goes through
/// [`ShardedUdpServer::with_registry`], which labels every counter with
/// `shard="k"`.
pub struct ShardedUdpServer {
    shards: Vec<UdpServer>,
}

impl ShardedUdpServer {
    /// Bind `n` sockets (clamped to at least 1) on `addr` — use port 0 so
    /// every shard gets its own ephemeral port. Shard `k` derives its fault
    /// seed as `faults.seed ^ k·SHARD_SEED_STRIDE`, so fault decisions stay
    /// reproducible per shard and uncorrelated across shards.
    pub async fn bind(
        addr: SocketAddr,
        store: ZoneStore,
        faults: FaultConfig,
        n: usize,
    ) -> io::Result<ShardedUdpServer> {
        let mut shards = Vec::with_capacity(n.max(1));
        for k in 0..n.max(1) as u64 {
            let shard_faults = FaultConfig {
                seed: faults.seed ^ k.wrapping_mul(SHARD_SEED_STRIDE),
                ..faults
            };
            shards.push(UdpServer::bind(addr, store.clone(), shard_faults).await?);
        }
        Ok(ShardedUdpServer { shards })
    }

    /// Serve with `n` worker tasks per shard (clamped to at least 1).
    pub fn with_workers(mut self, n: usize) -> ShardedUdpServer {
        self.shards = self
            .shards
            .into_iter()
            .map(|s| s.with_workers(n))
            .collect();
        self
    }

    /// Enable or disable the pre-rendered response cache on every shard
    /// (default: on). Must precede [`ShardedUdpServer::run`].
    pub fn with_response_cache(mut self, enabled: bool) -> ShardedUdpServer {
        self.shards = self
            .shards
            .into_iter()
            .map(|s| s.with_response_cache(enabled))
            .collect();
        self
    }

    /// Route every shard's counters through `registry`, labeled
    /// `rdns_dns_server_*{shard="k"}`. Must precede [`ShardedUdpServer::run`].
    pub fn with_registry(mut self, registry: &Registry) -> ShardedUdpServer {
        for (k, shard) in self.shards.iter_mut().enumerate() {
            let core = Arc::get_mut(&mut shard.core)
                .expect("with_registry must be called before the server starts");
            let stats =
                ServerStats::with_registry_labeled(registry, &format!("shard=\"{k}\""));
            stats.absorb(&core.stats);
            core.stats = Arc::new(stats);
        }
        self
    }

    /// Number of socket shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The bound address of every shard, in shard order.
    pub fn addrs(&self) -> io::Result<Vec<SocketAddr>> {
        self.shards.iter().map(|s| s.local_addr()).collect()
    }

    /// Per-shard statistics handles, in shard order.
    pub fn stats(&self) -> Vec<Arc<ServerStats>> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// One handle that stops every shard.
    pub fn shutdown_handle(&self) -> ShardedShutdownHandle {
        ShardedShutdownHandle {
            handles: self.shards.iter().map(|s| s.shutdown_handle()).collect(),
        }
    }

    /// Serve all shards until shut down; resolves once every shard's worker
    /// pool has exited, with the first shard error (if any).
    pub async fn run(self) -> io::Result<()> {
        let handles: Vec<_> = self
            .shards
            .into_iter()
            .map(|s| tokio::spawn(s.run()))
            .collect();
        let mut result = Ok(());
        for handle in handles {
            let outcome = match handle.await {
                Ok(r) => r,
                Err(_) => Err(io::Error::other("server shard panicked")),
            };
            if result.is_ok() {
                result = outcome;
            }
        }
        result
    }
}

/// Stops every shard of a [`ShardedUdpServer`].
#[derive(Debug, Clone)]
pub struct ShardedShutdownHandle {
    handles: Vec<ShutdownHandle>,
}

impl ShardedShutdownHandle {
    /// Request shutdown on all shards.
    pub fn shutdown(&self) {
        for h in &self.handles {
            h.shutdown();
        }
    }
}

/// The pure authoritative-answer logic shared by the UDP and TCP fronts.
pub fn answer_from_store(store: &ZoneStore, query: &Message) -> Message {
    if query.header.opcode != Opcode::Query || query.questions.len() != 1 {
        return Message::response_to(query, Rcode::NotImp);
    }
    let Some(q) = query.questions.first() else {
        return Message::response_to(query, Rcode::NotImp);
    };
    match store.lookup(&q.qname, q.qtype) {
        LookupResult::Answer(rrs) => {
            let mut resp = Message::response_to(query, Rcode::NoError);
            resp.answers = rrs;
            resp
        }
        LookupResult::NoData { soa } => {
            let mut resp = Message::response_to(query, Rcode::NoError);
            resp.authorities.push(soa);
            resp
        }
        LookupResult::NxDomain { soa } => {
            let mut resp = Message::response_to(query, Rcode::NxDomain);
            resp.authorities.push(soa);
            resp
        }
        LookupResult::NotAuthoritative => Message::response_to(query, Rcode::Refused),
    }
}

/// DNS-over-TCP front (RFC 1035 §4.2.2): two-octet length-prefixed messages.
/// Serves the same zone store as the UDP front; clients retry here when a
/// UDP response came back truncated.
pub struct TcpServer {
    listener: tokio::net::TcpListener,
    store: ZoneStore,
    shutdown_tx: watch::Sender<bool>,
    shutdown_rx: watch::Receiver<bool>,
}

impl TcpServer {
    /// Bind to `addr` (port 0 for ephemeral).
    pub async fn bind(addr: SocketAddr, store: ZoneStore) -> io::Result<TcpServer> {
        let listener = tokio::net::TcpListener::bind(addr).await?;
        let (shutdown_tx, shutdown_rx) = watch::channel(false);
        Ok(TcpServer {
            listener,
            store,
            shutdown_tx,
            shutdown_rx,
        })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops the accept loop.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            tx: self.shutdown_tx.clone(),
        }
    }

    /// Accept and serve connections until shut down.
    pub async fn run(self) -> io::Result<()> {
        let mut shutdown_rx = self.shutdown_rx.clone();
        loop {
            tokio::select! {
                _ = shutdown_rx.changed() => {
                    if *shutdown_rx.borrow() {
                        return Ok(());
                    }
                }
                accepted = self.listener.accept() => {
                    let (stream, _) = accepted?;
                    let store = self.store.clone();
                    tokio::spawn(async move {
                        let _ = Self::serve_connection(stream, store).await;
                    });
                }
            }
        }
    }

    async fn serve_connection(
        mut stream: tokio::net::TcpStream,
        store: ZoneStore,
    ) -> io::Result<()> {
        use tokio::io::{AsyncReadExt, AsyncWriteExt};
        loop {
            let mut len_buf = [0u8; 2];
            if stream.read_exact(&mut len_buf).await.is_err() {
                return Ok(()); // peer closed
            }
            let len = u16::from_be_bytes(len_buf) as usize;
            let mut buf = vec![0u8; len];
            stream.read_exact(&mut buf).await?;
            let Ok(query) = Message::decode(&buf) else {
                return Ok(()); // drop the connection on garbage
            };
            let resp = answer_from_store(&store, &query).encode();
            stream.write_all(&(resp.len() as u16).to_be_bytes()).await?;
            stream.write_all(&resp).await?;
        }
    }
}

/// Stops a running [`UdpServer`].
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    tx: watch::Sender<bool>,
}

impl ShutdownHandle {
    /// Request shutdown; the serve loop exits at its next iteration.
    pub fn shutdown(&self) {
        let _ = self.tx.send(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Question, RecordType};
    use crate::name::DnsName;
    use std::net::Ipv4Addr;

    fn test_store() -> ZoneStore {
        let store = ZoneStore::new();
        let a: Ipv4Addr = "192.0.2.34".parse().unwrap();
        store.ensure_reverse_zone(a);
        store.set_ptr(a, "brians-iphone.example.edu".parse().unwrap(), 300);
        store
    }

    async fn spawn_server(faults: FaultConfig) -> (SocketAddr, ShutdownHandle, Arc<ServerStats>) {
        let server = UdpServer::bind("127.0.0.1:0".parse().unwrap(), test_store(), faults)
            .await
            .unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = server.shutdown_handle();
        let stats = server.stats();
        tokio::spawn(server.run());
        (addr, shutdown, stats)
    }

    async fn raw_query(addr: SocketAddr, msg: &Message) -> Message {
        let sock = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        sock.send_to(&msg.encode(), addr).await.unwrap();
        let mut buf = vec![0u8; 1500];
        let (n, _) = sock.recv_from(&mut buf).await.unwrap();
        Message::decode(&buf[..n]).unwrap()
    }

    #[test]
    fn zero_question_query_answers_notimp_without_panicking() {
        // The decode path hands `answer_from_store` whatever parsed; a
        // question-free query must branch into NotImp, not index into an
        // empty `questions` vec.
        let store = test_store();
        let mut q = Message::query(9, Question::ptr_for("192.0.2.34".parse().unwrap()));
        q.questions.clear();
        let resp = answer_from_store(&store, &q);
        assert_eq!(resp.header.rcode, Rcode::NotImp);
        assert_eq!(resp.header.id, 9);
    }

    #[tokio::test]
    async fn serves_ptr_answer() {
        let (addr, shutdown, stats) = spawn_server(FaultConfig::default()).await;
        let q = Message::query(7, Question::ptr_for("192.0.2.34".parse().unwrap()));
        let resp = raw_query(addr, &q).await;
        assert_eq!(resp.header.rcode, Rcode::NoError);
        assert_eq!(resp.header.id, 7);
        assert!(resp.header.authoritative);
        assert_eq!(
            resp.first_ptr().unwrap().to_string(),
            "brians-iphone.example.edu."
        );
        assert_eq!(stats.snapshot().answered, 1);
        shutdown.shutdown();
    }

    #[tokio::test]
    async fn serves_nxdomain_with_soa() {
        let (addr, shutdown, stats) = spawn_server(FaultConfig::default()).await;
        let q = Message::query(8, Question::ptr_for("192.0.2.35".parse().unwrap()));
        let resp = raw_query(addr, &q).await;
        assert_eq!(resp.header.rcode, Rcode::NxDomain);
        assert_eq!(resp.answers.len(), 0);
        assert_eq!(resp.authorities.len(), 1);
        assert_eq!(stats.snapshot().nxdomain, 1);
        shutdown.shutdown();
    }

    #[tokio::test]
    async fn refuses_foreign_names() {
        let (addr, shutdown, stats) = spawn_server(FaultConfig::default()).await;
        let q = Message::query(
            9,
            Question::new("www.example.com".parse().unwrap(), RecordType::A),
        );
        let resp = raw_query(addr, &q).await;
        assert_eq!(resp.header.rcode, Rcode::Refused);
        assert_eq!(stats.snapshot().refused, 1);
        shutdown.shutdown();
    }

    #[tokio::test]
    async fn injected_servfail() {
        let faults = FaultConfig {
            servfail_probability: 1.0,
            ..Default::default()
        };
        let (addr, shutdown, stats) = spawn_server(faults).await;
        let q = Message::query(1, Question::ptr_for("192.0.2.34".parse().unwrap()));
        let resp = raw_query(addr, &q).await;
        assert_eq!(resp.header.rcode, Rcode::ServFail);
        assert_eq!(stats.snapshot().servfail, 1);
        shutdown.shutdown();
    }

    #[tokio::test]
    async fn drops_are_silent() {
        let faults = FaultConfig {
            drop_probability: 1.0,
            ..Default::default()
        };
        let (addr, shutdown, stats) = spawn_server(faults).await;
        let q = Message::query(2, Question::ptr_for("192.0.2.34".parse().unwrap()));
        let sock = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        sock.send_to(&q.encode(), addr).await.unwrap();
        let mut buf = [0u8; 512];
        let got = tokio::time::timeout(
            std::time::Duration::from_millis(200),
            sock.recv_from(&mut buf),
        )
        .await;
        assert!(got.is_err(), "drop faults must yield client timeouts");
        // Stats may race slightly with the recv; poll briefly.
        for _ in 0..50 {
            if stats.snapshot().dropped == 1 {
                break;
            }
            tokio::time::sleep(std::time::Duration::from_millis(10)).await;
        }
        assert_eq!(stats.snapshot().dropped, 1);
        shutdown.shutdown();
    }

    #[tokio::test]
    async fn malformed_datagrams_ignored() {
        let (addr, shutdown, stats) = spawn_server(FaultConfig::default()).await;
        let sock = UdpSocket::bind("127.0.0.1:0").await.unwrap();
        sock.send_to(&[1, 2, 3], addr).await.unwrap();
        // Follow with a valid query to prove the server survived.
        let q = Message::query(3, Question::ptr_for("192.0.2.34".parse().unwrap()));
        sock.send_to(&q.encode(), addr).await.unwrap();
        let mut buf = vec![0u8; 1500];
        let (n, _) = sock.recv_from(&mut buf).await.unwrap();
        let resp = Message::decode(&buf[..n]).unwrap();
        assert_eq!(resp.header.id, 3);
        assert_eq!(stats.snapshot().malformed, 1);
        shutdown.shutdown();
    }

    #[tokio::test]
    async fn oversized_responses_truncated_on_udp() {
        use crate::message::RecordData;
        let store = test_store();
        // A TXT record fat enough to blow the 512-octet UDP limit.
        let name: crate::name::DnsName = "big.2.0.192.in-addr.arpa".parse().unwrap();
        let mut zone = crate::zone::Zone::new("2.0.192.in-addr.arpa".parse().unwrap());
        zone.upsert(crate::message::ResourceRecord::new(
            name.clone(),
            300,
            RecordData::Txt(vec!["x".repeat(255), "y".repeat(255), "z".repeat(200)]),
        ));
        store.add_zone(zone);
        let server = UdpServer::bind("127.0.0.1:0".parse().unwrap(), store, FaultConfig::default())
            .await
            .unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = server.shutdown_handle();
        tokio::spawn(server.run());

        let q = Message::query(5, Question::new(name, RecordType::TXT));
        let resp = raw_query(addr, &q).await;
        assert!(resp.header.truncated, "TC must be set");
        assert!(resp.answers.is_empty(), "truncated responses carry no answers");
        assert!(resp.encode().len() <= UDP_PAYLOAD_LIMIT);
        shutdown.shutdown();
    }

    #[tokio::test]
    async fn tcp_front_serves_full_responses() {
        use tokio::io::{AsyncReadExt, AsyncWriteExt};
        let store = test_store();
        let tcp = TcpServer::bind("127.0.0.1:0".parse().unwrap(), store)
            .await
            .unwrap();
        let addr = tcp.local_addr().unwrap();
        let shutdown = tcp.shutdown_handle();
        tokio::spawn(tcp.run());

        let q = Message::query(9, Question::ptr_for("192.0.2.34".parse().unwrap()));
        let bytes = q.encode();
        let mut stream = tokio::net::TcpStream::connect(addr).await.unwrap();
        stream
            .write_all(&(bytes.len() as u16).to_be_bytes())
            .await
            .unwrap();
        stream.write_all(&bytes).await.unwrap();
        let mut len_buf = [0u8; 2];
        stream.read_exact(&mut len_buf).await.unwrap();
        let mut buf = vec![0u8; u16::from_be_bytes(len_buf) as usize];
        stream.read_exact(&mut buf).await.unwrap();
        let resp = Message::decode(&buf).unwrap();
        assert_eq!(resp.header.id, 9);
        assert_eq!(
            resp.first_ptr().unwrap().to_string(),
            "brians-iphone.example.edu."
        );
        shutdown.shutdown();
    }

    #[tokio::test]
    async fn sharded_server_answers_on_every_shard() {
        let store = test_store();
        let server = ShardedUdpServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            store,
            FaultConfig::default(),
            3,
        )
        .await
        .unwrap();
        assert_eq!(server.shard_count(), 3);
        let addrs = server.addrs().unwrap();
        assert_eq!(addrs.len(), 3);
        // Ephemeral binding must give every shard a distinct port.
        let mut ports: Vec<u16> = addrs.iter().map(|a| a.port()).collect();
        ports.dedup();
        assert_eq!(ports.len(), 3, "shards must not share a port: {addrs:?}");
        let shutdown = server.shutdown_handle();
        let stats = server.stats();
        tokio::spawn(server.run());

        for (k, addr) in addrs.iter().enumerate() {
            let q = Message::query(k as u16, Question::ptr_for("192.0.2.34".parse().unwrap()));
            let resp = raw_query(*addr, &q).await;
            assert_eq!(resp.header.rcode, Rcode::NoError, "shard {k}");
            assert_eq!(resp.header.id, k as u16);
        }
        for (k, s) in stats.iter().enumerate() {
            assert_eq!(s.snapshot().answered, 1, "shard {k} must have answered once");
        }
        shutdown.shutdown();
    }

    #[tokio::test]
    async fn sharded_server_shares_one_live_store() {
        let store = test_store();
        let server = ShardedUdpServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            store.clone(),
            FaultConfig::default(),
            2,
        )
        .await
        .unwrap();
        let addrs = server.addrs().unwrap();
        let shutdown = server.shutdown_handle();
        tokio::spawn(server.run());

        // A record added after bind is visible through every shard: all
        // sockets answer from the same striped store, not copies.
        let target: Ipv4Addr = "192.0.2.77".parse().unwrap();
        store.set_ptr(target, "shared-device.example.edu".parse().unwrap(), 300);
        for (k, addr) in addrs.iter().enumerate() {
            let q = Message::query(40 + k as u16, Question::ptr_for(target));
            let resp = raw_query(*addr, &q).await;
            assert_eq!(resp.header.rcode, Rcode::NoError, "shard {k}");
            assert_eq!(
                resp.first_ptr().unwrap().to_string(),
                "shared-device.example.edu."
            );
        }
        shutdown.shutdown();
    }

    #[tokio::test]
    async fn sharded_registry_labels_counters_per_shard() {
        let registry = Registry::new();
        let server = ShardedUdpServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            test_store(),
            FaultConfig::default(),
            2,
        )
        .await
        .unwrap()
        .with_registry(&registry);
        let addrs = server.addrs().unwrap();
        let shutdown = server.shutdown_handle();
        tokio::spawn(server.run());

        let q = Message::query(11, Question::ptr_for("192.0.2.34".parse().unwrap()));
        let _ = raw_query(addrs[1], &q).await;
        let text = registry.render_prometheus();
        assert!(
            text.contains("rdns_dns_server_answered_total{shard=\"1\"} 1"),
            "queried shard must show its labeled count: {text}"
        );
        assert!(
            text.contains("rdns_dns_server_answered_total{shard=\"0\"} 0"),
            "idle shard must render zero: {text}"
        );
        shutdown.shutdown();
    }

    #[test]
    fn fast_parse_accepts_canonical_ptr_queries_only() {
        let mut q = Message::query(0xBEEF, Question::ptr_for("93.184.216.34".parse().unwrap()));
        q.header.recursion_desired = true;
        let bytes = q.encode();
        let fq = parse_cacheable_ptr_query(&bytes).expect("canonical query must fast-parse");
        assert_eq!(fq.id, 0xBEEF);
        assert_eq!(fq.rd, 1);
        assert_eq!(fq.prefix, u32::from(Ipv4Addr::new(93, 184, 216, 34)) >> 8);
        assert_eq!(fq.octet, 34);

        // Anything off-shape must fall through to the general decode path.
        let mut tc = bytes.clone();
        tc[2] |= 0x02; // TC set: the response echoes it, so no fast path
        assert!(parse_cacheable_ptr_query(&tc).is_none());
        let mut resp_bit = bytes.clone();
        resp_bit[2] |= 0x80;
        assert!(parse_cacheable_ptr_query(&resp_bit).is_none());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(parse_cacheable_ptr_query(&trailing).is_none());
        let mut truncated_dgram = bytes.clone();
        truncated_dgram.pop();
        assert!(parse_cacheable_ptr_query(&truncated_dgram).is_none());
        let a_query = Message::query(
            1,
            Question::new("34.216.184.93.in-addr.arpa".parse().unwrap(), RecordType::A),
        );
        assert!(parse_cacheable_ptr_query(&a_query.encode()).is_none());
        let forward = Message::query(
            1,
            Question::new("www.example.com".parse().unwrap(), RecordType::PTR),
        );
        assert!(parse_cacheable_ptr_query(&forward.encode()).is_none());
        // Non-canonical decimal ("034") decodes to the same name but is not
        // byte-identical after re-encoding, so it must not fast-parse.
        let mut padded = bytes.clone();
        padded[12] = 3; // first label "34" becomes "034"
        padded.insert(13, b'0');
        assert!(parse_cacheable_ptr_query(&padded).is_none());
        assert!(parse_cacheable_ptr_query(&[]).is_none());
    }

    #[tokio::test]
    async fn response_cache_serves_hits_and_invalidates_on_churn() {
        let store = test_store();
        let server = UdpServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            store.clone(),
            FaultConfig::default(),
        )
        .await
        .unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = server.shutdown_handle();
        let stats = server.stats();
        tokio::spawn(server.run());

        let target: Ipv4Addr = "192.0.2.34".parse().unwrap();
        let first = raw_query(addr, &Message::query(1, Question::ptr_for(target))).await;
        let second = raw_query(addr, &Message::query(2, Question::ptr_for(target))).await;
        assert_eq!(first.first_ptr(), second.first_ptr());
        assert_eq!(second.header.id, 2, "cached reply must carry the new ID");
        let snap = stats.snapshot();
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_invalidations, 0);
        assert_eq!(snap.answered, 2);

        // A zone mutation bumps the serial: the cached entry must die.
        store.set_ptr(target, "renamed-device.example.edu".parse().unwrap(), 300);
        let third = raw_query(addr, &Message::query(3, Question::ptr_for(target))).await;
        assert_eq!(
            third.first_ptr().unwrap().to_string(),
            "renamed-device.example.edu."
        );
        let snap = stats.snapshot();
        assert_eq!(snap.cache_invalidations, 1);
        assert_eq!(snap.cache_misses, 2);

        // And the refreshed entry serves again.
        let fourth = raw_query(addr, &Message::query(4, Question::ptr_for(target))).await;
        assert_eq!(fourth.first_ptr(), third.first_ptr());
        assert_eq!(stats.snapshot().cache_hits, 2);
        shutdown.shutdown();
    }

    #[tokio::test]
    async fn cache_disabled_server_answers_identically() {
        let store = test_store();
        let server = UdpServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            store.clone(),
            FaultConfig::default(),
        )
        .await
        .unwrap()
        .with_response_cache(false);
        let addr = server.local_addr().unwrap();
        let shutdown = server.shutdown_handle();
        let stats = server.stats();
        tokio::spawn(server.run());

        let q = Message::query(7, Question::ptr_for("192.0.2.34".parse().unwrap()));
        let resp = raw_query(addr, &q).await;
        assert_eq!(
            resp.first_ptr().unwrap().to_string(),
            "brians-iphone.example.edu."
        );
        let again = raw_query(addr, &q).await;
        assert_eq!(again, resp);
        let snap = stats.snapshot();
        assert_eq!(snap.cache_hits, 0, "disabled cache must never hit");
        assert_eq!(snap.cache_misses, 0);
        assert_eq!(snap.answered, 2);
        shutdown.shutdown();
    }

    #[tokio::test]
    async fn reflects_live_zone_updates() {
        let store = test_store();
        let server = UdpServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            store.clone(),
            FaultConfig::default(),
        )
        .await
        .unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = server.shutdown_handle();
        tokio::spawn(server.run());

        let target: Ipv4Addr = "192.0.2.99".parse().unwrap();
        let q = Message::query(4, Question::ptr_for(target));
        let before = raw_query(addr, &q).await;
        assert_eq!(before.header.rcode, Rcode::NxDomain);

        store.set_ptr(target, "new-device.example.edu".parse().unwrap(), 300);
        let after = raw_query(addr, &q).await;
        assert_eq!(after.header.rcode, Rcode::NoError);
        assert_eq!(
            after.first_ptr().unwrap(),
            &"new-device.example.edu".parse::<DnsName>().unwrap()
        );

        store.remove_ptr(target);
        let gone = raw_query(addr, &q).await;
        assert_eq!(gone.header.rcode, Rcode::NxDomain);
        shutdown.shutdown();
    }
}
