//! Pipelined stub resolver: many queries in flight on one socket.
//!
//! The serial [`crate::Resolver`] is one-query-at-a-time: it sends, then
//! blocks on the socket until that query's response (or timeout) comes back.
//! At ZMap scale — the paper's daily PTR snapshot of the full IPv4 space
//! (§6.1) — that wastes almost the entire round trip. [`PipelinedResolver`]
//! instead keeps up to `max_in_flight` queries outstanding on a single UDP
//! socket and demultiplexes responses by DNS message ID:
//!
//! * every in-flight query registers a oneshot slot in a *pending map* keyed
//!   by its (unique-at-a-time) 16-bit ID,
//! * one background *demux task* owns the receive side of the socket,
//!   decodes each datagram and routes it to the matching slot,
//! * the querying future awaits its slot with a per-attempt timeout and
//!   retries with a fresh ID, exactly like the serial resolver,
//! * a semaphore bounds the number of concurrently outstanding queries so a
//!   full-sweep caller cannot overrun the ID space or the socket buffers.
//!
//! Outcome classification is shared with the serial resolver (one
//! `classify` code path), so both report the identical Fig. 6 taxonomy.

use crate::client::{classify, query_tcp, LookupOutcome, ResolverConfig};
use crate::message::{Message, Question, RecordType};
use crate::name::DnsName;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rdns_telemetry::{Counter, Determinism, Gauge, Histogram, Registry};
use std::collections::HashMap;
use std::io;
use std::net::{Ipv4Addr, SocketAddr};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tokio::net::UdpSocket;
use tokio::sync::{oneshot, watch, Semaphore};
use tokio::task::JoinHandle;
use tokio::time::timeout;

/// Tuning knobs for the pipelined resolver.
#[derive(Debug, Clone)]
pub struct PipelinedConfig {
    /// The authoritative server to query.
    pub server: SocketAddr,
    /// Per-attempt response timeout.
    pub timeout: Duration,
    /// Total attempts (first try + retries).
    pub attempts: u32,
    /// Retry over TCP when a UDP response arrives truncated (TC set).
    pub tcp_fallback: bool,
    /// Maximum queries outstanding at once. Further callers wait on a
    /// semaphore. Must stay well below 65536 (the DNS ID space).
    pub max_in_flight: usize,
    /// Seed for message-ID generation. `None` (the default) seeds from
    /// entropy like a real resolver; fixing it makes the ID draw sequence
    /// reproducible (the IDs actually *used* still depend on which are
    /// in flight when a query registers).
    pub id_seed: Option<u64>,
}

impl PipelinedConfig {
    /// Defaults for loopback measurement: 500 ms timeout, 2 attempts,
    /// 256 queries in flight.
    pub fn new(server: SocketAddr) -> PipelinedConfig {
        PipelinedConfig {
            server,
            timeout: Duration::from_millis(500),
            attempts: 2,
            tcp_fallback: true,
            max_in_flight: 256,
            id_seed: None,
        }
    }

    /// Adopt the timeout/retry/fallback behavior of a serial resolver
    /// configuration.
    pub fn from_serial(config: &ResolverConfig, max_in_flight: usize) -> PipelinedConfig {
        PipelinedConfig {
            server: config.server,
            timeout: config.timeout,
            attempts: config.attempts,
            tcp_fallback: config.tcp_fallback,
            max_in_flight: max_in_flight.max(1),
            id_seed: config.id_seed,
        }
    }
}

/// Counters kept by a pipelined resolver: a typed facade over
/// [`rdns_telemetry`] primitives (queries run concurrently, so every cell is
/// a shared atomic). All of them are wall-clock metrics — retry and timeout
/// counts depend on host timing.
#[derive(Debug, Default)]
pub struct PipelinedStats {
    /// Queries issued (including retries).
    pub queries_sent: Counter,
    /// Responses routed to a waiting query.
    pub responses: Counter,
    /// Attempts that timed out.
    pub timeouts: Counter,
    /// Datagrams with no waiting query (late retransmissions, strays) or
    /// that failed to decode.
    pub unmatched: Counter,
    /// Truncated UDP responses retried over TCP.
    pub tcp_retries: Counter,
    /// Per-lookup wall-clock latency of answered queries, microseconds.
    pub latency: Histogram,
    /// Lookups currently holding an in-flight permit.
    pub in_flight: Gauge,
}

impl PipelinedStats {
    /// Registry-backed stats: cells live under `rdns_dns_pipeline_*`.
    pub fn with_registry(registry: &Registry) -> PipelinedStats {
        let c = |name, help| registry.counter(name, help, Determinism::WallClock);
        PipelinedStats {
            queries_sent: c(
                "rdns_dns_pipeline_queries_total",
                "Queries issued by the pipelined resolver (including retries).",
            ),
            responses: c(
                "rdns_dns_pipeline_responses_total",
                "Responses routed to a waiting query.",
            ),
            timeouts: c(
                "rdns_dns_pipeline_timeouts_total",
                "Pipelined-resolver attempts that timed out.",
            ),
            unmatched: c(
                "rdns_dns_pipeline_unmatched_total",
                "Datagrams with no waiting query, or that failed to decode.",
            ),
            tcp_retries: c(
                "rdns_dns_pipeline_tcp_retries_total",
                "Truncated UDP responses retried over TCP.",
            ),
            latency: registry.histogram(
                "rdns_dns_pipeline_latency_us",
                "Per-lookup wall-clock latency of answered queries, microseconds.",
                Determinism::WallClock,
            ),
            in_flight: registry.gauge(
                "rdns_dns_pipeline_in_flight",
                "Lookups currently holding an in-flight permit.",
                Determinism::WallClock,
            ),
        }
    }

    /// Snapshot all counters as plain values.
    pub fn snapshot(&self) -> PipelinedStatsSnapshot {
        PipelinedStatsSnapshot {
            queries_sent: self.queries_sent.get(),
            responses: self.responses.get(),
            timeouts: self.timeouts.get(),
            unmatched: self.unmatched.get(),
            tcp_retries: self.tcp_retries.get(),
        }
    }
}

/// Plain-value view of [`PipelinedStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelinedStatsSnapshot {
    /// Queries issued (including retries).
    pub queries_sent: u64,
    /// Responses routed to a waiting query.
    pub responses: u64,
    /// Attempts that timed out.
    pub timeouts: u64,
    /// Unroutable datagrams.
    pub unmatched: u64,
    /// TCP retries after truncation.
    pub tcp_retries: u64,
}

/// Decrements the wrapped gauge on drop, so every exit path of a lookup
/// releases its in-flight slot exactly once.
struct GaugeGuard(Gauge);

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.0.sub(1);
    }
}

/// In-flight queries awaiting responses, keyed by DNS message ID.
type PendingMap = Arc<Mutex<HashMap<u16, oneshot::Sender<Message>>>>;

/// An async DNS resolver holding many queries in flight on one socket.
///
/// All methods take `&self`; clone the containing `Arc` (or borrow across
/// worker futures) to issue queries concurrently.
pub struct PipelinedResolver {
    socket: Arc<UdpSocket>,
    config: PipelinedConfig,
    pending: PendingMap,
    stats: Arc<PipelinedStats>,
    semaphore: Arc<Semaphore>,
    /// Set once the demux task has exited; queries then fail fast instead of
    /// waiting out their full timeout on a slot nobody will fill.
    closed: Arc<AtomicBool>,
    shutdown_tx: watch::Sender<bool>,
    demux: Mutex<Option<JoinHandle<()>>>,
    /// ID generator shared by every in-flight query, seeded from
    /// `config.id_seed` (or entropy).
    id_rng: Mutex<SmallRng>,
}

impl PipelinedResolver {
    /// Bind an ephemeral local socket and start the demux task.
    pub async fn new(config: PipelinedConfig) -> io::Result<PipelinedResolver> {
        PipelinedResolver::with_stats(config, PipelinedStats::default()).await
    }

    /// Like [`PipelinedResolver::new`], with the counters routed through
    /// `registry` (as `rdns_dns_pipeline_*`). The registration happens before
    /// the demux task starts, so no increment is lost.
    pub async fn new_with_registry(
        config: PipelinedConfig,
        registry: &Registry,
    ) -> io::Result<PipelinedResolver> {
        PipelinedResolver::with_stats(config, PipelinedStats::with_registry(registry)).await
    }

    async fn with_stats(
        config: PipelinedConfig,
        stats: PipelinedStats,
    ) -> io::Result<PipelinedResolver> {
        let socket = Arc::new(UdpSocket::bind(("127.0.0.1", 0)).await?);
        let pending: PendingMap = Arc::new(Mutex::new(HashMap::new()));
        let stats = Arc::new(stats);
        let closed = Arc::new(AtomicBool::new(false));
        let (shutdown_tx, shutdown_rx) = watch::channel(false);
        let demux = tokio::spawn(demux_loop(
            Arc::clone(&socket),
            config.server,
            Arc::clone(&pending),
            Arc::clone(&stats),
            Arc::clone(&closed),
            shutdown_rx,
        ));
        let id_rng = config
            .id_seed
            .map_or_else(SmallRng::from_entropy, SmallRng::seed_from_u64);
        Ok(PipelinedResolver {
            socket,
            semaphore: Arc::new(Semaphore::new(config.max_in_flight.max(1))),
            config,
            pending,
            stats,
            closed,
            shutdown_tx,
            demux: Mutex::new(Some(demux)),
            id_rng: Mutex::new(id_rng),
        })
    }

    /// The resolver's configuration.
    pub fn config(&self) -> &PipelinedConfig {
        &self.config
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> Arc<PipelinedStats> {
        Arc::clone(&self.stats)
    }

    /// Whether the demux task has exited (after [`PipelinedResolver::shutdown`]).
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Stop the demux task and wait for it to exit. In-flight queries
    /// resolve immediately as [`LookupOutcome::Timeout`]; later queries fail
    /// fast the same way. Idempotent.
    pub async fn shutdown(&self) {
        let _ = self.shutdown_tx.send(true);
        let handle = self.demux.lock().take();
        if let Some(handle) = handle {
            let _ = handle.await;
        }
    }

    /// Issue a query, sharing the socket with every other in-flight query,
    /// and classify the outcome exactly like the serial resolver.
    pub async fn query(&self, qname: &DnsName, qtype: RecordType) -> io::Result<LookupOutcome> {
        let _permit = Arc::clone(&self.semaphore)
            .acquire_owned()
            .await
            .expect("semaphore never closed");
        self.stats.in_flight.add(1);
        let _in_flight = GaugeGuard(self.stats.in_flight.clone());
        let lookup_start = Instant::now();
        for _attempt in 0..self.config.attempts.max(1) {
            if self.closed.load(Ordering::Acquire) {
                // Demux gone: nobody can route a response to us.
                return Ok(LookupOutcome::Timeout);
            }
            let (id, rx) = self.register();
            let msg = Message::query(id, Question::new(qname.clone(), qtype));
            if let Err(e) = self.socket.send_to(&msg.encode(), self.config.server).await {
                self.unregister(id);
                return Err(e);
            }
            self.stats.queries_sent.inc();

            match timeout(self.config.timeout, rx).await {
                Ok(Ok(resp)) => {
                    self.stats.responses.inc();
                    self.stats.latency.observe_duration(lookup_start.elapsed());
                    if resp.header.truncated && self.config.tcp_fallback {
                        // RFC 1035: retry the query over TCP.
                        self.stats.tcp_retries.inc();
                        match timeout(self.config.timeout, query_tcp(self.config.server, &msg))
                            .await
                        {
                            Ok(Ok(Some(full))) => return Ok(classify(full)),
                            Ok(Ok(None)) | Ok(Err(_)) | Err(_) => {
                                // TCP front unavailable: fall back to the
                                // truncated (answerless) response.
                                return Ok(classify(resp));
                            }
                        }
                    }
                    return Ok(classify(resp));
                }
                Ok(Err(_sender_dropped)) => {
                    // The demux task shut down mid-wait.
                    return Ok(LookupOutcome::Timeout);
                }
                Err(_elapsed) => {
                    self.unregister(id);
                    self.stats.timeouts.inc();
                    continue;
                }
            }
        }
        Ok(LookupOutcome::Timeout)
    }

    /// Reverse-lookup convenience: PTR for `addr`.
    pub async fn reverse(&self, addr: Ipv4Addr) -> io::Result<LookupOutcome> {
        self.query(&DnsName::reverse_v4(addr), RecordType::PTR).await
    }

    /// Pick an ID no other in-flight query is using and register a response
    /// slot for it.
    fn register(&self) -> (u16, oneshot::Receiver<Message>) {
        let (tx, rx) = oneshot::channel();
        let mut pending = self.pending.lock();
        let mut rng = self.id_rng.lock();
        // `max_in_flight` is far below 65536, so a vacant ID is always a few
        // draws away.
        let id = loop {
            let candidate: u16 = rng.gen();
            if !pending.contains_key(&candidate) {
                break candidate;
            }
        };
        pending.insert(id, tx);
        (id, rx)
    }

    fn unregister(&self, id: u16) {
        self.pending.lock().remove(&id);
    }
}

impl Drop for PipelinedResolver {
    fn drop(&mut self) {
        // Stop the demux task; its thread exits at the next poll.
        let _ = self.shutdown_tx.send(true);
    }
}

/// The receive side: route every datagram to the query that owns its ID.
async fn demux_loop(
    socket: Arc<UdpSocket>,
    server: SocketAddr,
    pending: PendingMap,
    stats: Arc<PipelinedStats>,
    closed: Arc<AtomicBool>,
    mut shutdown_rx: watch::Receiver<bool>,
) {
    let mut buf = vec![0u8; 1500];
    loop {
        tokio::select! {
            _ = shutdown_rx.changed() => {
                if *shutdown_rx.borrow() {
                    break;
                }
            }
            recv = socket.recv_from(&mut buf) => {
                let Ok((n, peer)) = recv else { break };
                if peer != server {
                    stats.unmatched.inc();
                    continue; // spoofed / stray datagram
                }
                match Message::decode(&buf[..n]) {
                    Ok(m) if m.header.response => {
                        let slot = pending.lock().remove(&m.header.id);
                        match slot {
                            // Send fails only if the waiter timed out and
                            // dropped its receiver — a late response.
                            Some(tx) => {
                                if tx.send(m).is_err() {
                                    stats.unmatched.inc();
                                }
                            }
                            None => {
                                stats.unmatched.inc();
                            }
                        }
                    }
                    _ => {
                        stats.unmatched.inc();
                    }
                }
            }
        }
    }
    // Fail fast: mark closed, then wake every in-flight query by dropping
    // its slot sender.
    closed.store(true, Ordering::Release);
    pending.lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{FaultConfig, UdpServer};
    use crate::zone::ZoneStore;
    use std::time::Instant;

    async fn setup(faults: FaultConfig) -> (PipelinedResolver, crate::server::ShutdownHandle) {
        let store = ZoneStore::new();
        for host in 1..=200u8 {
            let a = Ipv4Addr::new(203, 0, 113, host);
            store.ensure_reverse_zone(a);
            if host % 2 == 1 {
                store.set_ptr(a, format!("host-{host}.example.edu").parse().unwrap(), 300);
            }
        }
        let server = UdpServer::bind("127.0.0.1:0".parse().unwrap(), store, faults)
            .await
            .unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = server.shutdown_handle();
        tokio::spawn(server.run());
        let mut cfg = PipelinedConfig::new(addr);
        cfg.timeout = Duration::from_millis(300);
        let resolver = PipelinedResolver::new(cfg).await.unwrap();
        (resolver, shutdown)
    }

    #[tokio::test]
    async fn resolves_and_classifies_like_the_serial_path() {
        let (resolver, shutdown) = setup(FaultConfig::default()).await;
        let with_ptr = resolver.reverse(Ipv4Addr::new(203, 0, 113, 1)).await.unwrap();
        assert_eq!(
            with_ptr.ptr_target().unwrap().to_string(),
            "host-1.example.edu."
        );
        let without = resolver.reverse(Ipv4Addr::new(203, 0, 113, 2)).await.unwrap();
        assert_eq!(without, LookupOutcome::NxDomain);
        resolver.shutdown().await;
        shutdown.shutdown();
    }

    #[tokio::test]
    async fn many_queries_in_flight_on_one_socket() {
        let (resolver, shutdown) = setup(FaultConfig::default()).await;
        let resolver = Arc::new(resolver);
        let handles: Vec<_> = (1..=64u8)
            .map(|host| {
                let r = Arc::clone(&resolver);
                tokio::spawn(async move {
                    (host, r.reverse(Ipv4Addr::new(203, 0, 113, host)).await.unwrap())
                })
            })
            .collect();
        for h in handles {
            let (host, outcome) = h.await.unwrap();
            if host % 2 == 1 {
                assert_eq!(
                    outcome.ptr_target().unwrap().to_string(),
                    format!("host-{host}.example.edu.")
                );
            } else {
                assert_eq!(outcome, LookupOutcome::NxDomain);
            }
        }
        let stats = resolver.stats().snapshot();
        assert_eq!(stats.queries_sent, 64);
        assert_eq!(stats.responses, 64);
        resolver.shutdown().await;
        shutdown.shutdown();
    }

    #[tokio::test]
    async fn timeouts_retry_with_fresh_ids() {
        let faults = FaultConfig {
            drop_probability: 1.0,
            ..Default::default()
        };
        let (resolver, shutdown) = setup(faults).await;
        let mut cfg = PipelinedConfig::new(resolver.config().server);
        cfg.timeout = Duration::from_millis(80);
        cfg.attempts = 3;
        let resolver2 = PipelinedResolver::new(cfg).await.unwrap();
        let out = resolver2.reverse(Ipv4Addr::new(203, 0, 113, 1)).await.unwrap();
        assert_eq!(out, LookupOutcome::Timeout);
        let stats = resolver2.stats().snapshot();
        assert_eq!(stats.queries_sent, 3);
        assert_eq!(stats.timeouts, 3);
        assert!(resolver2.pending.lock().is_empty(), "no leaked slots");
        resolver.shutdown().await;
        resolver2.shutdown().await;
        shutdown.shutdown();
    }

    #[tokio::test]
    async fn shutdown_fails_queries_fast() {
        let faults = FaultConfig {
            drop_probability: 1.0, // the server never answers
            ..Default::default()
        };
        let (resolver, shutdown) = setup(faults).await;
        let mut cfg = PipelinedConfig::new(resolver.config().server);
        cfg.timeout = Duration::from_secs(30);
        let slow = Arc::new(PipelinedResolver::new(cfg).await.unwrap());
        let started = Instant::now();
        let workers: Vec<_> = (1..=16u8)
            .map(|host| {
                let r = Arc::clone(&slow);
                tokio::spawn(async move { r.reverse(Ipv4Addr::new(203, 0, 113, host)).await })
            })
            .collect();
        tokio::time::sleep(Duration::from_millis(100)).await;
        slow.shutdown().await;
        assert!(slow.is_closed());
        for w in workers {
            let outcome = w.await.unwrap().unwrap();
            assert_eq!(outcome, LookupOutcome::Timeout);
        }
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "queries must not wait out their 30 s timeout after shutdown"
        );
        // Fresh queries after shutdown also fail fast.
        let out = slow.reverse(Ipv4Addr::new(203, 0, 113, 99)).await.unwrap();
        assert_eq!(out, LookupOutcome::Timeout);
        resolver.shutdown().await;
        shutdown.shutdown();
    }

    #[tokio::test]
    async fn same_seed_resolvers_draw_identical_id_sequences() {
        let mut cfg = PipelinedConfig::new("127.0.0.1:53".parse().unwrap());
        cfg.id_seed = Some(7);
        let a = PipelinedResolver::new(cfg.clone()).await.unwrap();
        let b = PipelinedResolver::new(cfg).await.unwrap();
        let draw = |r: &PipelinedResolver| -> Vec<u16> {
            (0..64)
                .map(|_| {
                    let (id, _rx) = r.register();
                    r.unregister(id);
                    id
                })
                .collect()
        };
        assert_eq!(draw(&a), draw(&b));
        a.shutdown().await;
        b.shutdown().await;
    }

    #[tokio::test]
    async fn semaphore_bounds_concurrency() {
        let (resolver, shutdown) = setup(FaultConfig::default()).await;
        let mut cfg = PipelinedConfig::new(resolver.config().server);
        cfg.max_in_flight = 4;
        let bounded = Arc::new(PipelinedResolver::new(cfg).await.unwrap());
        let handles: Vec<_> = (1..=40u8)
            .map(|host| {
                let r = Arc::clone(&bounded);
                tokio::spawn(async move {
                    let _ = r.reverse(Ipv4Addr::new(203, 0, 113, host)).await;
                    r.pending.lock().len()
                })
            })
            .collect();
        for h in handles {
            let seen_pending = h.await.unwrap();
            assert!(seen_pending <= 4, "pending map exceeded max_in_flight: {seen_pending}");
        }
        bounded.shutdown().await;
        resolver.shutdown().await;
        shutdown.shutdown();
    }
}
