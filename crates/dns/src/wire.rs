//! RFC 1035 wire-format primitives.
//!
//! [`WireWriter`] serializes messages with name compression (§4.1.4 of RFC
//! 1035); [`WireReader`] parses with full compression-pointer support,
//! including loop protection, so the server stays robust against malformed
//! or hostile queries.

use crate::name::DnsName;
use std::collections::HashMap;
use std::fmt;

/// Errors while reading a DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The message ended before the expected field.
    Truncated { at: usize, need: usize },
    /// A compression pointer pointed forward or formed a loop.
    BadPointer(usize),
    /// A label had the reserved `10`/`01` prefix bits.
    BadLabelType(u8),
    /// The decompressed name exceeded the 255-octet limit.
    NameTooLong,
    /// An RDATA length disagreed with its content.
    BadRdata(&'static str),
    /// An unknown record type/class where a known one is required.
    Unsupported(&'static str, u16),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { at, need } => {
                write!(f, "message truncated at offset {at} (needed {need} more octets)")
            }
            WireError::BadPointer(o) => write!(f, "invalid compression pointer at offset {o}"),
            WireError::BadLabelType(b) => write!(f, "reserved label type octet {b:#04x}"),
            WireError::NameTooLong => write!(f, "decompressed name exceeds 255 octets"),
            WireError::BadRdata(what) => write!(f, "malformed RDATA: {what}"),
            WireError::Unsupported(what, v) => write!(f, "unsupported {what}: {v}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A cursor over a received datagram.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Start reading at offset zero.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Remaining unread octets.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// The error for a read of `n` octets that ran off the buffer. The
    /// subtraction saturates: the serve path decodes attacker-controlled
    /// datagrams, so even the error constructor must be panic-free.
    fn truncated(&self, n: usize) -> WireError {
        WireError::Truncated {
            at: self.pos,
            need: n.saturating_sub(self.remaining()),
        }
    }

    /// Read one octet.
    pub fn read_u8(&mut self) -> Result<u8, WireError> {
        match self.buf.get(self.pos) {
            Some(&v) => {
                self.pos += 1;
                Ok(v)
            }
            None => Err(self.truncated(1)),
        }
    }

    /// Read a big-endian u16.
    pub fn read_u16(&mut self) -> Result<u16, WireError> {
        match self.buf.get(self.pos..self.pos.saturating_add(2)) {
            Some(&[a, b]) => {
                self.pos += 2;
                Ok(u16::from_be_bytes([a, b]))
            }
            _ => Err(self.truncated(2)),
        }
    }

    /// Read a big-endian u32.
    pub fn read_u32(&mut self) -> Result<u32, WireError> {
        match self.buf.get(self.pos..self.pos.saturating_add(4)) {
            Some(&[a, b, c, d]) => {
                self.pos += 4;
                Ok(u32::from_be_bytes([a, b, c, d]))
            }
            _ => Err(self.truncated(4)),
        }
    }

    /// Read `n` raw octets.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.saturating_add(n);
        match self.buf.get(self.pos..end) {
            Some(s) => {
                self.pos = end;
                Ok(s)
            }
            None => Err(self.truncated(n)),
        }
    }

    /// Read a (possibly compressed) domain name starting at the cursor. The
    /// cursor advances past the in-place representation only; pointer
    /// targets are followed without moving the cursor.
    pub fn read_name(&mut self) -> Result<DnsName, WireError> {
        let mut labels: Vec<String> = Vec::new();
        let mut total_len = 1usize;
        let mut jumped = false;
        let mut pos = self.pos;
        // Each followed pointer must strictly decrease, which bounds the
        // number of jumps and rules out loops.
        let mut last_pointer_target = usize::MAX;

        loop {
            let len = *self
                .buf
                .get(pos)
                .ok_or(WireError::Truncated { at: pos, need: 1 })? as usize;
            match len & 0xC0 {
                0x00 => {
                    if !jumped {
                        self.pos = pos + 1 + len;
                    }
                    if len == 0 {
                        if !jumped {
                            self.pos = pos + 1;
                        }
                        break;
                    }
                    total_len += 1 + len;
                    if total_len > crate::name::MAX_NAME_LEN {
                        return Err(WireError::NameTooLong);
                    }
                    let end = pos + 1 + len;
                    let label = self
                        .buf
                        .get(pos + 1..end)
                        .ok_or(WireError::Truncated { at: pos + 1, need: len })?;
                    labels.push(String::from_utf8_lossy(label).to_ascii_lowercase());
                    pos = end;
                }
                0xC0 => {
                    let second = *self
                        .buf
                        .get(pos + 1)
                        .ok_or(WireError::Truncated { at: pos + 1, need: 1 })?
                        as usize;
                    let target = ((len & 0x3F) << 8) | second;
                    if target >= last_pointer_target || target >= pos {
                        return Err(WireError::BadPointer(pos));
                    }
                    if !jumped {
                        self.pos = pos + 2;
                    }
                    jumped = true;
                    last_pointer_target = target;
                    pos = target;
                }
                other => return Err(WireError::BadLabelType(other as u8)),
            }
        }

        DnsName::from_labels(labels).map_err(|_| WireError::NameTooLong)
    }
}

/// A growable buffer for serializing a message, with name compression.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
    /// Offsets of previously written names (presentation form → offset),
    /// including every tail suffix, so later names can point at them.
    name_offsets: HashMap<String, usize>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer that reuses `buf`'s allocation. The buffer is cleared (its
    /// capacity is retained) and the compression table starts empty, so the
    /// output is byte-identical to a fresh writer's.
    pub fn reusing(mut buf: Vec<u8>) -> Self {
        buf.clear();
        WireWriter {
            buf,
            name_offsets: HashMap::new(),
        }
    }

    /// The serialized bytes so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Finish and take the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current write offset.
    pub fn position(&self) -> usize {
        self.buf.len()
    }

    /// Append one octet.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a big-endian u16.
    pub fn write_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append raw octets.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Overwrite a previously written big-endian u16 (e.g. RDLENGTH patch).
    pub fn patch_u16(&mut self, offset: usize, v: u16) {
        self.buf[offset..offset + 2].copy_from_slice(&v.to_be_bytes());
    }

    /// Append a domain name, using a compression pointer when any suffix of
    /// the name was written before within pointer range (first 16 KiB).
    pub fn write_name(&mut self, name: &DnsName) {
        let labels = name.labels();
        for i in 0..labels.len() {
            let suffix_key = labels[i..].join(".");
            if let Some(&off) = self.name_offsets.get(&suffix_key) {
                if off < 0x4000 {
                    self.write_u16(0xC000 | off as u16);
                    return;
                }
            }
            let here = self.position();
            if here < 0x4000 {
                self.name_offsets.insert(suffix_key, here);
            }
            let label = labels[i].as_bytes();
            debug_assert!(label.len() <= crate::name::MAX_LABEL_LEN);
            self.write_u8(label.len() as u8);
            self.write_bytes(label);
        }
        self.write_u8(0);
    }

    /// Append a name without compression (used inside RDATA for record types
    /// whose RDATA may not be compressed, and for DHCP FQDN payloads).
    pub fn write_name_uncompressed(&mut self, name: &DnsName) {
        for label in name.labels() {
            self.write_u8(label.len() as u8);
            self.write_bytes(label.as_bytes());
        }
        self.write_u8(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn primitive_roundtrip() {
        let mut w = WireWriter::new();
        w.write_u8(0xAB);
        w.write_u16(0x1234);
        w.write_u32(0xDEADBEEF);
        w.write_bytes(b"xyz");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_u8().unwrap(), 0xAB);
        assert_eq!(r.read_u16().unwrap(), 0x1234);
        assert_eq!(r.read_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_bytes(3).unwrap(), b"xyz");
        assert_eq!(r.remaining(), 0);
        assert!(r.read_u8().is_err());
    }

    #[test]
    fn short_reads_error_without_advancing() {
        // One fixed-site test per `.get()`-based reader: a partial field
        // errs as Truncated and leaves the cursor where it was, so the
        // serve path can account the datagram and move on.
        let mut r = WireReader::new(&[0xAB]);
        assert!(matches!(
            r.read_u16(),
            Err(WireError::Truncated { at: 0, need: 1 })
        ));
        assert!(matches!(
            r.read_u32(),
            Err(WireError::Truncated { at: 0, need: 3 })
        ));
        assert!(matches!(
            r.read_bytes(2),
            Err(WireError::Truncated { at: 0, need: 1 })
        ));
        // The failed reads consumed nothing.
        assert_eq!(r.read_u8().unwrap(), 0xAB);
        assert!(matches!(
            r.read_u8(),
            Err(WireError::Truncated { at: 1, need: 1 })
        ));
    }

    #[test]
    fn huge_length_request_saturates_instead_of_overflowing() {
        // `pos + n` on an attacker-supplied length must not overflow; the
        // reader saturates and reports how much was actually missing.
        let mut r = WireReader::new(&[1, 2, 3]);
        assert!(r.read_bytes(usize::MAX).is_err());
        assert_eq!(r.position(), 0);
        assert_eq!(r.read_bytes(3).unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn name_roundtrip_simple() {
        let n: DnsName = "brians-iphone.example.edu".parse().unwrap();
        let mut w = WireWriter::new();
        w.write_name(&n);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name().unwrap(), n);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn name_compression_saves_space_and_roundtrips() {
        let a: DnsName = "host1.example.edu".parse().unwrap();
        let b: DnsName = "host2.example.edu".parse().unwrap();
        let mut w = WireWriter::new();
        w.write_name(&a);
        let uncompressed_one = w.position();
        w.write_name(&b);
        let bytes = w.into_bytes();
        // Second name must be shorter than the first thanks to the pointer.
        assert!(bytes.len() - uncompressed_one < uncompressed_one);
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name().unwrap(), a);
        assert_eq!(r.read_name().unwrap(), b);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn whole_name_pointer() {
        let a: DnsName = "example.edu".parse().unwrap();
        let mut w = WireWriter::new();
        w.write_name(&a);
        w.write_name(&a);
        let bytes = w.into_bytes();
        // Second occurrence is exactly one 2-octet pointer.
        assert_eq!(bytes.len(), a.wire_len() + 2);
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name().unwrap(), a);
        assert_eq!(r.read_name().unwrap(), a);
    }

    #[test]
    fn pointer_loop_rejected() {
        // A pointer at offset 0 pointing to itself.
        let bytes = [0xC0, 0x00];
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.read_name(), Err(WireError::BadPointer(_))));
    }

    #[test]
    fn forward_pointer_rejected() {
        // Pointer to offset 4, beyond itself.
        let bytes = [0xC0, 0x04, 0, 0, 1, b'a', 0];
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.read_name(), Err(WireError::BadPointer(_))));
    }

    #[test]
    fn mutual_pointer_loop_rejected() {
        // name A at 0: pointer -> 2; name B at 2: pointer -> 0.
        let bytes = [0xC0, 0x02, 0xC0, 0x00];
        let mut r = WireReader::new(&bytes);
        assert!(r.read_name().is_err());
    }

    #[test]
    fn truncated_label_rejected() {
        let bytes = [5, b'a', b'b']; // claims 5 octets, has 2
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.read_name(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn reserved_label_bits_rejected() {
        let bytes = [0x80, 0x01];
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.read_name(), Err(WireError::BadLabelType(_))));
    }

    #[test]
    fn root_name_roundtrip() {
        let mut w = WireWriter::new();
        w.write_name(&DnsName::root());
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0]);
        let mut r = WireReader::new(&bytes);
        assert!(r.read_name().unwrap().is_root());
    }

    #[test]
    fn cursor_lands_after_pointer() {
        let a: DnsName = "example.edu".parse().unwrap();
        let mut w = WireWriter::new();
        w.write_name(&a);
        w.write_name(&a);
        w.write_u16(0xBEEF);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        r.read_name().unwrap();
        r.read_name().unwrap();
        assert_eq!(r.read_u16().unwrap(), 0xBEEF);
    }

    #[test]
    fn uncompressed_writer_never_points() {
        let a: DnsName = "example.edu".parse().unwrap();
        let mut w = WireWriter::new();
        w.write_name(&a);
        w.write_name_uncompressed(&a);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2 * a.wire_len());
    }

    proptest! {
        #[test]
        fn prop_name_roundtrip(labels in proptest::collection::vec("[a-z0-9-]{1,12}", 0..5)) {
            let n = DnsName::from_labels(&labels).unwrap();
            let mut w = WireWriter::new();
            w.write_name(&n);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            prop_assert_eq!(r.read_name().unwrap(), n);
        }

        #[test]
        fn prop_many_names_roundtrip(names in proptest::collection::vec(
            proptest::collection::vec("[a-z]{1,6}", 1..4), 1..6)) {
            let parsed: Vec<DnsName> =
                names.iter().map(|ls| DnsName::from_labels(ls).unwrap()).collect();
            let mut w = WireWriter::new();
            for n in &parsed {
                w.write_name(n);
            }
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            for n in &parsed {
                prop_assert_eq!(&r.read_name().unwrap(), n);
            }
            prop_assert_eq!(r.remaining(), 0);
        }

        #[test]
        fn prop_reader_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let mut r = WireReader::new(&bytes);
            let _ = r.read_name(); // must not panic or loop forever
        }
    }
}
