//! Interned columnar PTR storage for /24 reverse zones.
//!
//! A reverse zone for one /24 holds at most 256 PTR records, each keyed by
//! the host octet of the address. The general [`crate::zone::Zone`] stores
//! such a record as a `BTreeMap<DnsName, Vec<ResourceRecord>>` entry — a
//! six-label owner name (six heap `String`s plus a `Vec`), a cloned target
//! `DnsName` (typically four more `String`s) and the record envelope —
//! several hundred heap bytes per PTR before the map node overhead. At the
//! paper's scale (6.15M /24s swept daily) that representation caps the
//! simulated universe at a few tens of thousands of devices per machine.
//!
//! [`PtrTable`] replaces that hot path with three parallel columns sorted by
//! host octet — `octets: Vec<u8>`, `ids: Vec<u32>`, `ttls: Vec<u32>` — plus a
//! per-zone pool of interned target hostnames (`Box<str>`, lower-case, no
//! trailing dot, exactly the [`rdns_model::Hostname`] normal form). One PTR
//! costs 9 bytes of columns plus the hostname text, an order of magnitude
//! under the general representation.
//!
//! The contract with the general zone is *byte identity*: every answer,
//! serial bump, count and visit order must be indistinguishable from the
//! `BTreeMap` path. The subtle part is iteration order — `DnsName`'s `Ord`
//! compares labels as strings, so the legacy map yields host octets in
//! *decimal-string* order (`0, 1, 10, 100, …, 109, 11, 110, …`), not numeric
//! order. [`PtrTable::visit`] replays that exact order through a
//! compile-time permutation table.

use crate::name::DnsName;

/// Host octets 0..=255 in decimal-string (DNS label) order.
///
/// `BTreeMap<DnsName, _>` orders six-label reverse names by their first
/// label as a string; visiting interned records must match byte for byte.
const OCTETS_IN_NAME_ORDER: [u8; 256] = {
    // Decimal digits of `v`, most significant first.
    const fn dec_digits(v: u8) -> ([u8; 3], usize) {
        if v == 0 {
            return ([b'0', 0, 0], 1);
        }
        let mut tmp = [0u8; 3];
        let mut n = 0;
        let mut v = v;
        while v > 0 {
            tmp[n] = b'0' + v % 10;
            v /= 10;
            n += 1;
        }
        let mut out = [0u8; 3];
        let mut i = 0;
        while i < n {
            out[i] = tmp[n - 1 - i];
            i += 1;
        }
        (out, n)
    }
    const fn dec_lt(a: u8, b: u8) -> bool {
        let (da, la) = dec_digits(a);
        let (db, lb) = dec_digits(b);
        let min = if la < lb { la } else { lb };
        let mut i = 0;
        while i < min {
            if da[i] != db[i] {
                return da[i] < db[i];
            }
            i += 1;
        }
        la < lb
    }
    let mut v = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        v[i] = i as u8;
        i += 1;
    }
    // Insertion sort by decimal-string order (evaluated at compile time).
    let mut i = 1usize;
    while i < 256 {
        let mut j = i;
        while j > 0 && dec_lt(v[j], v[j - 1]) {
            let t = v[j];
            v[j] = v[j - 1];
            v[j - 1] = t;
            j -= 1;
        }
        i += 1;
    }
    v
};

/// Parse a canonical decimal octet label (`"0"`..`"255"`, no leading zeros).
pub fn parse_octet_label(label: &str) -> Option<u8> {
    if label.is_empty() || label.len() > 3 {
        return None;
    }
    if label.len() > 1 && label.starts_with('0') {
        return None;
    }
    if !label.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    label.parse::<u8>().ok()
}

/// If `apex` is a canonical /24 reverse apex (`c.b.a.in-addr.arpa`), return
/// the 24-bit network prefix `a<<16 | b<<8 | c`.
pub fn reverse24_prefix(apex: &DnsName) -> Option<u32> {
    let labels = apex.labels();
    if labels.len() != 5 || labels[3] != "in-addr" || labels[4] != "arpa" {
        return None;
    }
    let c = parse_octet_label(&labels[0])?;
    let b = parse_octet_label(&labels[1])?;
    let a = parse_octet_label(&labels[2])?;
    Some((a as u32) << 16 | (b as u32) << 8 | c as u32)
}

/// The interned hostname text for a PTR target, or `None` when the target
/// cannot round-trip through presentation form (a label containing `.`).
/// Such targets — never produced by the IPAM layer — fall back to the
/// general record map.
pub fn intern_target(target: &DnsName) -> Option<Box<str>> {
    let labels = target.labels();
    if labels.iter().any(|l| l.contains('.')) {
        return None;
    }
    Some(labels.join(".").into_boxed_str())
}

/// Columnar PTR records for one /24 reverse zone.
///
/// Rows are kept sorted by host octet; targets are interned hostnames
/// addressed by `u32` id (freed ids are reused so the pool never exceeds
/// 256 live entries).
#[derive(Debug, Clone, Default)]
pub struct PtrTable {
    /// The covered /24 network prefix: `u32::from(addr) >> 8`.
    prefix: u32,
    /// Host octets with a PTR, sorted ascending.
    octets: Vec<u8>,
    /// Parallel to `octets`: interned target-name id.
    ids: Vec<u32>,
    /// Parallel to `octets`: record TTL.
    ttls: Vec<u32>,
    /// Id → interned hostname text (`None` = free slot).
    names: Vec<Option<Box<str>>>,
    /// Reusable slots in `names`.
    free_ids: Vec<u32>,
}

impl PtrTable {
    /// A table for the /24 reverse zone at `apex`, or `None` when the apex
    /// is not a canonical `c.b.a.in-addr.arpa` name.
    pub fn for_apex(apex: &DnsName) -> Option<PtrTable> {
        Some(PtrTable {
            prefix: reverse24_prefix(apex)?,
            ..PtrTable::default()
        })
    }

    /// The covered /24 network prefix (`u32::from(addr) >> 8`).
    pub fn prefix(&self) -> u32 {
        self.prefix
    }

    /// The full address for a host octet in this table's /24.
    pub fn addr_of(&self, octet: u8) -> std::net::Ipv4Addr {
        std::net::Ipv4Addr::from(self.prefix << 8 | octet as u32)
    }

    /// Number of PTR records.
    pub fn len(&self) -> usize {
        self.octets.len()
    }

    /// Whether the table holds no records.
    pub fn is_empty(&self) -> bool {
        self.octets.is_empty()
    }

    /// Whether a PTR exists for `octet`.
    pub fn contains(&self, octet: u8) -> bool {
        self.octets.binary_search(&octet).is_ok()
    }

    /// The interned target text and TTL for `octet`.
    pub fn get(&self, octet: u8) -> Option<(&str, u32)> {
        let row = self.octets.binary_search(&octet).ok()?;
        let name = self.names[self.ids[row] as usize]
            .as_deref()
            .expect("live row points at a live name");
        Some((name, self.ttls[row]))
    }

    /// Install or replace the PTR for `octet` (last-writer-wins, exactly
    /// like the general zone's upsert).
    pub fn set(&mut self, octet: u8, text: Box<str>, ttl: u32) {
        match self.octets.binary_search(&octet) {
            Ok(row) => {
                self.names[self.ids[row] as usize] = Some(text);
                self.ttls[row] = ttl;
            }
            Err(row) => {
                let id = match self.free_ids.pop() {
                    Some(id) => {
                        self.names[id as usize] = Some(text);
                        id
                    }
                    None => {
                        self.names.push(Some(text));
                        (self.names.len() - 1) as u32
                    }
                };
                self.octets.insert(row, octet);
                self.ids.insert(row, id);
                self.ttls.insert(row, ttl);
            }
        }
    }

    /// Remove the PTR for `octet`. Returns whether one existed.
    pub fn remove(&mut self, octet: u8) -> bool {
        match self.octets.binary_search(&octet) {
            Ok(row) => {
                let id = self.ids[row];
                self.names[id as usize] = None;
                self.free_ids.push(id);
                self.octets.remove(row);
                self.ids.remove(row);
                self.ttls.remove(row);
                true
            }
            Err(_) => false,
        }
    }

    /// Visit every record as `(octet, target text, ttl)` in the order the
    /// general `BTreeMap` representation would yield them (decimal-string
    /// order of the host octet).
    pub fn visit<F: FnMut(u8, &str, u32)>(&self, mut f: F) {
        if self.octets.is_empty() {
            return;
        }
        for &octet in OCTETS_IN_NAME_ORDER.iter() {
            if let Ok(row) = self.octets.binary_search(&octet) {
                let name = self.names[self.ids[row] as usize]
                    .as_deref()
                    .expect("live row points at a live name");
                f(octet, name, self.ttls[row]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octet_order_matches_string_sort() {
        let mut expect: Vec<u8> = (0..=255).collect();
        expect.sort_by_key(|o| o.to_string());
        assert_eq!(OCTETS_IN_NAME_ORDER.to_vec(), expect);
    }

    #[test]
    fn canonical_octet_labels() {
        assert_eq!(parse_octet_label("0"), Some(0));
        assert_eq!(parse_octet_label("255"), Some(255));
        assert_eq!(parse_octet_label("01"), None);
        assert_eq!(parse_octet_label("256"), None);
        assert_eq!(parse_octet_label(""), None);
        assert_eq!(parse_octet_label("1a"), None);
    }

    #[test]
    fn apex_prefix_extraction() {
        let apex: DnsName = "2.0.192.in-addr.arpa".parse().unwrap();
        assert_eq!(reverse24_prefix(&apex), Some(0xC0_00_02));
        let broad: DnsName = "in-addr.arpa".parse().unwrap();
        assert_eq!(reverse24_prefix(&broad), None);
        let noncanonical: DnsName = "02.0.192.in-addr.arpa".parse().unwrap();
        assert_eq!(reverse24_prefix(&noncanonical), None);
    }

    #[test]
    fn set_get_remove_reuse() {
        let apex: DnsName = "2.0.192.in-addr.arpa".parse().unwrap();
        let mut t = PtrTable::for_apex(&apex).unwrap();
        assert!(t.is_empty());
        t.set(34, "a.example.org".into(), 300);
        t.set(5, "b.example.org".into(), 600);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(34), Some(("a.example.org", 300)));
        // Replacement keeps one row and swaps the interned text.
        t.set(34, "c.example.org".into(), 120);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(34), Some(("c.example.org", 120)));
        assert!(t.remove(5));
        assert!(!t.remove(5));
        // The freed id slot is reused, not leaked.
        t.set(200, "d.example.org".into(), 60);
        assert_eq!(t.names.iter().filter(|n| n.is_some()).count(), 2);
        assert_eq!(t.addr_of(200).to_string(), "192.0.2.200");
    }

    #[test]
    fn visit_order_is_string_order() {
        let apex: DnsName = "2.0.192.in-addr.arpa".parse().unwrap();
        let mut t = PtrTable::for_apex(&apex).unwrap();
        for oc in [5u8, 100, 2, 34, 0, 255, 10] {
            t.set(oc, format!("h{oc}.example.org").into_boxed_str(), 300);
        }
        let mut seen = Vec::new();
        t.visit(|oc, _, _| seen.push(oc));
        let mut expect = vec![5u8, 100, 2, 34, 0, 255, 10];
        expect.sort_by_key(|o| o.to_string());
        assert_eq!(seen, expect);
    }

    #[test]
    fn intern_round_trips_through_presentation_form() {
        let target: DnsName = "Brians-iPhone.Example.EDU".parse().unwrap();
        let text = intern_target(&target).unwrap();
        assert_eq!(&*text, "brians-iphone.example.edu");
        let back: DnsName = text.parse().unwrap();
        assert_eq!(back, target);
        // A label containing a dot cannot round-trip and is rejected.
        let tricky = DnsName::from_labels(["a.b", "example", "org"]).unwrap();
        assert!(intern_target(&tricky).is_none());
    }
}
