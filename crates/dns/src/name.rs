//! Domain names in wire form.
//!
//! [`DnsName`] stores a validated sequence of labels. It converts to and from
//! the presentation format ([`rdns_model::Hostname`]) and provides the
//! reverse-DNS mapping for IPv4 addresses used throughout the paper:
//! `93.184.216.34` ⇄ `34.216.184.93.in-addr.arpa.`.

use rdns_model::Hostname;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// Maximum length of a single label in octets (RFC 1035 §2.3.4).
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of a name in wire octets (RFC 1035 §2.3.4).
pub const MAX_NAME_LEN: usize = 255;

/// Errors constructing a [`DnsName`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// A label was empty or longer than 63 octets.
    BadLabel(String),
    /// The whole name exceeds 255 wire octets.
    TooLong(usize),
    /// The name is not a valid IPv4 reverse name.
    NotReverse(String),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::BadLabel(l) => write!(f, "invalid DNS label {l:?}"),
            NameError::TooLong(n) => write!(f, "name wire length {n} exceeds {MAX_NAME_LEN}"),
            NameError::NotReverse(s) => write!(f, "{s:?} is not an in-addr.arpa name"),
        }
    }
}

impl std::error::Error for NameError {}

/// A validated, case-normalized domain name.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DnsName {
    labels: Vec<String>,
}

impl DnsName {
    /// The root name (zero labels).
    pub fn root() -> DnsName {
        DnsName { labels: Vec::new() }
    }

    /// Build from labels, validating lengths.
    pub fn from_labels<I, S>(labels: I) -> Result<DnsName, NameError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut out = Vec::new();
        let mut wire_len = 1; // terminating zero octet
        for l in labels {
            let l = l.as_ref().to_ascii_lowercase();
            if l.is_empty() || l.len() > MAX_LABEL_LEN {
                return Err(NameError::BadLabel(l));
            }
            wire_len += 1 + l.len();
            out.push(l);
        }
        if wire_len > MAX_NAME_LEN {
            return Err(NameError::TooLong(wire_len));
        }
        Ok(DnsName { labels: out })
    }

    /// Parse presentation format (`a.b.c` or `a.b.c.`).
    pub fn parse(text: &str) -> Result<DnsName, NameError> {
        let trimmed = text.trim_end_matches('.');
        if trimmed.is_empty() {
            return Ok(DnsName::root());
        }
        DnsName::from_labels(trimmed.split('.'))
    }

    /// The labels, left to right.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Whether this is the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Wire-encoded length in octets (uncompressed).
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| 1 + l.len()).sum::<usize>()
    }

    /// Whether `self` equals `other` or is a subdomain of it. The root is an
    /// ancestor of every name.
    pub fn is_subdomain_of(&self, other: &DnsName) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - other.labels.len();
        self.labels[offset..] == other.labels[..]
    }

    /// The parent name (one label removed); root's parent is root.
    pub fn parent(&self) -> DnsName {
        if self.labels.is_empty() {
            return DnsName::root();
        }
        DnsName {
            labels: self.labels[1..].to_vec(),
        }
    }

    /// Prepend a label.
    pub fn child(&self, label: &str) -> Result<DnsName, NameError> {
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(label.to_string());
        labels.extend(self.labels.iter().cloned());
        DnsName::from_labels(labels)
    }

    /// The reverse name for an IPv4 address: `d.c.b.a.in-addr.arpa.`.
    ///
    /// The paper's Example 1:
    ///
    /// ```
    /// use rdns_dns::DnsName;
    /// let rev = DnsName::reverse_v4("93.184.216.34".parse().unwrap());
    /// assert_eq!(rev.to_string(), "34.216.184.93.in-addr.arpa.");
    /// ```
    pub fn reverse_v4(addr: Ipv4Addr) -> DnsName {
        let o = addr.octets();
        DnsName::from_labels([
            o[3].to_string(),
            o[2].to_string(),
            o[1].to_string(),
            o[0].to_string(),
            "in-addr".to_string(),
            "arpa".to_string(),
        ])
        .expect("reverse v4 names are always valid")
    }

    /// The reverse-zone apex for a /24 block: `c.b.a.in-addr.arpa.`.
    pub fn reverse_v4_zone24(block: rdns_model::Slash24) -> DnsName {
        let o = block.network().octets();
        DnsName::from_labels([
            o[2].to_string(),
            o[1].to_string(),
            o[0].to_string(),
            "in-addr".to_string(),
            "arpa".to_string(),
        ])
        .expect("reverse v4 zone names are always valid")
    }

    /// The reverse name for an IPv6 address: 32 nibbles under `ip6.arpa.`
    /// (RFC 3596 §2.5). The paper focuses on IPv4 because IPv6 cannot be
    /// exhaustively scanned, but notes (§8) that targeted IPv6 rDNS
    /// measurement is feasible; this supports such targeted lookups.
    pub fn reverse_v6(addr: std::net::Ipv6Addr) -> DnsName {
        let mut labels: Vec<String> = Vec::with_capacity(34);
        for byte in addr.octets().iter().rev() {
            labels.push(format!("{:x}", byte & 0x0F));
            labels.push(format!("{:x}", byte >> 4));
        }
        labels.push("ip6".to_string());
        labels.push("arpa".to_string());
        DnsName::from_labels(labels).expect("reverse v6 names are always valid")
    }

    /// If this is a full IPv6 reverse name, recover the address.
    pub fn parse_reverse_v6(&self) -> Result<std::net::Ipv6Addr, NameError> {
        let err = || NameError::NotReverse(self.to_string());
        if self.labels.len() != 34 || self.labels[32] != "ip6" || self.labels[33] != "arpa" {
            return Err(err());
        }
        let mut octets = [0u8; 16];
        for i in 0..16 {
            let lo = &self.labels[2 * i];
            let hi = &self.labels[2 * i + 1];
            if lo.len() != 1 || hi.len() != 1 {
                return Err(err());
            }
            let lo = u8::from_str_radix(lo, 16).map_err(|_| err())?;
            let hi = u8::from_str_radix(hi, 16).map_err(|_| err())?;
            octets[15 - i] = (hi << 4) | lo;
        }
        Ok(std::net::Ipv6Addr::from(octets))
    }

    /// If this is a full IPv4 reverse name, recover the address.
    pub fn parse_reverse_v4(&self) -> Result<Ipv4Addr, NameError> {
        let err = || NameError::NotReverse(self.to_string());
        if self.labels.len() != 6 || self.labels[4] != "in-addr" || self.labels[5] != "arpa" {
            return Err(err());
        }
        let mut octets = [0u8; 4];
        for (i, label) in self.labels[..4].iter().enumerate() {
            // Reject non-canonical numeric labels such as "01".
            if label.len() > 1 && label.starts_with('0') {
                return Err(err());
            }
            octets[3 - i] = label.parse::<u8>().map_err(|_| err())?;
        }
        Ok(Ipv4Addr::from(octets))
    }

    /// Presentation form as a [`Hostname`].
    pub fn to_hostname(&self) -> Hostname {
        Hostname::from_labels(&self.labels)
    }
}

impl fmt::Debug for DnsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for DnsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return f.write_str(".");
        }
        for l in &self.labels {
            write!(f, "{l}.")?;
        }
        Ok(())
    }
}

impl FromStr for DnsName {
    type Err = NameError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DnsName::parse(s)
    }
}

impl From<&Hostname> for DnsName {
    fn from(h: &Hostname) -> DnsName {
        // Hostname labels obey the same 63-octet limit only if the source
        // was valid; clamp defensively by truncating overlong labels.
        DnsName::from_labels(h.labels().map(|l| {
            if l.len() > MAX_LABEL_LEN {
                &l[..MAX_LABEL_LEN]
            } else {
                l
            }
        }))
        .unwrap_or_else(|_| DnsName::root())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rdns_model::Slash24;

    #[test]
    fn paper_example_1() {
        // IP 93.184.216.34 -> 34.216.184.93.in-addr.arpa.
        let rev = DnsName::reverse_v4("93.184.216.34".parse().unwrap());
        assert_eq!(rev.to_string(), "34.216.184.93.in-addr.arpa.");
        assert_eq!(
            rev.parse_reverse_v4().unwrap(),
            "93.184.216.34".parse::<Ipv4Addr>().unwrap()
        );
    }

    #[test]
    fn parse_and_display() {
        let n: DnsName = "Brians-iPhone.Example.EDU.".parse().unwrap();
        assert_eq!(n.to_string(), "brians-iphone.example.edu.");
        assert_eq!(n.label_count(), 3);
        let root: DnsName = ".".parse().unwrap();
        assert!(root.is_root());
        assert_eq!(root.to_string(), ".");
    }

    #[test]
    fn label_validation() {
        assert!(DnsName::parse(&format!("{}.com", "x".repeat(64))).is_err());
        assert!(DnsName::parse("a..b").is_err());
        let many = vec!["abcdefghijklmnop"; 16].join("."); // 16*17+1 = 273 > 255
        assert!(DnsName::parse(&many).is_err());
    }

    #[test]
    fn subdomain_relationships() {
        let zone: DnsName = "2.0.192.in-addr.arpa".parse().unwrap();
        let rec: DnsName = "34.2.0.192.in-addr.arpa".parse().unwrap();
        assert!(rec.is_subdomain_of(&zone));
        assert!(rec.is_subdomain_of(&rec));
        assert!(!zone.is_subdomain_of(&rec));
        assert!(rec.is_subdomain_of(&DnsName::root()));
    }

    #[test]
    fn parent_and_child() {
        let n: DnsName = "a.b.c".parse().unwrap();
        assert_eq!(n.parent().to_string(), "b.c.");
        assert_eq!(DnsName::root().parent(), DnsName::root());
        let c = n.child("x").unwrap();
        assert_eq!(c.to_string(), "x.a.b.c.");
        assert!(n.child("").is_err());
    }

    #[test]
    fn reverse_zone24() {
        let z = DnsName::reverse_v4_zone24(Slash24::from_octets(192, 0, 2));
        assert_eq!(z.to_string(), "2.0.192.in-addr.arpa.");
        let full = DnsName::reverse_v4("192.0.2.34".parse().unwrap());
        assert!(full.is_subdomain_of(&z));
    }

    #[test]
    fn parse_reverse_rejects_noncanonical() {
        let bogus: DnsName = "01.2.0.192.in-addr.arpa".parse().unwrap();
        assert!(bogus.parse_reverse_v4().is_err());
        let wrong_suffix: DnsName = "1.2.0.192.ip6.arpa".parse().unwrap();
        assert!(wrong_suffix.parse_reverse_v4().is_err());
        let too_short: DnsName = "0.192.in-addr.arpa".parse().unwrap();
        assert!(too_short.parse_reverse_v4().is_err());
        let overflow: DnsName = "256.2.0.192.in-addr.arpa".parse().unwrap();
        assert!(overflow.parse_reverse_v4().is_err());
    }

    #[test]
    fn hostname_conversion() {
        let h = Hostname::new("Client1.SomeISP.com");
        let n = DnsName::from(&h);
        assert_eq!(n.to_string(), "client1.someisp.com.");
        assert_eq!(n.to_hostname(), h);
    }

    #[test]
    fn wire_len() {
        // "a.bc." = 1+1 + 1+2 + 1 = 6
        let n: DnsName = "a.bc".parse().unwrap();
        assert_eq!(n.wire_len(), 6);
        assert_eq!(DnsName::root().wire_len(), 1);
    }

    #[test]
    fn reverse_v6_rfc3596_example() {
        // RFC 3596 §2.5 example: 4321:0:1:2:3:4:567:89ab.
        let addr: std::net::Ipv6Addr = "4321:0:1:2:3:4:567:89ab".parse().unwrap();
        let rev = DnsName::reverse_v6(addr);
        assert_eq!(
            rev.to_string(),
            "b.a.9.8.7.6.5.0.4.0.0.0.3.0.0.0.2.0.0.0.1.0.0.0.0.0.0.0.1.2.3.4.ip6.arpa."
        );
        assert_eq!(rev.parse_reverse_v6().unwrap(), addr);
    }

    #[test]
    fn parse_reverse_v6_rejects_malformed() {
        let v4: DnsName = "1.2.0.192.in-addr.arpa".parse().unwrap();
        assert!(v4.parse_reverse_v6().is_err());
        let short: DnsName = "b.a.ip6.arpa".parse().unwrap();
        assert!(short.parse_reverse_v6().is_err());
        // A 34-label name with a non-nibble label.
        let mut labels: Vec<String> = (0..32).map(|_| "zz".to_string()).collect();
        labels.push("ip6".into());
        labels.push("arpa".into());
        let bogus = DnsName::from_labels(labels).unwrap();
        assert!(bogus.parse_reverse_v6().is_err());
    }

    proptest! {
        #[test]
        fn prop_reverse_roundtrip(a in any::<u32>()) {
            let addr = Ipv4Addr::from(a);
            let name = DnsName::reverse_v4(addr);
            prop_assert_eq!(name.parse_reverse_v4().unwrap(), addr);
        }

        #[test]
        fn prop_reverse_v6_roundtrip(bytes in any::<[u8; 16]>()) {
            let addr = std::net::Ipv6Addr::from(bytes);
            let name = DnsName::reverse_v6(addr);
            prop_assert_eq!(name.parse_reverse_v6().unwrap(), addr);
            prop_assert_eq!(name.label_count(), 34);
        }

        #[test]
        fn prop_display_parse_roundtrip(labels in proptest::collection::vec("[a-z0-9-]{1,10}", 0..6)) {
            let n = DnsName::from_labels(&labels).unwrap();
            let re: DnsName = n.to_string().parse().unwrap();
            prop_assert_eq!(n, re);
        }
    }
}
