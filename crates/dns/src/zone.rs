//! Authoritative zone data with dynamic-update semantics.
//!
//! The DHCP→DNS coupling studied by the paper manifests as runtime changes to
//! reverse zones: PTR records appear when leases are allocated and disappear
//! when leases are released or expire. [`Zone`] models one authoritative zone
//! (typically `c.b.a.in-addr.arpa.` for a /24, or a broader reverse tree) and
//! [`ZoneSet`] routes queries to the closest enclosing zone.
//!
//! Two concurrent stores share the [`DnsStore`] interface:
//!
//! * [`ZoneStore`] — the lock-striped store: a read-mostly directory maps
//!   zone apexes to per-zone `RwLock`s, so writers touching different zones
//!   (simulator shards, DHCP-driven IPAM updates) never contend, and readers
//!   (the UDP server, snapshotters) only pin one zone at a time.
//! * [`CoarseZoneStore`] — the original single-`RwLock<ZoneSet>` store, kept
//!   as the serial baseline for benchmarks and as a differential oracle for
//!   the sharded simulator.

use crate::message::{RecordData, RecordType, ResourceRecord};
use crate::name::DnsName;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Result of an authoritative lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupResult {
    /// Records found.
    Answer(Vec<ResourceRecord>),
    /// The name exists but has no records of the queried type.
    NoData {
        /// The zone's SOA, for the authority section.
        soa: ResourceRecord,
    },
    /// The name does not exist in the zone.
    NxDomain {
        /// The zone's SOA, for the authority section.
        soa: ResourceRecord,
    },
    /// No zone here is authoritative for the name.
    NotAuthoritative,
}

/// One authoritative zone.
#[derive(Debug, Clone)]
pub struct Zone {
    apex: DnsName,
    soa: ResourceRecord,
    ns: Vec<ResourceRecord>,
    /// Records by owner name, then by type.
    records: BTreeMap<DnsName, Vec<ResourceRecord>>,
    serial: u32,
}

impl Zone {
    /// Create a zone with a default SOA.
    pub fn new(apex: DnsName) -> Zone {
        let mname: DnsName = "ns1.measurement.invalid"
            .parse()
            .expect("static name is valid");
        let rname: DnsName = "hostmaster.measurement.invalid"
            .parse()
            .expect("static name is valid");
        let serial = 1;
        let soa = ResourceRecord::new(
            apex.clone(),
            3600,
            RecordData::Soa {
                mname: mname.clone(),
                rname,
                serial,
                refresh: 7200,
                retry: 900,
                expire: 1_209_600,
                minimum: 300,
            },
        );
        let ns = vec![ResourceRecord::new(apex.clone(), 3600, RecordData::Ns(mname))];
        Zone {
            apex,
            soa,
            ns,
            records: BTreeMap::new(),
            serial,
        }
    }

    /// The zone apex name.
    pub fn apex(&self) -> &DnsName {
        &self.apex
    }

    /// Current SOA serial; increases with every mutation.
    pub fn serial(&self) -> u32 {
        self.serial
    }

    /// The SOA record (serial kept in sync).
    pub fn soa(&self) -> &ResourceRecord {
        &self.soa
    }

    /// Number of record owner names (excluding apex SOA/NS bookkeeping).
    pub fn name_count(&self) -> usize {
        self.records.len()
    }

    /// Iterate all records (excluding apex SOA/NS).
    pub fn iter_records(&self) -> impl Iterator<Item = &ResourceRecord> {
        self.records.values().flatten()
    }

    fn bump_serial(&mut self) {
        self.serial = self.serial.wrapping_add(1).max(1);
        if let RecordData::Soa { serial, .. } = &mut self.soa.data {
            *serial = self.serial;
        }
    }

    /// Whether this zone is authoritative for `name`.
    pub fn is_authoritative_for(&self, name: &DnsName) -> bool {
        name.is_subdomain_of(&self.apex)
    }

    /// Add a record, replacing existing records of the same type on the same
    /// owner name (last-writer-wins, matching dynamic-update semantics of
    /// DHCP-driven IPAM systems).
    pub fn upsert(&mut self, rr: ResourceRecord) {
        debug_assert!(self.is_authoritative_for(&rr.name));
        let rtype = rr.data.rtype();
        let entry = self.records.entry(rr.name.clone()).or_default();
        entry.retain(|existing| existing.data.rtype() != rtype);
        entry.push(rr);
        self.bump_serial();
    }

    /// Remove all records of `rtype` on `name`. Returns how many were removed.
    pub fn remove(&mut self, name: &DnsName, rtype: RecordType) -> usize {
        let mut removed = 0;
        if let Some(entry) = self.records.get_mut(name) {
            let before = entry.len();
            entry.retain(|rr| rr.data.rtype() != rtype);
            removed = before - entry.len();
            if entry.is_empty() {
                self.records.remove(name);
            }
        }
        if removed > 0 {
            self.bump_serial();
        }
        removed
    }

    /// Authoritative lookup inside this zone.
    pub fn lookup(&self, qname: &DnsName, qtype: RecordType) -> LookupResult {
        if !self.is_authoritative_for(qname) {
            return LookupResult::NotAuthoritative;
        }
        if qname == &self.apex {
            let mut out = Vec::new();
            match qtype {
                RecordType::SOA => out.push(self.soa.clone()),
                RecordType::NS => out.extend(self.ns.iter().cloned()),
                _ => {}
            }
            if out.is_empty() {
                return LookupResult::NoData {
                    soa: self.soa.clone(),
                };
            }
            return LookupResult::Answer(out);
        }
        match self.records.get(qname) {
            Some(rrs) => {
                let matched: Vec<ResourceRecord> = rrs
                    .iter()
                    .filter(|rr| rr.data.rtype() == qtype)
                    .cloned()
                    .collect();
                if matched.is_empty() {
                    LookupResult::NoData {
                        soa: self.soa.clone(),
                    }
                } else {
                    LookupResult::Answer(matched)
                }
            }
            None => LookupResult::NxDomain {
                soa: self.soa.clone(),
            },
        }
    }
}

/// A set of zones with longest-match routing.
#[derive(Debug, Default, Clone)]
pub struct ZoneSet {
    /// Zones keyed by apex. BTreeMap for deterministic iteration.
    zones: BTreeMap<DnsName, Zone>,
}

impl ZoneSet {
    /// An empty set.
    pub fn new() -> ZoneSet {
        ZoneSet::default()
    }

    /// Insert (or replace) a zone.
    pub fn insert(&mut self, zone: Zone) {
        self.zones.insert(zone.apex().clone(), zone);
    }

    /// Number of zones.
    pub fn len(&self) -> usize {
        self.zones.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }

    /// The zone with the longest apex that is an ancestor of `name`.
    pub fn find_zone(&self, name: &DnsName) -> Option<&Zone> {
        self.zones
            .values()
            .filter(|z| name.is_subdomain_of(z.apex()))
            .max_by_key(|z| z.apex().label_count())
    }

    /// Mutable variant of [`ZoneSet::find_zone`].
    pub fn find_zone_mut(&mut self, name: &DnsName) -> Option<&mut Zone> {
        let apex = self.find_zone(name)?.apex().clone();
        self.zones.get_mut(&apex)
    }

    /// Look up across zones.
    pub fn lookup(&self, qname: &DnsName, qtype: RecordType) -> LookupResult {
        match self.find_zone(qname) {
            Some(zone) => zone.lookup(qname, qtype),
            None => LookupResult::NotAuthoritative,
        }
    }

    /// Iterate zones.
    pub fn iter(&self) -> impl Iterator<Item = &Zone> {
        self.zones.values()
    }
}

/// The zone-mutation interface shared by [`ZoneStore`] and
/// [`CoarseZoneStore`].
///
/// The IPAM layer, the simulator, and the snapshotter are generic over this
/// trait so the sharded engine (striped store) and the serial baseline
/// (coarse store) run the exact same update code paths.
pub trait DnsStore: Clone + Send + Sync + 'static {
    /// Ensure a reverse zone exists for the /24 containing `addr`.
    fn ensure_reverse_zone(&self, addr: Ipv4Addr);
    /// Ensure a zone with the given apex exists.
    fn ensure_zone(&self, apex: DnsName);
    /// Install or replace the A record for `name`.
    fn set_a(&self, name: &DnsName, addr: Ipv4Addr, ttl: u32) -> bool;
    /// Remove the A record for `name`. Returns whether one existed.
    fn remove_a(&self, name: &DnsName) -> bool;
    /// Install or replace the PTR record for `addr`.
    fn set_ptr(&self, addr: Ipv4Addr, target: DnsName, ttl: u32) -> bool;
    /// Remove the PTR record for `addr`. Returns whether one existed.
    fn remove_ptr(&self, addr: Ipv4Addr) -> bool;
    /// Direct (in-process) PTR lookup.
    fn get_ptr(&self, addr: Ipv4Addr) -> Option<DnsName>;
    /// Total PTR record count across all zones.
    fn ptr_count(&self) -> usize;
    /// Run `f` over every PTR record as `(addr, target)`, in deterministic
    /// apex-then-owner order.
    fn visit_ptrs(&self, f: &mut dyn FnMut(Ipv4Addr, &DnsName));
}

/// Shared, concurrently-updatable zone data with per-zone lock striping.
///
/// The simulator's shards mutate PTR records as leases change; the UDP
/// server answers queries from the same store. A read-mostly directory maps
/// each apex to its own `Arc<RwLock<Zone>>` stripe (built once per zone at
/// `ensure_zone` time), so updates to distinct zones proceed without
/// contention and no operation ever holds a lock across more than one zone.
/// Cloning is cheap (reference-counted).
#[derive(Debug, Clone, Default)]
pub struct ZoneStore {
    directory: Arc<RwLock<BTreeMap<DnsName, Arc<RwLock<Zone>>>>>,
}

impl ZoneStore {
    /// An empty store.
    pub fn new() -> ZoneStore {
        ZoneStore::default()
    }

    /// The stripe holding the longest-match zone for `name`, if any.
    ///
    /// Walks the name's suffixes longest-first; because every enclosing apex
    /// is a suffix of `name`, the first directory hit is exactly the
    /// longest-match zone [`ZoneSet::find_zone`] would pick. Only the
    /// directory read lock is held, and only for the walk.
    fn stripe_for(&self, name: &DnsName) -> Option<Arc<RwLock<Zone>>> {
        let dir = self.directory.read();
        if dir.is_empty() {
            return None;
        }
        let mut candidate = name.clone();
        loop {
            if let Some(zone) = dir.get(&candidate) {
                return Some(Arc::clone(zone));
            }
            if candidate.label_count() == 0 {
                return None;
            }
            candidate = candidate.parent();
        }
    }

    /// Snapshot of the directory: each apex with its stripe, in apex order.
    fn stripes(&self) -> Vec<(DnsName, Arc<RwLock<Zone>>)> {
        self.directory
            .read()
            .iter()
            .map(|(apex, zone)| (apex.clone(), Arc::clone(zone)))
            .collect()
    }

    /// Add a zone, replacing any existing zone at the same apex.
    pub fn add_zone(&self, zone: Zone) {
        let apex = zone.apex().clone();
        self.directory
            .write()
            .insert(apex, Arc::new(RwLock::new(zone)));
    }

    /// Ensure a reverse zone exists for the /24 containing `addr`.
    pub fn ensure_reverse_zone(&self, addr: Ipv4Addr) {
        let apex = DnsName::reverse_v4_zone24(addr.into());
        self.ensure_zone(apex);
    }

    /// Ensure a zone with the given apex exists (used for forward zones
    /// when the IPAM layer also maintains A records — §10 future work).
    pub fn ensure_zone(&self, apex: DnsName) {
        if self.directory.read().contains_key(&apex) {
            return;
        }
        let mut dir = self.directory.write();
        if !dir.contains_key(&apex) {
            dir.insert(apex.clone(), Arc::new(RwLock::new(Zone::new(apex))));
        }
    }

    /// All zone apexes, in order (for zone-at-a-time iteration).
    pub fn zone_apexes(&self) -> Vec<DnsName> {
        self.directory.read().keys().cloned().collect()
    }

    /// Install or replace the A record for `name`.
    pub fn set_a(&self, name: &DnsName, addr: Ipv4Addr, ttl: u32) -> bool {
        match self.stripe_for(name) {
            Some(stripe) => {
                stripe.write().upsert(ResourceRecord::new(
                    name.clone(),
                    ttl,
                    RecordData::A(addr),
                ));
                true
            }
            None => false,
        }
    }

    /// Remove the A record for `name`. Returns whether one existed.
    pub fn remove_a(&self, name: &DnsName) -> bool {
        match self.stripe_for(name) {
            Some(stripe) => stripe.write().remove(name, RecordType::A) > 0,
            None => false,
        }
    }

    /// Direct A lookup (in-process fast path).
    pub fn get_a(&self, name: &DnsName) -> Option<Ipv4Addr> {
        match self.lookup(name, RecordType::A) {
            LookupResult::Answer(rrs) => rrs.into_iter().find_map(|rr| match rr.data {
                RecordData::A(a) => Some(a),
                _ => None,
            }),
            _ => None,
        }
    }

    /// Install or replace the PTR record for `addr`.
    pub fn set_ptr(&self, addr: Ipv4Addr, target: DnsName, ttl: u32) -> bool {
        let name = DnsName::reverse_v4(addr);
        match self.stripe_for(&name) {
            Some(stripe) => {
                stripe.write().upsert(ResourceRecord::ptr(addr, target, ttl));
                true
            }
            None => false,
        }
    }

    /// Remove the PTR record for `addr`. Returns whether one existed.
    pub fn remove_ptr(&self, addr: Ipv4Addr) -> bool {
        let name = DnsName::reverse_v4(addr);
        match self.stripe_for(&name) {
            Some(stripe) => stripe.write().remove(&name, RecordType::PTR) > 0,
            None => false,
        }
    }

    /// Direct (in-process) PTR lookup: the fast path used by snapshotters.
    pub fn get_ptr(&self, addr: Ipv4Addr) -> Option<DnsName> {
        let name = DnsName::reverse_v4(addr);
        match self.lookup(&name, RecordType::PTR) {
            LookupResult::Answer(rrs) => rrs.into_iter().find_map(|rr| match rr.data {
                RecordData::Ptr(t) => Some(t),
                _ => None,
            }),
            _ => None,
        }
    }

    /// Install or replace the PTR record for an IPv6 address (the zone for
    /// its `ip6.arpa` tree must exist; see [`ZoneStore::ensure_zone`]).
    /// Targeted IPv6 measurement is the §8 escalation path.
    pub fn set_ptr6(&self, addr: std::net::Ipv6Addr, target: DnsName, ttl: u32) -> bool {
        let name = DnsName::reverse_v6(addr);
        match self.stripe_for(&name) {
            Some(stripe) => {
                stripe
                    .write()
                    .upsert(ResourceRecord::new(name, ttl, RecordData::Ptr(target)));
                true
            }
            None => false,
        }
    }

    /// Direct PTR lookup for an IPv6 address.
    pub fn get_ptr6(&self, addr: std::net::Ipv6Addr) -> Option<DnsName> {
        let name = DnsName::reverse_v6(addr);
        match self.lookup(&name, RecordType::PTR) {
            LookupResult::Answer(rrs) => rrs.into_iter().find_map(|rr| match rr.data {
                RecordData::Ptr(t) => Some(t),
                _ => None,
            }),
            _ => None,
        }
    }

    /// Remove the PTR record for an IPv6 address.
    pub fn remove_ptr6(&self, addr: std::net::Ipv6Addr) -> bool {
        let name = DnsName::reverse_v6(addr);
        match self.stripe_for(&name) {
            Some(stripe) => stripe.write().remove(&name, RecordType::PTR) > 0,
            None => false,
        }
    }

    /// Full lookup with authoritative semantics (for the wire server).
    /// Pins exactly one zone stripe, never the whole store.
    pub fn lookup(&self, qname: &DnsName, qtype: RecordType) -> LookupResult {
        match self.stripe_for(qname) {
            Some(stripe) => stripe.read().lookup(qname, qtype),
            None => LookupResult::NotAuthoritative,
        }
    }

    /// Total PTR record count across all zones (snapshot statistics).
    /// Zones are counted one stripe at a time.
    pub fn ptr_count(&self) -> usize {
        self.stripes()
            .into_iter()
            .map(|(_, stripe)| {
                stripe
                    .read()
                    .iter_records()
                    .filter(|rr| rr.data.rtype() == RecordType::PTR)
                    .count()
            })
            .sum()
    }

    /// Run `f` over every PTR record as `(addr, target)`, zone by zone: the
    /// directory is snapshotted once, then each zone's stripe is read-locked
    /// individually, so concurrent writers to other zones are never blocked
    /// for the duration of the sweep.
    pub fn for_each_ptr<F: FnMut(Ipv4Addr, &DnsName)>(&self, mut f: F) {
        for apex in self.zone_apexes() {
            self.for_each_ptr_in(&apex, &mut f);
        }
    }

    /// Run `f` over every PTR record in the zone at `apex` (exact match),
    /// holding only that zone's read lock.
    pub fn for_each_ptr_in<F: FnMut(Ipv4Addr, &DnsName)>(&self, apex: &DnsName, f: &mut F) {
        let stripe = match self.directory.read().get(apex) {
            Some(stripe) => Arc::clone(stripe),
            None => return,
        };
        let zone = stripe.read();
        for rr in zone.iter_records() {
            if let RecordData::Ptr(target) = &rr.data {
                if let Ok(addr) = rr.name.parse_reverse_v4() {
                    f(addr, target);
                }
            }
        }
    }
}

impl DnsStore for ZoneStore {
    fn ensure_reverse_zone(&self, addr: Ipv4Addr) {
        ZoneStore::ensure_reverse_zone(self, addr);
    }
    fn ensure_zone(&self, apex: DnsName) {
        ZoneStore::ensure_zone(self, apex);
    }
    fn set_a(&self, name: &DnsName, addr: Ipv4Addr, ttl: u32) -> bool {
        ZoneStore::set_a(self, name, addr, ttl)
    }
    fn remove_a(&self, name: &DnsName) -> bool {
        ZoneStore::remove_a(self, name)
    }
    fn set_ptr(&self, addr: Ipv4Addr, target: DnsName, ttl: u32) -> bool {
        ZoneStore::set_ptr(self, addr, target, ttl)
    }
    fn remove_ptr(&self, addr: Ipv4Addr) -> bool {
        ZoneStore::remove_ptr(self, addr)
    }
    fn get_ptr(&self, addr: Ipv4Addr) -> Option<DnsName> {
        ZoneStore::get_ptr(self, addr)
    }
    fn ptr_count(&self) -> usize {
        ZoneStore::ptr_count(self)
    }
    fn visit_ptrs(&self, f: &mut dyn FnMut(Ipv4Addr, &DnsName)) {
        self.for_each_ptr(|addr, name| f(addr, name));
    }
}

/// The original coarse-grained store: one `RwLock` around a whole
/// [`ZoneSet`]. Every mutation takes the global write lock and re-runs
/// longest-match routing over all zones.
///
/// Kept as the serial baseline for `BENCH_sim.json` and as the differential
/// oracle behind `MonolithWorld` — not used on the hot path.
#[derive(Debug, Clone, Default)]
pub struct CoarseZoneStore {
    inner: Arc<RwLock<ZoneSet>>,
}

impl CoarseZoneStore {
    /// An empty store.
    pub fn new() -> CoarseZoneStore {
        CoarseZoneStore::default()
    }

    /// Add a zone.
    pub fn add_zone(&self, zone: Zone) {
        self.inner.write().insert(zone);
    }

    /// Ensure a reverse zone exists for the /24 containing `addr`.
    pub fn ensure_reverse_zone(&self, addr: Ipv4Addr) {
        let apex = DnsName::reverse_v4_zone24(addr.into());
        self.ensure_zone(apex);
    }

    /// Ensure a zone with the given apex exists.
    pub fn ensure_zone(&self, apex: DnsName) {
        let mut set = self.inner.write();
        if set.find_zone(&apex).map(|z| z.apex() == &apex) != Some(true) {
            set.insert(Zone::new(apex));
        }
    }

    /// Install or replace the A record for `name`.
    pub fn set_a(&self, name: &DnsName, addr: Ipv4Addr, ttl: u32) -> bool {
        let mut set = self.inner.write();
        match set.find_zone_mut(name) {
            Some(zone) => {
                zone.upsert(ResourceRecord::new(
                    name.clone(),
                    ttl,
                    RecordData::A(addr),
                ));
                true
            }
            None => false,
        }
    }

    /// Remove the A record for `name`. Returns whether one existed.
    pub fn remove_a(&self, name: &DnsName) -> bool {
        let mut set = self.inner.write();
        match set.find_zone_mut(name) {
            Some(zone) => zone.remove(name, RecordType::A) > 0,
            None => false,
        }
    }

    /// Install or replace the PTR record for `addr`.
    pub fn set_ptr(&self, addr: Ipv4Addr, target: DnsName, ttl: u32) -> bool {
        let name = DnsName::reverse_v4(addr);
        let mut set = self.inner.write();
        match set.find_zone_mut(&name) {
            Some(zone) => {
                zone.upsert(ResourceRecord::ptr(addr, target, ttl));
                true
            }
            None => false,
        }
    }

    /// Remove the PTR record for `addr`. Returns whether one existed.
    pub fn remove_ptr(&self, addr: Ipv4Addr) -> bool {
        let name = DnsName::reverse_v4(addr);
        let mut set = self.inner.write();
        match set.find_zone_mut(&name) {
            Some(zone) => zone.remove(&name, RecordType::PTR) > 0,
            None => false,
        }
    }

    /// Direct (in-process) PTR lookup.
    pub fn get_ptr(&self, addr: Ipv4Addr) -> Option<DnsName> {
        let name = DnsName::reverse_v4(addr);
        let set = self.inner.read();
        match set.lookup(&name, RecordType::PTR) {
            LookupResult::Answer(rrs) => rrs.into_iter().find_map(|rr| match rr.data {
                RecordData::Ptr(t) => Some(t),
                _ => None,
            }),
            _ => None,
        }
    }

    /// Full lookup with authoritative semantics.
    pub fn lookup(&self, qname: &DnsName, qtype: RecordType) -> LookupResult {
        self.inner.read().lookup(qname, qtype)
    }

    /// Total PTR record count across all zones.
    pub fn ptr_count(&self) -> usize {
        self.inner
            .read()
            .iter()
            .flat_map(|z| z.iter_records())
            .filter(|rr| rr.data.rtype() == RecordType::PTR)
            .count()
    }

    /// Run `f` over every PTR record as `(addr, target)`. Holds the global
    /// read lock for the whole sweep — the behaviour the striped store was
    /// introduced to avoid.
    pub fn for_each_ptr<F: FnMut(Ipv4Addr, &DnsName)>(&self, mut f: F) {
        let set = self.inner.read();
        for zone in set.iter() {
            for rr in zone.iter_records() {
                if let RecordData::Ptr(target) = &rr.data {
                    if let Ok(addr) = rr.name.parse_reverse_v4() {
                        f(addr, target);
                    }
                }
            }
        }
    }
}

impl DnsStore for CoarseZoneStore {
    fn ensure_reverse_zone(&self, addr: Ipv4Addr) {
        CoarseZoneStore::ensure_reverse_zone(self, addr);
    }
    fn ensure_zone(&self, apex: DnsName) {
        CoarseZoneStore::ensure_zone(self, apex);
    }
    fn set_a(&self, name: &DnsName, addr: Ipv4Addr, ttl: u32) -> bool {
        CoarseZoneStore::set_a(self, name, addr, ttl)
    }
    fn remove_a(&self, name: &DnsName) -> bool {
        CoarseZoneStore::remove_a(self, name)
    }
    fn set_ptr(&self, addr: Ipv4Addr, target: DnsName, ttl: u32) -> bool {
        CoarseZoneStore::set_ptr(self, addr, target, ttl)
    }
    fn remove_ptr(&self, addr: Ipv4Addr) -> bool {
        CoarseZoneStore::remove_ptr(self, addr)
    }
    fn get_ptr(&self, addr: Ipv4Addr) -> Option<DnsName> {
        CoarseZoneStore::get_ptr(self, addr)
    }
    fn ptr_count(&self) -> usize {
        CoarseZoneStore::ptr_count(self)
    }
    fn visit_ptrs(&self, f: &mut dyn FnMut(Ipv4Addr, &DnsName)) {
        self.for_each_ptr(|addr, name| f(addr, name));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn zone_lookup_semantics() {
        let apex: DnsName = "2.0.192.in-addr.arpa".parse().unwrap();
        let mut zone = Zone::new(apex.clone());
        let rec_name = DnsName::reverse_v4(addr("192.0.2.34"));
        zone.upsert(ResourceRecord::ptr(
            addr("192.0.2.34"),
            "host.example.edu".parse().unwrap(),
            300,
        ));

        // Existing name + type -> Answer.
        match zone.lookup(&rec_name, RecordType::PTR) {
            LookupResult::Answer(rrs) => assert_eq!(rrs.len(), 1),
            other => panic!("expected answer, got {other:?}"),
        }
        // Existing name, absent type -> NoData with SOA.
        assert!(matches!(
            zone.lookup(&rec_name, RecordType::TXT),
            LookupResult::NoData { .. }
        ));
        // Absent name -> NXDOMAIN with SOA.
        let missing = DnsName::reverse_v4(addr("192.0.2.35"));
        assert!(matches!(
            zone.lookup(&missing, RecordType::PTR),
            LookupResult::NxDomain { .. }
        ));
        // Outside zone -> NotAuthoritative.
        let outside = DnsName::reverse_v4(addr("192.0.3.1"));
        assert_eq!(
            zone.lookup(&outside, RecordType::PTR),
            LookupResult::NotAuthoritative
        );
    }

    #[test]
    fn apex_soa_and_ns() {
        let apex: DnsName = "2.0.192.in-addr.arpa".parse().unwrap();
        let zone = Zone::new(apex.clone());
        assert!(matches!(
            zone.lookup(&apex, RecordType::SOA),
            LookupResult::Answer(_)
        ));
        assert!(matches!(
            zone.lookup(&apex, RecordType::NS),
            LookupResult::Answer(_)
        ));
        assert!(matches!(
            zone.lookup(&apex, RecordType::A),
            LookupResult::NoData { .. }
        ));
    }

    #[test]
    fn upsert_replaces_and_bumps_serial() {
        let mut zone = Zone::new("2.0.192.in-addr.arpa".parse().unwrap());
        let s0 = zone.serial();
        zone.upsert(ResourceRecord::ptr(
            addr("192.0.2.1"),
            "a.example.org".parse().unwrap(),
            300,
        ));
        let s1 = zone.serial();
        assert!(s1 > s0);
        zone.upsert(ResourceRecord::ptr(
            addr("192.0.2.1"),
            "b.example.org".parse().unwrap(),
            300,
        ));
        assert!(zone.serial() > s1);
        match zone.lookup(&DnsName::reverse_v4(addr("192.0.2.1")), RecordType::PTR) {
            LookupResult::Answer(rrs) => {
                assert_eq!(rrs.len(), 1);
                assert!(matches!(&rrs[0].data, RecordData::Ptr(n) if n.to_string() == "b.example.org."));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn remove_semantics() {
        let mut zone = Zone::new("2.0.192.in-addr.arpa".parse().unwrap());
        let name = DnsName::reverse_v4(addr("192.0.2.1"));
        assert_eq!(zone.remove(&name, RecordType::PTR), 0);
        zone.upsert(ResourceRecord::ptr(
            addr("192.0.2.1"),
            "a.example.org".parse().unwrap(),
            300,
        ));
        assert_eq!(zone.remove(&name, RecordType::PTR), 1);
        assert!(matches!(
            zone.lookup(&name, RecordType::PTR),
            LookupResult::NxDomain { .. }
        ));
        assert_eq!(zone.name_count(), 0);
    }

    #[test]
    fn zoneset_longest_match() {
        let mut set = ZoneSet::new();
        set.insert(Zone::new("in-addr.arpa".parse().unwrap()));
        set.insert(Zone::new("2.0.192.in-addr.arpa".parse().unwrap()));
        let q = DnsName::reverse_v4(addr("192.0.2.1"));
        let z = set.find_zone(&q).unwrap();
        assert_eq!(z.apex().to_string(), "2.0.192.in-addr.arpa.");
        let q2 = DnsName::reverse_v4(addr("10.0.0.1"));
        let z2 = set.find_zone(&q2).unwrap();
        assert_eq!(z2.apex().to_string(), "in-addr.arpa.");
        let forward: DnsName = "www.example.com".parse().unwrap();
        assert!(set.find_zone(&forward).is_none());
        assert_eq!(
            set.lookup(&forward, RecordType::A),
            LookupResult::NotAuthoritative
        );
    }

    #[test]
    fn store_ptr_lifecycle() {
        let store = ZoneStore::new();
        let a = addr("192.0.2.34");
        store.ensure_reverse_zone(a);
        assert_eq!(store.get_ptr(a), None);
        assert!(store.set_ptr(a, "brians-iphone.example.edu".parse().unwrap(), 300));
        assert_eq!(
            store.get_ptr(a).unwrap().to_string(),
            "brians-iphone.example.edu."
        );
        assert_eq!(store.ptr_count(), 1);
        assert!(store.remove_ptr(a));
        assert!(!store.remove_ptr(a));
        assert_eq!(store.get_ptr(a), None);
        assert_eq!(store.ptr_count(), 0);
    }

    #[test]
    fn store_rejects_unowned_space() {
        let store = ZoneStore::new();
        assert!(!store.set_ptr(addr("8.8.8.8"), "x.example".parse().unwrap(), 300));
        assert!(!store.remove_ptr(addr("8.8.8.8")));
    }

    #[test]
    fn store_for_each_ptr() {
        let store = ZoneStore::new();
        for i in 1..=5u8 {
            let a = Ipv4Addr::new(192, 0, 2, i);
            store.ensure_reverse_zone(a);
            store.set_ptr(a, format!("h{i}.example.org").parse().unwrap(), 300);
        }
        let mut seen = Vec::new();
        store.for_each_ptr(|ip, name| seen.push((ip, name.to_string())));
        assert_eq!(seen.len(), 5);
        assert!(seen.iter().any(|(ip, n)| *ip == addr("192.0.2.3") && n == "h3.example.org."));
    }

    #[test]
    fn ipv6_ptr_lifecycle() {
        let store = ZoneStore::new();
        let addr: std::net::Ipv6Addr = "2001:db8::42".parse().unwrap();
        // Delegate the documentation prefix's /32 reverse tree:
        // 2001:db8::/32 → 8.b.d.0.1.0.0.2.ip6.arpa.
        let apex: DnsName = "8.b.d.0.1.0.0.2.ip6.arpa".parse().unwrap();
        store.ensure_zone(apex.clone());
        // Sanity: the full reverse name sits under the apex.
        assert!(DnsName::reverse_v6(addr).is_subdomain_of(&apex));
        assert_eq!(store.get_ptr6(addr), None);
        assert!(store.set_ptr6(addr, "brians-v6-laptop.example.edu".parse().unwrap(), 300));
        assert_eq!(
            store.get_ptr6(addr).unwrap().to_string(),
            "brians-v6-laptop.example.edu."
        );
        assert!(store.remove_ptr6(addr));
        assert!(!store.remove_ptr6(addr));
        assert_eq!(store.get_ptr6(addr), None);
        // Undelegated space is rejected.
        let foreign: std::net::Ipv6Addr = "2001:db9::1".parse().unwrap();
        assert!(!store.set_ptr6(foreign, "x.example".parse().unwrap(), 300));
    }

    #[test]
    fn forward_zone_a_records() {
        let store = ZoneStore::new();
        store.ensure_zone("campus.example.edu".parse().unwrap());
        let name: DnsName = "brians-iphone.campus.example.edu".parse().unwrap();
        assert_eq!(store.get_a(&name), None);
        assert!(store.set_a(&name, addr("10.0.0.5"), 300));
        assert_eq!(store.get_a(&name), Some(addr("10.0.0.5")));
        // Replace.
        assert!(store.set_a(&name, addr("10.0.0.6"), 300));
        assert_eq!(store.get_a(&name), Some(addr("10.0.0.6")));
        assert!(store.remove_a(&name));
        assert!(!store.remove_a(&name));
        assert_eq!(store.get_a(&name), None);
        // Out-of-bailiwick names rejected.
        let foreign: DnsName = "x.elsewhere.org".parse().unwrap();
        assert!(!store.set_a(&foreign, addr("10.0.0.1"), 300));
    }

    #[test]
    fn ensure_reverse_zone_idempotent() {
        let store = ZoneStore::new();
        let a = addr("192.0.2.1");
        store.ensure_reverse_zone(a);
        store.set_ptr(a, "x.example.org".parse().unwrap(), 300);
        store.ensure_reverse_zone(a); // must not wipe records
        assert!(store.get_ptr(a).is_some());
    }

    #[test]
    fn striped_longest_match_routing() {
        // Nested zones: the striped suffix walk must pick the deepest apex,
        // exactly like ZoneSet::find_zone.
        let store = ZoneStore::new();
        store.ensure_zone("in-addr.arpa".parse().unwrap());
        store.ensure_zone("2.0.192.in-addr.arpa".parse().unwrap());
        let inner = addr("192.0.2.9");
        let outer = addr("10.0.0.9");
        assert!(store.set_ptr(inner, "deep.example.org".parse().unwrap(), 300));
        assert!(store.set_ptr(outer, "shallow.example.org".parse().unwrap(), 300));
        assert_eq!(store.get_ptr(inner).unwrap().to_string(), "deep.example.org.");
        assert_eq!(store.get_ptr(outer).unwrap().to_string(), "shallow.example.org.");
        // The deep record must live in the /24 zone, not the broad one.
        let mut in_deep = Vec::new();
        store.for_each_ptr_in(&"2.0.192.in-addr.arpa".parse().unwrap(), &mut |a, _| {
            in_deep.push(a)
        });
        assert_eq!(in_deep, vec![inner]);
        assert_eq!(
            store.zone_apexes(),
            vec![
                "2.0.192.in-addr.arpa".parse::<DnsName>().unwrap(),
                "in-addr.arpa".parse().unwrap(),
            ]
        );
    }

    #[test]
    fn striped_and_coarse_stores_agree() {
        // Drive both DnsStore impls through the same operation sequence and
        // compare observable state — the differential contract MonolithWorld
        // relies on.
        fn drive<S: DnsStore>(store: &S) -> Vec<(Ipv4Addr, String)> {
            for i in 1..=6u8 {
                let a = Ipv4Addr::new(192, 0, 2, i);
                store.ensure_reverse_zone(a);
                store.set_ptr(a, format!("h{i}.example.org").parse().unwrap(), 300);
            }
            store.remove_ptr(addr("192.0.2.4"));
            store.set_ptr(addr("192.0.2.2"), "renamed.example.org".parse().unwrap(), 300);
            let fwd: DnsName = "renamed.campus.example.edu".parse().unwrap();
            store.ensure_zone(fwd.parent());
            store.set_a(&fwd, addr("192.0.2.2"), 300);
            let mut seen = Vec::new();
            store.visit_ptrs(&mut |a, n| seen.push((a, n.to_string())));
            assert_eq!(store.ptr_count(), seen.len());
            seen
        }
        let striped = drive(&ZoneStore::new());
        let coarse = drive(&CoarseZoneStore::new());
        assert_eq!(striped, coarse);
        assert_eq!(striped.len(), 5);
    }
}
