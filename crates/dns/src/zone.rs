//! Authoritative zone data with dynamic-update semantics.
//!
//! The DHCP→DNS coupling studied by the paper manifests as runtime changes to
//! reverse zones: PTR records appear when leases are allocated and disappear
//! when leases are released or expire. [`Zone`] models one authoritative zone
//! (typically `c.b.a.in-addr.arpa.` for a /24, or a broader reverse tree) and
//! [`ZoneSet`] routes queries to the closest enclosing zone.
//!
//! Two concurrent stores share the [`DnsStore`] interface:
//!
//! * [`ZoneStore`] — the lock-striped store: a read-mostly directory maps
//!   zone apexes to per-zone `RwLock`s, so writers touching different zones
//!   (simulator shards, DHCP-driven IPAM updates) never contend, and readers
//!   (the UDP server, snapshotters) only pin one zone at a time.
//! * [`CoarseZoneStore`] — the original single-`RwLock<ZoneSet>` store, kept
//!   as the serial baseline for benchmarks and as a differential oracle for
//!   the sharded simulator.

use crate::message::{RecordData, RecordType, ResourceRecord};
use crate::name::DnsName;
use crate::ptr_table::{self, PtrTable};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;
// lint:allow(raw-atomic-stats) -- AtomicU64 here is the structural generation sequence number (cache-coherence stamp), not a statistic; it is never rendered or aggregated
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Result of an authoritative lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupResult {
    /// Records found.
    Answer(Vec<ResourceRecord>),
    /// The name exists but has no records of the queried type.
    NoData {
        /// The zone's SOA, for the authority section.
        soa: ResourceRecord,
    },
    /// The name does not exist in the zone.
    NxDomain {
        /// The zone's SOA, for the authority section.
        soa: ResourceRecord,
    },
    /// No zone here is authoritative for the name.
    NotAuthoritative,
}

/// One authoritative zone.
#[derive(Debug, Clone)]
pub struct Zone {
    apex: DnsName,
    soa: ResourceRecord,
    ns: Vec<ResourceRecord>,
    /// Records by owner name, then by type.
    records: BTreeMap<DnsName, Vec<ResourceRecord>>,
    serial: u32,
    /// Interned columnar PTR storage; `Some` only for canonical /24 reverse
    /// zones built with [`Zone::new_interned`]. Every observable behaviour
    /// (answers, serials, counts, visit order) is byte-identical to the
    /// general map — the table is purely a memory representation.
    ptr: Option<PtrTable>,
}

impl Zone {
    /// Create a zone with a default SOA.
    pub fn new(apex: DnsName) -> Zone {
        let mname: DnsName = "ns1.measurement.invalid"
            .parse()
            .expect("static name is valid");
        let rname: DnsName = "hostmaster.measurement.invalid"
            .parse()
            .expect("static name is valid");
        let serial = 1;
        let soa = ResourceRecord::new(
            apex.clone(),
            3600,
            RecordData::Soa {
                mname: mname.clone(),
                rname,
                serial,
                refresh: 7200,
                retry: 900,
                expire: 1_209_600,
                minimum: 300,
            },
        );
        let ns = vec![ResourceRecord::new(apex.clone(), 3600, RecordData::Ns(mname))];
        Zone {
            apex,
            soa,
            ns,
            records: BTreeMap::new(),
            serial,
            ptr: None,
        }
    }

    /// Create a zone that stores PTR records in an interned [`PtrTable`]
    /// when the apex is a canonical /24 reverse apex (`c.b.a.in-addr.arpa`);
    /// any other apex gets the general representation, so this is always a
    /// safe drop-in for [`Zone::new`].
    pub fn new_interned(apex: DnsName) -> Zone {
        let table = PtrTable::for_apex(&apex);
        let mut zone = Zone::new(apex);
        zone.ptr = table;
        zone
    }

    /// Whether PTR records are held in the interned columnar table.
    pub fn is_interned(&self) -> bool {
        self.ptr.is_some()
    }

    /// If this zone is interned and `name` is the canonical child
    /// `o.c.b.a.in-addr.arpa` of the apex, return the host octet `o`.
    fn table_octet(&self, name: &DnsName) -> Option<u8> {
        self.ptr.as_ref()?;
        let labels = name.labels();
        let apex_labels = self.apex.labels();
        if labels.len() != apex_labels.len() + 1 || labels[1..] != apex_labels[..] {
            return None;
        }
        ptr_table::parse_octet_label(&labels[0])
    }

    /// The zone apex name.
    pub fn apex(&self) -> &DnsName {
        &self.apex
    }

    /// Current SOA serial; increases with every mutation.
    pub fn serial(&self) -> u32 {
        self.serial
    }

    /// The SOA record (serial kept in sync).
    pub fn soa(&self) -> &ResourceRecord {
        &self.soa
    }

    /// Number of record owner names (excluding apex SOA/NS bookkeeping).
    pub fn name_count(&self) -> usize {
        let mut n = self.records.len();
        if let Some(table) = &self.ptr {
            n += table.len();
            if !self.records.is_empty() {
                // An owner name may carry non-PTR records in the map while
                // its PTR lives in the table; don't double-count it.
                let mut overlap = 0usize;
                table.visit(|octet, _, _| {
                    if let Ok(child) = self.apex.child(&octet.to_string()) {
                        if self.records.contains_key(&child) {
                            overlap += 1;
                        }
                    }
                });
                n -= overlap;
            }
        }
        n
    }

    /// Iterate the general-map records (excluding apex SOA/NS and any
    /// interned PTRs, which have no materialized `ResourceRecord` to lend
    /// out — use [`Zone::visit_ptrs`] to see every PTR).
    pub fn iter_records(&self) -> impl Iterator<Item = &ResourceRecord> {
        self.records.values().flatten()
    }

    /// Total PTR record count (interned table + general map).
    pub fn ptr_count(&self) -> usize {
        self.ptr.as_ref().map_or(0, PtrTable::len)
            + self
                .iter_records()
                .filter(|rr| rr.data.rtype() == RecordType::PTR)
                .count()
    }

    /// Run `f` over every PTR record as `(addr, target)`, in exactly the
    /// owner-name order the general `BTreeMap` representation yields.
    pub fn visit_ptrs<F: FnMut(Ipv4Addr, &DnsName)>(&self, f: &mut F) {
        let map_has_ptrs = self
            .iter_records()
            .any(|rr| rr.data.rtype() == RecordType::PTR);
        if let Some(table) = &self.ptr {
            if !map_has_ptrs {
                table.visit(|octet, text, _| {
                    let target = DnsName::parse(text).expect("interned text is a valid name");
                    f(table.addr_of(octet), &target);
                });
                return;
            }
            // Rare: PTRs in both stores (unrepresentable targets fall back
            // to the map). Merge in owner-name order.
            let mut rows: Vec<(DnsName, Ipv4Addr, DnsName)> = Vec::new();
            table.visit(|octet, text, _| {
                let addr = table.addr_of(octet);
                let target = DnsName::parse(text).expect("interned text is a valid name");
                rows.push((DnsName::reverse_v4(addr), addr, target));
            });
            for rr in self.iter_records() {
                if let RecordData::Ptr(target) = &rr.data {
                    if let Ok(addr) = rr.name.parse_reverse_v4() {
                        rows.push((rr.name.clone(), addr, target.clone()));
                    }
                }
            }
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            for (_, addr, target) in &rows {
                f(*addr, target);
            }
            return;
        }
        for rr in self.iter_records() {
            if let RecordData::Ptr(target) = &rr.data {
                if let Ok(addr) = rr.name.parse_reverse_v4() {
                    f(addr, target);
                }
            }
        }
    }

    /// Run `f` over every PTR record as `(addr, hostname text)` — the
    /// normalized [`rdns_model::Hostname`] form (lower-case, no trailing
    /// dot). Interned zones lend the stored text without rebuilding a
    /// `DnsName`, which is the snapshot sweep's zero-copy fast path.
    pub fn visit_ptr_hostnames<F: FnMut(Ipv4Addr, &str)>(&self, f: &mut F) {
        let map_has_ptrs = self
            .iter_records()
            .any(|rr| rr.data.rtype() == RecordType::PTR);
        if let Some(table) = &self.ptr {
            if !map_has_ptrs {
                table.visit(|octet, text, _| f(table.addr_of(octet), text));
                return;
            }
        }
        self.visit_ptrs(&mut |addr, target| {
            let hostname = target.to_hostname();
            f(addr, hostname.as_str());
        });
    }

    fn bump_serial(&mut self) {
        self.serial = self.serial.wrapping_add(1).max(1);
        if let RecordData::Soa { serial, .. } = &mut self.soa.data {
            *serial = self.serial;
        }
    }

    /// Whether this zone is authoritative for `name`.
    pub fn is_authoritative_for(&self, name: &DnsName) -> bool {
        name.is_subdomain_of(&self.apex)
    }

    /// Add a record, replacing existing records of the same type on the same
    /// owner name (last-writer-wins, matching dynamic-update semantics of
    /// DHCP-driven IPAM systems).
    pub fn upsert(&mut self, rr: ResourceRecord) {
        debug_assert!(self.is_authoritative_for(&rr.name));
        let rtype = rr.data.rtype();
        if rtype == RecordType::PTR {
            if let Some(octet) = self.table_octet(&rr.name) {
                if let RecordData::Ptr(target) = &rr.data {
                    if let Some(text) = ptr_table::intern_target(target) {
                        // The PTR for this octet lives in exactly one place:
                        // purge any map-resident copy, then intern.
                        self.purge_map_ptr(&rr.name);
                        let table = self.ptr.as_mut().expect("table_octet implies table");
                        table.set(octet, text, rr.ttl);
                        self.bump_serial();
                        return;
                    }
                }
                // Unrepresentable target: store in the map, keeping the
                // single-home invariant by dropping any interned copy.
                let table = self.ptr.as_mut().expect("table_octet implies table");
                table.remove(octet);
            }
        }
        let entry = self.records.entry(rr.name.clone()).or_default();
        entry.retain(|existing| existing.data.rtype() != rtype);
        entry.push(rr);
        self.bump_serial();
    }

    /// Drop a map-resident PTR on `name` without touching the serial.
    fn purge_map_ptr(&mut self, name: &DnsName) {
        if self.records.is_empty() {
            return;
        }
        if let Some(entry) = self.records.get_mut(name) {
            entry.retain(|rr| rr.data.rtype() != RecordType::PTR);
            if entry.is_empty() {
                self.records.remove(name);
            }
        }
    }

    /// Install or replace the PTR for `addr` without materializing the
    /// six-label owner name when the zone is interned — the allocation-free
    /// hot path behind [`ZoneStore::set_ptr`]. Falls back to the general
    /// upsert for non-interned zones or foreign /24s.
    pub(crate) fn set_ptr_octet(&mut self, addr: Ipv4Addr, target: &DnsName, ttl: u32) {
        let in_table = self
            .ptr
            .as_ref()
            .is_some_and(|t| t.prefix() == u32::from(addr) >> 8);
        if in_table {
            if let Some(text) = ptr_table::intern_target(target) {
                if !self.records.is_empty() {
                    self.purge_map_ptr(&DnsName::reverse_v4(addr));
                }
                let table = self.ptr.as_mut().expect("checked above");
                table.set(addr.octets()[3], text, ttl);
                self.bump_serial();
                return;
            }
        }
        self.upsert(ResourceRecord::ptr(addr, target.clone(), ttl));
    }

    /// Remove the PTR for `addr`; the interned counterpart of
    /// [`Zone::set_ptr_octet`]. Returns whether a record existed.
    pub(crate) fn remove_ptr_octet(&mut self, addr: Ipv4Addr) -> bool {
        let in_table = self
            .ptr
            .as_ref()
            .is_some_and(|t| t.prefix() == u32::from(addr) >> 8);
        if in_table {
            let mut removed = self
                .ptr
                .as_mut()
                .expect("checked above")
                .remove(addr.octets()[3]) as usize;
            if !self.records.is_empty() {
                let name = DnsName::reverse_v4(addr);
                if let Some(entry) = self.records.get_mut(&name) {
                    let before = entry.len();
                    entry.retain(|rr| rr.data.rtype() != RecordType::PTR);
                    removed += before - entry.len();
                    if entry.is_empty() {
                        self.records.remove(&name);
                    }
                }
            }
            if removed > 0 {
                self.bump_serial();
            }
            return removed > 0;
        }
        self.remove(&DnsName::reverse_v4(addr), RecordType::PTR) > 0
    }

    /// Direct PTR read for `addr` without building the owner name on the
    /// interned path.
    pub(crate) fn get_ptr_octet(&self, addr: Ipv4Addr) -> Option<DnsName> {
        let in_table = self
            .ptr
            .as_ref()
            .is_some_and(|t| t.prefix() == u32::from(addr) >> 8);
        if in_table {
            let table = self.ptr.as_ref().expect("checked above");
            if let Some((text, _)) = table.get(addr.octets()[3]) {
                return Some(DnsName::parse(text).expect("interned text is a valid name"));
            }
            if self.records.is_empty() {
                return None;
            }
        }
        match self.lookup(&DnsName::reverse_v4(addr), RecordType::PTR) {
            LookupResult::Answer(rrs) => rrs.into_iter().find_map(|rr| match rr.data {
                RecordData::Ptr(t) => Some(t),
                _ => None,
            }),
            _ => None,
        }
    }

    /// Remove all records of `rtype` on `name`. Returns how many were removed.
    pub fn remove(&mut self, name: &DnsName, rtype: RecordType) -> usize {
        let mut removed = 0;
        if rtype == RecordType::PTR {
            if let Some(octet) = self.table_octet(name) {
                let table = self.ptr.as_mut().expect("table_octet implies table");
                removed += table.remove(octet) as usize;
            }
        }
        if let Some(entry) = self.records.get_mut(name) {
            let before = entry.len();
            entry.retain(|rr| rr.data.rtype() != rtype);
            removed += before - entry.len();
            if entry.is_empty() {
                self.records.remove(name);
            }
        }
        if removed > 0 {
            self.bump_serial();
        }
        removed
    }

    /// Authoritative lookup inside this zone.
    pub fn lookup(&self, qname: &DnsName, qtype: RecordType) -> LookupResult {
        if !self.is_authoritative_for(qname) {
            return LookupResult::NotAuthoritative;
        }
        if qname == &self.apex {
            let mut out = Vec::new();
            match qtype {
                RecordType::SOA => out.push(self.soa.clone()),
                RecordType::NS => out.extend(self.ns.iter().cloned()),
                _ => {}
            }
            if out.is_empty() {
                return LookupResult::NoData {
                    soa: self.soa.clone(),
                };
            }
            return LookupResult::Answer(out);
        }
        // Interned PTRs have no map entry; materialize on demand. The name
        // "exists" (NoData rather than NXDOMAIN) whenever either store
        // holds a record for it.
        let table_entry = self
            .table_octet(qname)
            .and_then(|octet| self.ptr.as_ref().and_then(|t| t.get(octet)));
        match self.records.get(qname) {
            Some(rrs) => {
                let mut matched: Vec<ResourceRecord> = rrs
                    .iter()
                    .filter(|rr| rr.data.rtype() == qtype)
                    .cloned()
                    .collect();
                if qtype == RecordType::PTR {
                    if let Some((text, ttl)) = table_entry {
                        matched.push(materialize_ptr(qname, text, ttl));
                    }
                }
                if matched.is_empty() {
                    LookupResult::NoData {
                        soa: self.soa.clone(),
                    }
                } else {
                    LookupResult::Answer(matched)
                }
            }
            None => match table_entry {
                Some((text, ttl)) if qtype == RecordType::PTR => {
                    LookupResult::Answer(vec![materialize_ptr(qname, text, ttl)])
                }
                Some(_) => LookupResult::NoData {
                    soa: self.soa.clone(),
                },
                None => LookupResult::NxDomain {
                    soa: self.soa.clone(),
                },
            },
        }
    }
}

/// Rebuild the full `ResourceRecord` for an interned PTR entry.
fn materialize_ptr(owner: &DnsName, text: &str, ttl: u32) -> ResourceRecord {
    let target = DnsName::parse(text).expect("interned text is a valid name");
    ResourceRecord::new(owner.clone(), ttl, RecordData::Ptr(target))
}

/// A set of zones with longest-match routing.
#[derive(Debug, Default, Clone)]
pub struct ZoneSet {
    /// Zones keyed by apex. BTreeMap for deterministic iteration.
    zones: BTreeMap<DnsName, Zone>,
}

impl ZoneSet {
    /// An empty set.
    pub fn new() -> ZoneSet {
        ZoneSet::default()
    }

    /// Insert (or replace) a zone.
    pub fn insert(&mut self, zone: Zone) {
        self.zones.insert(zone.apex().clone(), zone);
    }

    /// Number of zones.
    pub fn len(&self) -> usize {
        self.zones.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }

    /// The zone with the longest apex that is an ancestor of `name`.
    pub fn find_zone(&self, name: &DnsName) -> Option<&Zone> {
        self.zones
            .values()
            .filter(|z| name.is_subdomain_of(z.apex()))
            .max_by_key(|z| z.apex().label_count())
    }

    /// Mutable variant of [`ZoneSet::find_zone`].
    pub fn find_zone_mut(&mut self, name: &DnsName) -> Option<&mut Zone> {
        let apex = self.find_zone(name)?.apex().clone();
        self.zones.get_mut(&apex)
    }

    /// Look up across zones.
    pub fn lookup(&self, qname: &DnsName, qtype: RecordType) -> LookupResult {
        match self.find_zone(qname) {
            Some(zone) => zone.lookup(qname, qtype),
            None => LookupResult::NotAuthoritative,
        }
    }

    /// Iterate zones.
    pub fn iter(&self) -> impl Iterator<Item = &Zone> {
        self.zones.values()
    }
}

/// The zone-mutation interface shared by [`ZoneStore`] and
/// [`CoarseZoneStore`].
///
/// The IPAM layer, the simulator, and the snapshotter are generic over this
/// trait so the sharded engine (striped store) and the serial baseline
/// (coarse store) run the exact same update code paths.
pub trait DnsStore: Clone + Send + Sync + 'static {
    /// Ensure a reverse zone exists for the /24 containing `addr`.
    fn ensure_reverse_zone(&self, addr: Ipv4Addr);
    /// Ensure a zone with the given apex exists.
    fn ensure_zone(&self, apex: DnsName);
    /// Install or replace the A record for `name`.
    fn set_a(&self, name: &DnsName, addr: Ipv4Addr, ttl: u32) -> bool;
    /// Remove the A record for `name`. Returns whether one existed.
    fn remove_a(&self, name: &DnsName) -> bool;
    /// Install or replace the PTR record for `addr`.
    fn set_ptr(&self, addr: Ipv4Addr, target: DnsName, ttl: u32) -> bool;
    /// Remove the PTR record for `addr`. Returns whether one existed.
    fn remove_ptr(&self, addr: Ipv4Addr) -> bool;
    /// Direct (in-process) PTR lookup.
    fn get_ptr(&self, addr: Ipv4Addr) -> Option<DnsName>;
    /// Total PTR record count across all zones.
    fn ptr_count(&self) -> usize;
    /// Run `f` over every PTR record as `(addr, target)`, in deterministic
    /// apex-then-owner order.
    fn visit_ptrs(&self, f: &mut dyn FnMut(Ipv4Addr, &DnsName));
    /// Run `f` over every PTR record as `(addr, hostname text)` in the same
    /// order as [`DnsStore::visit_ptrs`], where the text is the normalized
    /// [`rdns_model::Hostname`] form (lower-case, no trailing dot).
    ///
    /// Snapshotters should prefer this: interned stores lend the stored
    /// text directly instead of materializing a `DnsName` per record.
    fn visit_ptr_hostnames(&self, f: &mut dyn FnMut(Ipv4Addr, &str)) {
        self.visit_ptrs(&mut |addr, name| {
            let hostname = name.to_hostname();
            f(addr, hostname.as_str());
        });
    }
}

/// Shared, concurrently-updatable zone data with per-zone lock striping.
///
/// The simulator's shards mutate PTR records as leases change; the UDP
/// server answers queries from the same store. A read-mostly directory maps
/// each apex to its own `Arc<RwLock<Zone>>` stripe (built once per zone at
/// `ensure_zone` time), so updates to distinct zones proceed without
/// contention and no operation ever holds a lock across more than one zone.
/// Cloning is cheap (reference-counted).
#[derive(Debug, Clone, Default)]
pub struct ZoneStore {
    directory: Arc<RwLock<BTreeMap<DnsName, Arc<RwLock<Zone>>>>>,
    /// Fast index for the PTR hot path: /24 network prefix
    /// (`u32::from(addr) >> 8`) → the stripe of its reverse zone. Lets
    /// `set_ptr`/`get_ptr`/`remove_ptr` skip building the six-label reverse
    /// name and walking the suffix directory. Key lookups only — never
    /// iterated into output.
    rev24: Arc<RwLock<HashMap<u32, Arc<RwLock<Zone>>>>>,
    /// Count of reverse apexes *deeper* than a /24 (6+ labels under
    /// `in-addr.arpa`). Nonzero disables the `rev24` shortcut, because a
    /// deeper zone could win longest-match routing over the /24.
    deep_reverse: Arc<AtomicUsize>,
    /// Store-wide structural generation, bumped whenever a zone is added or
    /// replaced. Paired with the per-zone serial it forms the response
    /// cache's generation stamp: the serial alone could repeat if a zone is
    /// swapped out for a fresh one whose serial happens to match.
    // lint:allow(raw-atomic-stats) -- sequence number feeding the response-cache stamp, not a counter; telemetry cells cannot be read back into coherence decisions
    structural_gen: Arc<AtomicU64>,
}

impl ZoneStore {
    /// An empty store.
    pub fn new() -> ZoneStore {
        ZoneStore::default()
    }

    /// Record a new zone in the fast-path indexes.
    fn index_zone(&self, apex: &DnsName, stripe: &Arc<RwLock<Zone>>) {
        if let Some(prefix) = ptr_table::reverse24_prefix(apex) {
            self.rev24.write().insert(prefix, Arc::clone(stripe));
            return;
        }
        let in_addr_arpa: DnsName = DnsName::from_labels(["in-addr", "arpa"])
            .expect("static name is valid");
        if apex.label_count() >= 6 && apex.is_subdomain_of(&in_addr_arpa) {
            self.deep_reverse.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The /24 reverse-zone stripe for `addr` when the shortcut is valid
    /// (the zone exists and no deeper reverse zone could shadow it).
    fn rev24_stripe(&self, addr: Ipv4Addr) -> Option<Arc<RwLock<Zone>>> {
        if self.deep_reverse.load(Ordering::Relaxed) != 0 {
            return None;
        }
        self.rev24.read().get(&(u32::from(addr) >> 8)).cloned()
    }

    /// The stripe holding the longest-match zone for `name`, if any.
    ///
    /// Walks the name's suffixes longest-first; because every enclosing apex
    /// is a suffix of `name`, the first directory hit is exactly the
    /// longest-match zone [`ZoneSet::find_zone`] would pick. Only the
    /// directory read lock is held, and only for the walk.
    fn stripe_for(&self, name: &DnsName) -> Option<Arc<RwLock<Zone>>> {
        let dir = self.directory.read();
        if dir.is_empty() {
            return None;
        }
        let mut candidate = name.clone();
        loop {
            if let Some(zone) = dir.get(&candidate) {
                return Some(Arc::clone(zone));
            }
            if candidate.label_count() == 0 {
                return None;
            }
            candidate = candidate.parent();
        }
    }

    /// Snapshot of the directory: each apex with its stripe, in apex order.
    fn stripes(&self) -> Vec<(DnsName, Arc<RwLock<Zone>>)> {
        self.directory
            .read()
            .iter()
            .map(|(apex, zone)| (apex.clone(), Arc::clone(zone)))
            .collect()
    }

    /// Add a zone, replacing any existing zone at the same apex.
    pub fn add_zone(&self, zone: Zone) {
        let apex = zone.apex().clone();
        let stripe = Arc::new(RwLock::new(zone));
        self.index_zone(&apex, &stripe);
        self.directory.write().insert(apex, stripe);
        self.structural_gen.fetch_add(1, Ordering::Release);
    }

    /// Ensure a reverse zone exists for the /24 containing `addr`.
    pub fn ensure_reverse_zone(&self, addr: Ipv4Addr) {
        // Hot path: one hash probe instead of building the apex name.
        if self.rev24.read().contains_key(&(u32::from(addr) >> 8)) {
            return;
        }
        let apex = DnsName::reverse_v4_zone24(addr.into());
        self.ensure_zone(apex);
    }

    /// Ensure a zone with the given apex exists (used for forward zones
    /// when the IPAM layer also maintains A records — §10 future work).
    /// Reverse /24 zones get the interned PTR representation.
    pub fn ensure_zone(&self, apex: DnsName) {
        if self.directory.read().contains_key(&apex) {
            return;
        }
        let mut dir = self.directory.write();
        if let std::collections::btree_map::Entry::Vacant(slot) = dir.entry(apex.clone()) {
            let stripe = Arc::new(RwLock::new(Zone::new_interned(apex)));
            slot.insert(Arc::clone(&stripe));
            self.index_zone(stripe.read().apex(), &stripe);
            self.structural_gen.fetch_add(1, Ordering::Release);
        }
    }

    /// The response cache's generation stamp for the /24 with the given
    /// network prefix (`u32::from(addr) >> 8`): the store-wide structural
    /// generation plus the owning zone's serial. `None` when the shortcut is
    /// invalid — no such /24 zone, or a deeper reverse zone exists that
    /// could shadow it — in which case cached responses must not be served.
    pub fn rev24_generation(&self, prefix: u32) -> Option<(u64, u32)> {
        if self.deep_reverse.load(Ordering::Relaxed) != 0 {
            return None;
        }
        let structural = self.structural_gen.load(Ordering::Acquire);
        let stripe = self.rev24.read().get(&prefix).cloned()?;
        let serial = stripe.read().serial();
        Some((structural, serial))
    }

    /// All zone apexes, in order (for zone-at-a-time iteration).
    pub fn zone_apexes(&self) -> Vec<DnsName> {
        self.directory.read().keys().cloned().collect()
    }

    /// Install or replace the A record for `name`.
    pub fn set_a(&self, name: &DnsName, addr: Ipv4Addr, ttl: u32) -> bool {
        match self.stripe_for(name) {
            Some(stripe) => {
                stripe.write().upsert(ResourceRecord::new(
                    name.clone(),
                    ttl,
                    RecordData::A(addr),
                ));
                true
            }
            None => false,
        }
    }

    /// Remove the A record for `name`. Returns whether one existed.
    pub fn remove_a(&self, name: &DnsName) -> bool {
        match self.stripe_for(name) {
            Some(stripe) => stripe.write().remove(name, RecordType::A) > 0,
            None => false,
        }
    }

    /// Direct A lookup (in-process fast path).
    pub fn get_a(&self, name: &DnsName) -> Option<Ipv4Addr> {
        match self.lookup(name, RecordType::A) {
            LookupResult::Answer(rrs) => rrs.into_iter().find_map(|rr| match rr.data {
                RecordData::A(a) => Some(a),
                _ => None,
            }),
            _ => None,
        }
    }

    /// Install or replace the PTR record for `addr`.
    pub fn set_ptr(&self, addr: Ipv4Addr, target: DnsName, ttl: u32) -> bool {
        if let Some(stripe) = self.rev24_stripe(addr) {
            stripe.write().set_ptr_octet(addr, &target, ttl);
            return true;
        }
        let name = DnsName::reverse_v4(addr);
        match self.stripe_for(&name) {
            Some(stripe) => {
                stripe.write().upsert(ResourceRecord::ptr(addr, target, ttl));
                true
            }
            None => false,
        }
    }

    /// Remove the PTR record for `addr`. Returns whether one existed.
    pub fn remove_ptr(&self, addr: Ipv4Addr) -> bool {
        if let Some(stripe) = self.rev24_stripe(addr) {
            return stripe.write().remove_ptr_octet(addr);
        }
        let name = DnsName::reverse_v4(addr);
        match self.stripe_for(&name) {
            Some(stripe) => stripe.write().remove(&name, RecordType::PTR) > 0,
            None => false,
        }
    }

    /// Direct (in-process) PTR lookup: the fast path used by snapshotters.
    pub fn get_ptr(&self, addr: Ipv4Addr) -> Option<DnsName> {
        if let Some(stripe) = self.rev24_stripe(addr) {
            return stripe.read().get_ptr_octet(addr);
        }
        let name = DnsName::reverse_v4(addr);
        match self.lookup(&name, RecordType::PTR) {
            LookupResult::Answer(rrs) => rrs.into_iter().find_map(|rr| match rr.data {
                RecordData::Ptr(t) => Some(t),
                _ => None,
            }),
            _ => None,
        }
    }

    /// Install or replace the PTR record for an IPv6 address (the zone for
    /// its `ip6.arpa` tree must exist; see [`ZoneStore::ensure_zone`]).
    /// Targeted IPv6 measurement is the §8 escalation path.
    pub fn set_ptr6(&self, addr: std::net::Ipv6Addr, target: DnsName, ttl: u32) -> bool {
        let name = DnsName::reverse_v6(addr);
        match self.stripe_for(&name) {
            Some(stripe) => {
                stripe
                    .write()
                    .upsert(ResourceRecord::new(name, ttl, RecordData::Ptr(target)));
                true
            }
            None => false,
        }
    }

    /// Direct PTR lookup for an IPv6 address.
    pub fn get_ptr6(&self, addr: std::net::Ipv6Addr) -> Option<DnsName> {
        let name = DnsName::reverse_v6(addr);
        match self.lookup(&name, RecordType::PTR) {
            LookupResult::Answer(rrs) => rrs.into_iter().find_map(|rr| match rr.data {
                RecordData::Ptr(t) => Some(t),
                _ => None,
            }),
            _ => None,
        }
    }

    /// Remove the PTR record for an IPv6 address.
    pub fn remove_ptr6(&self, addr: std::net::Ipv6Addr) -> bool {
        let name = DnsName::reverse_v6(addr);
        match self.stripe_for(&name) {
            Some(stripe) => stripe.write().remove(&name, RecordType::PTR) > 0,
            None => false,
        }
    }

    /// Full lookup with authoritative semantics (for the wire server).
    /// Pins exactly one zone stripe, never the whole store.
    pub fn lookup(&self, qname: &DnsName, qtype: RecordType) -> LookupResult {
        // Canonical full reverse names route by /24 prefix without the
        // clone-per-level suffix walk — the sweep-path fast lane.
        if qname.label_count() == 6 {
            if let Ok(addr) = qname.parse_reverse_v4() {
                if let Some(stripe) = self.rev24_stripe(addr) {
                    return stripe.read().lookup(qname, qtype);
                }
            }
        }
        match self.stripe_for(qname) {
            Some(stripe) => stripe.read().lookup(qname, qtype),
            None => LookupResult::NotAuthoritative,
        }
    }

    /// Total PTR record count across all zones (snapshot statistics).
    /// Zones are counted one stripe at a time.
    pub fn ptr_count(&self) -> usize {
        self.stripes()
            .into_iter()
            .map(|(_, stripe)| stripe.read().ptr_count())
            .sum()
    }

    /// Run `f` over every PTR record as `(addr, target)`, zone by zone: the
    /// directory is snapshotted once, then each zone's stripe is read-locked
    /// individually, so concurrent writers to other zones are never blocked
    /// for the duration of the sweep.
    pub fn for_each_ptr<F: FnMut(Ipv4Addr, &DnsName)>(&self, mut f: F) {
        for apex in self.zone_apexes() {
            self.for_each_ptr_in(&apex, &mut f);
        }
    }

    /// Run `f` over every PTR record in the zone at `apex` (exact match),
    /// holding only that zone's read lock.
    pub fn for_each_ptr_in<F: FnMut(Ipv4Addr, &DnsName)>(&self, apex: &DnsName, f: &mut F) {
        let stripe = match self.directory.read().get(apex) {
            Some(stripe) => Arc::clone(stripe),
            None => return,
        };
        stripe.read().visit_ptrs(f);
    }

    /// Run `f` over every PTR record as `(addr, hostname text)`, zone by
    /// zone. Interned zones lend their stored text without rebuilding the
    /// target name — the snapshot sweep's zero-copy path.
    pub fn for_each_ptr_hostname<F: FnMut(Ipv4Addr, &str)>(&self, mut f: F) {
        for (_, stripe) in self.stripes() {
            stripe.read().visit_ptr_hostnames(&mut f);
        }
    }
}

impl DnsStore for ZoneStore {
    fn ensure_reverse_zone(&self, addr: Ipv4Addr) {
        ZoneStore::ensure_reverse_zone(self, addr);
    }
    fn ensure_zone(&self, apex: DnsName) {
        ZoneStore::ensure_zone(self, apex);
    }
    fn set_a(&self, name: &DnsName, addr: Ipv4Addr, ttl: u32) -> bool {
        ZoneStore::set_a(self, name, addr, ttl)
    }
    fn remove_a(&self, name: &DnsName) -> bool {
        ZoneStore::remove_a(self, name)
    }
    fn set_ptr(&self, addr: Ipv4Addr, target: DnsName, ttl: u32) -> bool {
        ZoneStore::set_ptr(self, addr, target, ttl)
    }
    fn remove_ptr(&self, addr: Ipv4Addr) -> bool {
        ZoneStore::remove_ptr(self, addr)
    }
    fn get_ptr(&self, addr: Ipv4Addr) -> Option<DnsName> {
        ZoneStore::get_ptr(self, addr)
    }
    fn ptr_count(&self) -> usize {
        ZoneStore::ptr_count(self)
    }
    fn visit_ptrs(&self, f: &mut dyn FnMut(Ipv4Addr, &DnsName)) {
        self.for_each_ptr(|addr, name| f(addr, name));
    }
    fn visit_ptr_hostnames(&self, f: &mut dyn FnMut(Ipv4Addr, &str)) {
        self.for_each_ptr_hostname(|addr, text| f(addr, text));
    }
}

/// The original coarse-grained store: one `RwLock` around a whole
/// [`ZoneSet`]. Every mutation takes the global write lock and re-runs
/// longest-match routing over all zones.
///
/// Kept as the serial baseline for `BENCH_sim.json` and as the differential
/// oracle behind `MonolithWorld` — not used on the hot path.
#[derive(Debug, Clone, Default)]
pub struct CoarseZoneStore {
    inner: Arc<RwLock<ZoneSet>>,
}

impl CoarseZoneStore {
    /// An empty store.
    pub fn new() -> CoarseZoneStore {
        CoarseZoneStore::default()
    }

    /// Add a zone.
    pub fn add_zone(&self, zone: Zone) {
        self.inner.write().insert(zone);
    }

    /// Ensure a reverse zone exists for the /24 containing `addr`.
    pub fn ensure_reverse_zone(&self, addr: Ipv4Addr) {
        let apex = DnsName::reverse_v4_zone24(addr.into());
        self.ensure_zone(apex);
    }

    /// Ensure a zone with the given apex exists.
    pub fn ensure_zone(&self, apex: DnsName) {
        let mut set = self.inner.write();
        if set.find_zone(&apex).map(|z| z.apex() == &apex) != Some(true) {
            set.insert(Zone::new(apex));
        }
    }

    /// Install or replace the A record for `name`.
    pub fn set_a(&self, name: &DnsName, addr: Ipv4Addr, ttl: u32) -> bool {
        let mut set = self.inner.write();
        match set.find_zone_mut(name) {
            Some(zone) => {
                zone.upsert(ResourceRecord::new(
                    name.clone(),
                    ttl,
                    RecordData::A(addr),
                ));
                true
            }
            None => false,
        }
    }

    /// Remove the A record for `name`. Returns whether one existed.
    pub fn remove_a(&self, name: &DnsName) -> bool {
        let mut set = self.inner.write();
        match set.find_zone_mut(name) {
            Some(zone) => zone.remove(name, RecordType::A) > 0,
            None => false,
        }
    }

    /// Install or replace the PTR record for `addr`.
    pub fn set_ptr(&self, addr: Ipv4Addr, target: DnsName, ttl: u32) -> bool {
        let name = DnsName::reverse_v4(addr);
        let mut set = self.inner.write();
        match set.find_zone_mut(&name) {
            Some(zone) => {
                zone.upsert(ResourceRecord::ptr(addr, target, ttl));
                true
            }
            None => false,
        }
    }

    /// Remove the PTR record for `addr`. Returns whether one existed.
    pub fn remove_ptr(&self, addr: Ipv4Addr) -> bool {
        let name = DnsName::reverse_v4(addr);
        let mut set = self.inner.write();
        match set.find_zone_mut(&name) {
            Some(zone) => zone.remove(&name, RecordType::PTR) > 0,
            None => false,
        }
    }

    /// Direct (in-process) PTR lookup.
    pub fn get_ptr(&self, addr: Ipv4Addr) -> Option<DnsName> {
        let name = DnsName::reverse_v4(addr);
        let set = self.inner.read();
        match set.lookup(&name, RecordType::PTR) {
            LookupResult::Answer(rrs) => rrs.into_iter().find_map(|rr| match rr.data {
                RecordData::Ptr(t) => Some(t),
                _ => None,
            }),
            _ => None,
        }
    }

    /// Full lookup with authoritative semantics.
    pub fn lookup(&self, qname: &DnsName, qtype: RecordType) -> LookupResult {
        self.inner.read().lookup(qname, qtype)
    }

    /// Total PTR record count across all zones.
    pub fn ptr_count(&self) -> usize {
        self.inner
            .read()
            .iter()
            .flat_map(|z| z.iter_records())
            .filter(|rr| rr.data.rtype() == RecordType::PTR)
            .count()
    }

    /// Run `f` over every PTR record as `(addr, target)`. Holds the global
    /// read lock for the whole sweep — the behaviour the striped store was
    /// introduced to avoid.
    pub fn for_each_ptr<F: FnMut(Ipv4Addr, &DnsName)>(&self, mut f: F) {
        let set = self.inner.read();
        for zone in set.iter() {
            for rr in zone.iter_records() {
                if let RecordData::Ptr(target) = &rr.data {
                    if let Ok(addr) = rr.name.parse_reverse_v4() {
                        f(addr, target);
                    }
                }
            }
        }
    }
}

impl DnsStore for CoarseZoneStore {
    fn ensure_reverse_zone(&self, addr: Ipv4Addr) {
        CoarseZoneStore::ensure_reverse_zone(self, addr);
    }
    fn ensure_zone(&self, apex: DnsName) {
        CoarseZoneStore::ensure_zone(self, apex);
    }
    fn set_a(&self, name: &DnsName, addr: Ipv4Addr, ttl: u32) -> bool {
        CoarseZoneStore::set_a(self, name, addr, ttl)
    }
    fn remove_a(&self, name: &DnsName) -> bool {
        CoarseZoneStore::remove_a(self, name)
    }
    fn set_ptr(&self, addr: Ipv4Addr, target: DnsName, ttl: u32) -> bool {
        CoarseZoneStore::set_ptr(self, addr, target, ttl)
    }
    fn remove_ptr(&self, addr: Ipv4Addr) -> bool {
        CoarseZoneStore::remove_ptr(self, addr)
    }
    fn get_ptr(&self, addr: Ipv4Addr) -> Option<DnsName> {
        CoarseZoneStore::get_ptr(self, addr)
    }
    fn ptr_count(&self) -> usize {
        CoarseZoneStore::ptr_count(self)
    }
    fn visit_ptrs(&self, f: &mut dyn FnMut(Ipv4Addr, &DnsName)) {
        self.for_each_ptr(|addr, name| f(addr, name));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn zone_lookup_semantics() {
        let apex: DnsName = "2.0.192.in-addr.arpa".parse().unwrap();
        let mut zone = Zone::new(apex.clone());
        let rec_name = DnsName::reverse_v4(addr("192.0.2.34"));
        zone.upsert(ResourceRecord::ptr(
            addr("192.0.2.34"),
            "host.example.edu".parse().unwrap(),
            300,
        ));

        // Existing name + type -> Answer.
        match zone.lookup(&rec_name, RecordType::PTR) {
            LookupResult::Answer(rrs) => assert_eq!(rrs.len(), 1),
            other => panic!("expected answer, got {other:?}"),
        }
        // Existing name, absent type -> NoData with SOA.
        assert!(matches!(
            zone.lookup(&rec_name, RecordType::TXT),
            LookupResult::NoData { .. }
        ));
        // Absent name -> NXDOMAIN with SOA.
        let missing = DnsName::reverse_v4(addr("192.0.2.35"));
        assert!(matches!(
            zone.lookup(&missing, RecordType::PTR),
            LookupResult::NxDomain { .. }
        ));
        // Outside zone -> NotAuthoritative.
        let outside = DnsName::reverse_v4(addr("192.0.3.1"));
        assert_eq!(
            zone.lookup(&outside, RecordType::PTR),
            LookupResult::NotAuthoritative
        );
    }

    #[test]
    fn apex_soa_and_ns() {
        let apex: DnsName = "2.0.192.in-addr.arpa".parse().unwrap();
        let zone = Zone::new(apex.clone());
        assert!(matches!(
            zone.lookup(&apex, RecordType::SOA),
            LookupResult::Answer(_)
        ));
        assert!(matches!(
            zone.lookup(&apex, RecordType::NS),
            LookupResult::Answer(_)
        ));
        assert!(matches!(
            zone.lookup(&apex, RecordType::A),
            LookupResult::NoData { .. }
        ));
    }

    #[test]
    fn upsert_replaces_and_bumps_serial() {
        let mut zone = Zone::new("2.0.192.in-addr.arpa".parse().unwrap());
        let s0 = zone.serial();
        zone.upsert(ResourceRecord::ptr(
            addr("192.0.2.1"),
            "a.example.org".parse().unwrap(),
            300,
        ));
        let s1 = zone.serial();
        assert!(s1 > s0);
        zone.upsert(ResourceRecord::ptr(
            addr("192.0.2.1"),
            "b.example.org".parse().unwrap(),
            300,
        ));
        assert!(zone.serial() > s1);
        match zone.lookup(&DnsName::reverse_v4(addr("192.0.2.1")), RecordType::PTR) {
            LookupResult::Answer(rrs) => {
                assert_eq!(rrs.len(), 1);
                assert!(matches!(&rrs[0].data, RecordData::Ptr(n) if n.to_string() == "b.example.org."));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn remove_semantics() {
        let mut zone = Zone::new("2.0.192.in-addr.arpa".parse().unwrap());
        let name = DnsName::reverse_v4(addr("192.0.2.1"));
        assert_eq!(zone.remove(&name, RecordType::PTR), 0);
        zone.upsert(ResourceRecord::ptr(
            addr("192.0.2.1"),
            "a.example.org".parse().unwrap(),
            300,
        ));
        assert_eq!(zone.remove(&name, RecordType::PTR), 1);
        assert!(matches!(
            zone.lookup(&name, RecordType::PTR),
            LookupResult::NxDomain { .. }
        ));
        assert_eq!(zone.name_count(), 0);
    }

    #[test]
    fn zoneset_longest_match() {
        let mut set = ZoneSet::new();
        set.insert(Zone::new("in-addr.arpa".parse().unwrap()));
        set.insert(Zone::new("2.0.192.in-addr.arpa".parse().unwrap()));
        let q = DnsName::reverse_v4(addr("192.0.2.1"));
        let z = set.find_zone(&q).unwrap();
        assert_eq!(z.apex().to_string(), "2.0.192.in-addr.arpa.");
        let q2 = DnsName::reverse_v4(addr("10.0.0.1"));
        let z2 = set.find_zone(&q2).unwrap();
        assert_eq!(z2.apex().to_string(), "in-addr.arpa.");
        let forward: DnsName = "www.example.com".parse().unwrap();
        assert!(set.find_zone(&forward).is_none());
        assert_eq!(
            set.lookup(&forward, RecordType::A),
            LookupResult::NotAuthoritative
        );
    }

    #[test]
    fn store_ptr_lifecycle() {
        let store = ZoneStore::new();
        let a = addr("192.0.2.34");
        store.ensure_reverse_zone(a);
        assert_eq!(store.get_ptr(a), None);
        assert!(store.set_ptr(a, "brians-iphone.example.edu".parse().unwrap(), 300));
        assert_eq!(
            store.get_ptr(a).unwrap().to_string(),
            "brians-iphone.example.edu."
        );
        assert_eq!(store.ptr_count(), 1);
        assert!(store.remove_ptr(a));
        assert!(!store.remove_ptr(a));
        assert_eq!(store.get_ptr(a), None);
        assert_eq!(store.ptr_count(), 0);
    }

    #[test]
    fn store_rejects_unowned_space() {
        let store = ZoneStore::new();
        assert!(!store.set_ptr(addr("8.8.8.8"), "x.example".parse().unwrap(), 300));
        assert!(!store.remove_ptr(addr("8.8.8.8")));
    }

    #[test]
    fn store_for_each_ptr() {
        let store = ZoneStore::new();
        for i in 1..=5u8 {
            let a = Ipv4Addr::new(192, 0, 2, i);
            store.ensure_reverse_zone(a);
            store.set_ptr(a, format!("h{i}.example.org").parse().unwrap(), 300);
        }
        let mut seen = Vec::new();
        store.for_each_ptr(|ip, name| seen.push((ip, name.to_string())));
        assert_eq!(seen.len(), 5);
        assert!(seen.iter().any(|(ip, n)| *ip == addr("192.0.2.3") && n == "h3.example.org."));
    }

    #[test]
    fn ipv6_ptr_lifecycle() {
        let store = ZoneStore::new();
        let addr: std::net::Ipv6Addr = "2001:db8::42".parse().unwrap();
        // Delegate the documentation prefix's /32 reverse tree:
        // 2001:db8::/32 → 8.b.d.0.1.0.0.2.ip6.arpa.
        let apex: DnsName = "8.b.d.0.1.0.0.2.ip6.arpa".parse().unwrap();
        store.ensure_zone(apex.clone());
        // Sanity: the full reverse name sits under the apex.
        assert!(DnsName::reverse_v6(addr).is_subdomain_of(&apex));
        assert_eq!(store.get_ptr6(addr), None);
        assert!(store.set_ptr6(addr, "brians-v6-laptop.example.edu".parse().unwrap(), 300));
        assert_eq!(
            store.get_ptr6(addr).unwrap().to_string(),
            "brians-v6-laptop.example.edu."
        );
        assert!(store.remove_ptr6(addr));
        assert!(!store.remove_ptr6(addr));
        assert_eq!(store.get_ptr6(addr), None);
        // Undelegated space is rejected.
        let foreign: std::net::Ipv6Addr = "2001:db9::1".parse().unwrap();
        assert!(!store.set_ptr6(foreign, "x.example".parse().unwrap(), 300));
    }

    #[test]
    fn forward_zone_a_records() {
        let store = ZoneStore::new();
        store.ensure_zone("campus.example.edu".parse().unwrap());
        let name: DnsName = "brians-iphone.campus.example.edu".parse().unwrap();
        assert_eq!(store.get_a(&name), None);
        assert!(store.set_a(&name, addr("10.0.0.5"), 300));
        assert_eq!(store.get_a(&name), Some(addr("10.0.0.5")));
        // Replace.
        assert!(store.set_a(&name, addr("10.0.0.6"), 300));
        assert_eq!(store.get_a(&name), Some(addr("10.0.0.6")));
        assert!(store.remove_a(&name));
        assert!(!store.remove_a(&name));
        assert_eq!(store.get_a(&name), None);
        // Out-of-bailiwick names rejected.
        let foreign: DnsName = "x.elsewhere.org".parse().unwrap();
        assert!(!store.set_a(&foreign, addr("10.0.0.1"), 300));
    }

    #[test]
    fn ensure_reverse_zone_idempotent() {
        let store = ZoneStore::new();
        let a = addr("192.0.2.1");
        store.ensure_reverse_zone(a);
        store.set_ptr(a, "x.example.org".parse().unwrap(), 300);
        store.ensure_reverse_zone(a); // must not wipe records
        assert!(store.get_ptr(a).is_some());
    }

    #[test]
    fn striped_longest_match_routing() {
        // Nested zones: the striped suffix walk must pick the deepest apex,
        // exactly like ZoneSet::find_zone.
        let store = ZoneStore::new();
        store.ensure_zone("in-addr.arpa".parse().unwrap());
        store.ensure_zone("2.0.192.in-addr.arpa".parse().unwrap());
        let inner = addr("192.0.2.9");
        let outer = addr("10.0.0.9");
        assert!(store.set_ptr(inner, "deep.example.org".parse().unwrap(), 300));
        assert!(store.set_ptr(outer, "shallow.example.org".parse().unwrap(), 300));
        assert_eq!(store.get_ptr(inner).unwrap().to_string(), "deep.example.org.");
        assert_eq!(store.get_ptr(outer).unwrap().to_string(), "shallow.example.org.");
        // The deep record must live in the /24 zone, not the broad one.
        let mut in_deep = Vec::new();
        store.for_each_ptr_in(&"2.0.192.in-addr.arpa".parse().unwrap(), &mut |a, _| {
            in_deep.push(a)
        });
        assert_eq!(in_deep, vec![inner]);
        assert_eq!(
            store.zone_apexes(),
            vec![
                "2.0.192.in-addr.arpa".parse::<DnsName>().unwrap(),
                "in-addr.arpa".parse().unwrap(),
            ]
        );
    }

    /// Run an identical op sequence against a general and an interned zone
    /// and require byte-identical observables at every step.
    fn differential_zone_ops(ops: &[(u8, Option<&str>)]) {
        let apex: DnsName = "2.0.192.in-addr.arpa".parse().unwrap();
        let mut general = Zone::new(apex.clone());
        let mut interned = Zone::new_interned(apex.clone());
        assert!(!general.is_interned());
        assert!(interned.is_interned());
        for &(octet, target) in ops {
            let a = Ipv4Addr::new(192, 0, 2, octet);
            match target {
                Some(t) => {
                    let rr = ResourceRecord::ptr(a, t.parse().unwrap(), 300);
                    general.upsert(rr.clone());
                    interned.upsert(rr);
                }
                None => {
                    let name = DnsName::reverse_v4(a);
                    let g = general.remove(&name, RecordType::PTR);
                    let i = interned.remove(&name, RecordType::PTR);
                    assert_eq!(g, i, "remove count diverged at octet {octet}");
                }
            }
            assert_eq!(general.serial(), interned.serial(), "serial diverged");
            assert_eq!(general.name_count(), interned.name_count());
            assert_eq!(general.ptr_count(), interned.ptr_count());
        }
        // Full-zone sweep: same records in the same order.
        let mut g_seen = Vec::new();
        general.visit_ptrs(&mut |a, n| g_seen.push((a, n.to_string())));
        let mut i_seen = Vec::new();
        interned.visit_ptrs(&mut |a, n| i_seen.push((a, n.to_string())));
        assert_eq!(g_seen, i_seen);
        let mut i_hosts = Vec::new();
        interned.visit_ptr_hostnames(&mut |a, h| i_hosts.push((a, h.to_string())));
        let g_hosts: Vec<(Ipv4Addr, String)> = g_seen
            .iter()
            .map(|(a, n)| (*a, n.trim_end_matches('.').to_string()))
            .collect();
        assert_eq!(g_hosts, i_hosts);
        // Every possible query agrees, including NoData/NXDOMAIN shapes.
        for octet in 0..=255u8 {
            let q = DnsName::reverse_v4(Ipv4Addr::new(192, 0, 2, octet));
            for qtype in [RecordType::PTR, RecordType::TXT, RecordType::A] {
                assert_eq!(
                    general.lookup(&q, qtype),
                    interned.lookup(&q, qtype),
                    "lookup diverged at octet {octet} qtype {qtype:?}"
                );
            }
        }
        assert_eq!(
            general.lookup(&apex, RecordType::SOA),
            interned.lookup(&apex, RecordType::SOA)
        );
    }

    #[test]
    fn interned_zone_matches_general_zone() {
        differential_zone_ops(&[
            (34, Some("a.example.org")),
            (5, Some("b.example.org")),
            (34, Some("c.example.org")), // replace
            (5, None),                   // remove
            (5, None),                   // double remove (no serial bump)
            (0, Some("zero.example.org")),
            (255, Some("top.example.org")),
            (100, Some("mid.example.org")),
            (10, Some("ten.example.org")),
            (2, Some("two.example.org")),
        ]);
    }

    #[test]
    fn interned_zone_visit_order_is_string_order() {
        // Octets whose decimal strings sort differently from their values.
        differential_zone_ops(&[
            (200, Some("a.example.org")),
            (30, Some("b.example.org")),
            (4, Some("c.example.org")),
            (100, Some("d.example.org")),
            (25, Some("e.example.org")),
            (0, Some("f.example.org")),
        ]);
    }

    #[test]
    fn interned_zone_mixed_record_types() {
        // Non-PTR records on an octet owner name live in the general map of
        // both representations; answers and existence semantics must agree.
        let apex: DnsName = "2.0.192.in-addr.arpa".parse().unwrap();
        let mut general = Zone::new(apex.clone());
        let mut interned = Zone::new_interned(apex.clone());
        let owner = DnsName::reverse_v4(addr("192.0.2.7"));
        for zone in [&mut general, &mut interned] {
            zone.upsert(ResourceRecord::ptr(
                addr("192.0.2.7"),
                "h7.example.org".parse().unwrap(),
                300,
            ));
            zone.upsert(ResourceRecord::new(
                owner.clone(),
                300,
                RecordData::Txt(vec!["probe".into()]),
            ));
        }
        for qtype in [RecordType::PTR, RecordType::TXT, RecordType::A] {
            assert_eq!(general.lookup(&owner, qtype), interned.lookup(&owner, qtype));
        }
        assert_eq!(general.name_count(), 1);
        assert_eq!(interned.name_count(), 1);
        // Removing the TXT leaves the PTR visible in both.
        assert_eq!(general.remove(&owner, RecordType::TXT), 1);
        assert_eq!(interned.remove(&owner, RecordType::TXT), 1);
        assert_eq!(general.lookup(&owner, RecordType::PTR), interned.lookup(&owner, RecordType::PTR));
        assert_eq!(interned.name_count(), 1);
        assert_eq!(general.remove(&owner, RecordType::PTR), 1);
        assert_eq!(interned.remove(&owner, RecordType::PTR), 1);
        assert_eq!(interned.name_count(), 0);
        assert!(matches!(
            interned.lookup(&owner, RecordType::PTR),
            LookupResult::NxDomain { .. }
        ));
    }

    #[test]
    fn rev24_fast_path_agrees_with_suffix_walk() {
        // The store-level shortcut must be observably identical to the
        // general longest-match walk, including when a deeper reverse zone
        // disables it.
        let store = ZoneStore::new();
        let a = addr("192.0.2.34");
        store.ensure_reverse_zone(a);
        assert!(store.set_ptr(a, "fast.example.org".parse().unwrap(), 300));
        assert_eq!(store.get_ptr(a).unwrap().to_string(), "fast.example.org.");
        // A deeper reverse apex forces the slow path; answers must hold.
        store.ensure_zone("34.2.0.192.in-addr.arpa".parse().unwrap());
        // The deep zone now wins longest-match for that one address: the
        // /24's record is shadowed, exactly as the suffix walk decides.
        assert_eq!(store.get_ptr(a), None);
        let other = addr("192.0.2.35");
        assert!(store.set_ptr(other, "slow.example.org".parse().unwrap(), 300));
        assert_eq!(store.get_ptr(other).unwrap().to_string(), "slow.example.org.");
    }

    #[test]
    fn striped_and_coarse_stores_agree() {
        // Drive both DnsStore impls through the same operation sequence and
        // compare observable state — the differential contract MonolithWorld
        // relies on.
        fn drive<S: DnsStore>(store: &S) -> Vec<(Ipv4Addr, String)> {
            for i in 1..=6u8 {
                let a = Ipv4Addr::new(192, 0, 2, i);
                store.ensure_reverse_zone(a);
                store.set_ptr(a, format!("h{i}.example.org").parse().unwrap(), 300);
            }
            store.remove_ptr(addr("192.0.2.4"));
            store.set_ptr(addr("192.0.2.2"), "renamed.example.org".parse().unwrap(), 300);
            let fwd: DnsName = "renamed.campus.example.edu".parse().unwrap();
            store.ensure_zone(fwd.parent());
            store.set_a(&fwd, addr("192.0.2.2"), 300);
            let mut seen = Vec::new();
            store.visit_ptrs(&mut |a, n| seen.push((a, n.to_string())));
            assert_eq!(store.ptr_count(), seen.len());
            seen
        }
        let striped = drive(&ZoneStore::new());
        let coarse = drive(&CoarseZoneStore::new());
        assert_eq!(striped, coarse);
        assert_eq!(striped.len(), 5);
    }
}
