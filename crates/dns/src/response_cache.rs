//! Pre-rendered PTR response cache for the UDP serve hot path.
//!
//! The paper's measurement presumes authoritative servers that absorb
//! full-zone sweeps (§6.1: fresh answers for 6.15M /24s); at that load the
//! per-query cost of building a [`crate::message::Message`] and encoding it
//! dominates. This cache stores the *fully wire-encoded* response for each
//! `(reverse /24, host octet)` pair — header, echoed question, answer or
//! SOA authority — so a hit is a memcpy plus two header patches (the
//! message ID and the echoed RD bit), the same template trick the load
//! generator uses on the query side.
//!
//! # Coherence contract
//!
//! Entries are only valid for one **generation stamp**: the pair of the
//! store-wide structural generation (bumped when zones are added or
//! replaced) and the owning zone's SOA serial (bumped on every record
//! mutation), as returned by [`crate::zone::ZoneStore::rev24_generation`].
//! The serving worker reads the current stamp *before* probing the cache
//! and a hit requires exact stamp equality, so live churn from a stepping
//! world can never serve a stale answer: any mutation bumps the serial,
//! the stamps stop matching, and the slab is rebuilt lazily on the next
//! miss. Inserts label rendered bytes with a stamp read *before* the
//! render, which makes the bytes at least as fresh as their label — a
//! racing mutation makes the label stale (entry never served), never the
//! bytes. The SOA serial embedded in cached negative responses is kept
//! truthful by the same serial-equality check.
//!
//! # Why ID patching is byte-exact
//!
//! Only canonically-shaped queries reach the cache (see the server's fast
//! parse): opcode QUERY, one question, already-lowercase `in-addr.arpa`
//! labels, no truncation bit. For such queries the authoritative response
//! depends on the query bytes only through the 16-bit message ID and the
//! echoed recursion-desired flag — everything else (QR/AA set, RA/Z/rcode
//! overwritten, question echoed verbatim) is fixed by the responder. Both
//! variable fields live at fixed offsets in the first three octets, so
//! patching them reproduces `Message::response_to(..).encode()` exactly.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Host-octet space of a /24 reverse zone: one slot per final label value.
const SLAB_SLOTS: usize = 256;

/// Which server counter a cached response bumps when served, mirroring the
/// rcode bucketing of the uncached answer path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseClass {
    /// NoError with at least one answer record (a PTR was present).
    Answered,
    /// NoError with an empty answer section (SOA in the authority section).
    NoData,
    /// NXDOMAIN (SOA in the authority section).
    NxDomain,
}

/// Outcome of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The output buffer holds a complete response, ID and RD patched.
    Hit(ResponseClass),
    /// No entry for this octet at the current generation.
    MissCold,
    /// The slab was rendered at a different generation; the next insert
    /// resets it. Counts as an invalidation.
    MissStale,
}

#[derive(Debug)]
struct Entry {
    class: ResponseClass,
    bytes: Box<[u8]>,
}

/// All cached responses for one /24 reverse zone, valid at one stamp.
#[derive(Debug)]
struct Slab {
    /// `(structural generation, zone serial)` the entries were rendered at.
    stamp: (u64, u32),
    entries: Vec<Option<Entry>>,
}

impl Slab {
    fn empty(stamp: (u64, u32)) -> Slab {
        let mut entries = Vec::with_capacity(SLAB_SLOTS);
        entries.resize_with(SLAB_SLOTS, || None);
        Slab { stamp, entries }
    }
}

/// Per-stripe cache of fully rendered PTR responses, keyed by /24 network
/// prefix (`u32::from(addr) >> 8`) and final host octet.
///
/// Lock layout mirrors the striped [`crate::zone::ZoneStore`]: a read-mostly
/// outer map from prefix to slab, one inner `RwLock` per slab, so serving
/// workers on different /24s never contend. See the module docs for the
/// coherence contract.
#[derive(Debug, Default)]
pub struct ResponseCache {
    slabs: RwLock<HashMap<u32, Arc<RwLock<Slab>>>>,
}

impl ResponseCache {
    /// An empty cache.
    pub fn new() -> ResponseCache {
        ResponseCache::default()
    }

    /// Probe for the response to the PTR query for host `octet` in the /24
    /// with network `prefix`, valid at generation `stamp`. On a hit the
    /// cached bytes are copied into `out` with the message ID and the
    /// echoed RD bit patched to this query's values.
    pub fn lookup(
        &self,
        prefix: u32,
        octet: u8,
        stamp: (u64, u32),
        id: u16,
        rd: u8,
        out: &mut Vec<u8>,
    ) -> CacheOutcome {
        let slabs = self.slabs.read();
        let Some(slab) = slabs.get(&prefix) else {
            return CacheOutcome::MissCold;
        };
        let slab = slab.read();
        if slab.stamp != stamp {
            return CacheOutcome::MissStale;
        }
        let Some(Some(entry)) = slab.entries.get(octet as usize) else {
            return CacheOutcome::MissCold;
        };
        out.clear();
        out.extend_from_slice(&entry.bytes);
        if let Some(b) = out.get_mut(..2) {
            b.copy_from_slice(&id.to_be_bytes());
        }
        if let Some(b) = out.get_mut(2) {
            *b = (*b & 0xFE) | (rd & 1);
        }
        CacheOutcome::Hit(entry.class)
    }

    /// Install the rendered response `bytes` for `(prefix, octet)` under
    /// `stamp`. A slab rendered at a different stamp is reset first.
    ///
    /// `stamp` must have been read *before* `bytes` were rendered from the
    /// store. A concurrent insert racing with a mutation can at worst label
    /// fresh bytes with an old stamp (the entry then never serves, because
    /// lookups compare against the generation current at serve time) — it
    /// can never label stale bytes with the current stamp, because zone
    /// serials only move forward.
    pub fn insert(
        &self,
        prefix: u32,
        octet: u8,
        stamp: (u64, u32),
        class: ResponseClass,
        bytes: &[u8],
    ) {
        let slab = {
            let mut slabs = self.slabs.write();
            Arc::clone(
                slabs
                    .entry(prefix)
                    .or_insert_with(|| Arc::new(RwLock::new(Slab::empty(stamp)))),
            )
        };
        let mut slab = slab.write();
        if slab.stamp != stamp {
            for slot in slab.entries.iter_mut() {
                *slot = None;
            }
            slab.stamp = stamp;
        }
        if let Some(slot) = slab.entries.get_mut(octet as usize) {
            *slot = Some(Entry {
                class,
                bytes: Box::from(bytes),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_response(id: u16, rd: bool) -> Vec<u8> {
        let mut bytes = vec![0u8; 20];
        bytes[0] = (id >> 8) as u8;
        bytes[1] = id as u8;
        // QR|AA plus the echoed RD bit, as the responder would set them.
        bytes[2] = 0x84 | u8::from(rd);
        bytes[19] = 0xEE;
        bytes
    }

    #[test]
    fn miss_then_hit_with_patched_id_and_rd() {
        let cache = ResponseCache::new();
        let stamp = (1, 7);
        let mut out = Vec::new();
        assert_eq!(
            cache.lookup(0xC00002, 34, stamp, 0x1111, 0, &mut out),
            CacheOutcome::MissCold
        );
        cache.insert(
            0xC00002,
            34,
            stamp,
            ResponseClass::Answered,
            &sample_response(0xAAAA, false),
        );
        let outcome = cache.lookup(0xC00002, 34, stamp, 0xBEEF, 1, &mut out);
        assert_eq!(outcome, CacheOutcome::Hit(ResponseClass::Answered));
        let mut expected = sample_response(0xBEEF, true);
        expected[2] |= 0x84;
        assert_eq!(out, expected);
        // Other octets in the same slab are still cold.
        assert_eq!(
            cache.lookup(0xC00002, 35, stamp, 1, 0, &mut out),
            CacheOutcome::MissCold
        );
    }

    #[test]
    fn stale_stamp_invalidates_whole_slab() {
        let cache = ResponseCache::new();
        cache.insert(9, 1, (1, 1), ResponseClass::NxDomain, &sample_response(1, false));
        cache.insert(9, 2, (1, 1), ResponseClass::Answered, &sample_response(2, false));
        let mut out = Vec::new();
        // Serial moved: both entries are stale.
        assert_eq!(
            cache.lookup(9, 1, (1, 2), 5, 0, &mut out),
            CacheOutcome::MissStale
        );
        // Re-inserting octet 1 at the new stamp drops octet 2 as well.
        cache.insert(9, 1, (1, 2), ResponseClass::Answered, &sample_response(3, false));
        assert_eq!(
            cache.lookup(9, 2, (1, 2), 5, 0, &mut out),
            CacheOutcome::MissCold
        );
        assert!(matches!(
            cache.lookup(9, 1, (1, 2), 5, 0, &mut out),
            CacheOutcome::Hit(ResponseClass::Answered)
        ));
    }

    #[test]
    fn structural_generation_participates_in_the_stamp() {
        // Same serial, different structural generation — e.g. a zone
        // replaced wholesale by `add_zone` with a coincidentally equal
        // serial — must not hit.
        let cache = ResponseCache::new();
        cache.insert(9, 1, (1, 5), ResponseClass::Answered, &sample_response(1, false));
        let mut out = Vec::new();
        assert_eq!(
            cache.lookup(9, 1, (2, 5), 5, 0, &mut out),
            CacheOutcome::MissStale
        );
    }

    #[test]
    fn old_stamp_insert_can_never_serve_at_the_current_stamp() {
        // The ABA guard: a laggard worker inserting under an old stamp may
        // reset a fresher slab, but lookups at the current stamp miss.
        let cache = ResponseCache::new();
        cache.insert(9, 1, (1, 9), ResponseClass::Answered, &sample_response(1, false));
        cache.insert(9, 2, (1, 8), ResponseClass::Answered, &sample_response(2, false));
        let mut out = Vec::new();
        assert_eq!(
            cache.lookup(9, 2, (1, 9), 5, 0, &mut out),
            CacheOutcome::MissStale
        );
        assert_eq!(
            cache.lookup(9, 1, (1, 9), 5, 0, &mut out),
            CacheOutcome::MissStale
        );
    }
}
