//! # rdns-dns
//!
//! The DNS substrate of the `rdns-privacy` workspace: everything the paper's
//! measurement needs from the Domain Name System, built from scratch.
//!
//! * [`name`] — domain names in wire form, with IPv4 reverse-zone helpers
//!   (`34.216.184.93.in-addr.arpa.` for `93.184.216.34`, Example 1 of the
//!   paper),
//! * [`wire`] — RFC 1035 message encoding/decoding including compression
//!   pointers,
//! * [`message`] — headers, questions, resource records and full messages,
//! * [`zone`] — authoritative zone data with dynamic-update semantics (the
//!   DHCP/IPAM side adds and removes PTR records at runtime),
//! * [`ptr_table`] — interned columnar PTR storage backing the /24 reverse
//!   zones, byte-identical in behaviour to the general representation at a
//!   fraction of the per-record memory,
//! * [`server`] — a tokio-based authoritative UDP server with configurable
//!   fault injection (SERVFAIL, drops, latency) reproducing the error modes
//!   of Fig. 6,
//! * [`client`] — an async stub resolver with retry/timeout handling and
//!   DNS-over-TCP fallback that classifies outcomes the way the supplemental
//!   measurement does (answer / NXDOMAIN / name-server failure / timeout),
//! * [`pipeline`] — the pipelined resolver: many queries in flight on one
//!   socket, demultiplexed by message ID, with bounded concurrency — the
//!   client half of the ZMap-scale daily-snapshot wire path,
//! * [`cache`] — the TTL cache a recursive vantage point would impose,
//!   quantifying why the paper queries authoritative servers directly,
//! * [`response_cache`] — pre-rendered wire responses for the serve hot
//!   path, invalidated by zone generation stamps so live churn stays
//!   correct.

pub mod cache;
pub mod client;
pub mod message;
pub mod name;
pub mod pipeline;
pub mod ptr_table;
pub mod response_cache;
pub mod server;
pub mod wire;
pub mod zone;

pub use cache::{CacheLookup, CachedPtrView, DnsCache};
pub use client::{LookupOutcome, Resolver, ResolverConfig};
pub use message::{Message, Opcode, Question, Rcode, RecordClass, RecordData, RecordType, ResourceRecord};
pub use name::{DnsName, NameError};
pub use pipeline::{PipelinedConfig, PipelinedResolver, PipelinedStats, PipelinedStatsSnapshot};
pub use ptr_table::PtrTable;
pub use response_cache::{CacheOutcome, ResponseCache, ResponseClass};
pub use server::{
    answer_from_store, FaultConfig, ServerStats, ShardedShutdownHandle, ShardedUdpServer,
    TcpServer, UdpServer, DEFAULT_SERVER_WORKERS,
};
pub use wire::{WireError, WireReader, WireWriter};
pub use zone::{CoarseZoneStore, DnsStore, LookupResult, Zone, ZoneSet, ZoneStore};
