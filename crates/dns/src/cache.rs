//! A TTL-honouring DNS cache, and why the paper bypasses it.
//!
//! §6.1: *"We query the authoritative name server for the IP address in
//! question directly, to make sure we get a fresh answer (i.e., not from a
//! cache)."* [`DnsCache`] implements what a recursive resolver would do —
//! positive answers cached for their record TTL, negative answers for the
//! SOA `minimum` (RFC 2308) — so tests and experiments can quantify how
//! badly cached vantage points smear PTR-removal timing.

use crate::message::{RecordData, ResourceRecord};
use crate::name::DnsName;
use crate::message::RecordType;
use rdns_model::{SimDuration, SimTime};
use std::collections::HashMap;

/// A cached entry.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Entry {
    /// Records plus their expiry.
    Positive(Vec<ResourceRecord>),
    /// Cached NXDOMAIN/NoData.
    Negative,
}

/// Cache outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheLookup {
    /// Fresh-enough positive answer.
    Hit(Vec<ResourceRecord>),
    /// Fresh-enough negative answer.
    NegativeHit,
    /// Nothing usable; ask upstream.
    Miss,
}

/// A TTL-based cache keyed by `(name, type)`, driven by the simulation
/// clock so staleness experiments run in virtual time.
#[derive(Debug, Default)]
pub struct DnsCache {
    entries: HashMap<(DnsName, u16), (SimTime, Entry)>,
    hits: u64,
    misses: u64,
}

impl DnsCache {
    /// An empty cache.
    pub fn new() -> DnsCache {
        DnsCache::default()
    }

    /// Look up `(name, rtype)` at time `now`.
    pub fn lookup(&mut self, name: &DnsName, rtype: RecordType, now: SimTime) -> CacheLookup {
        match self.entries.get(&(name.clone(), rtype.to_u16())) {
            Some((expires, entry)) if *expires > now => {
                self.hits += 1;
                match entry {
                    Entry::Positive(rrs) => CacheLookup::Hit(rrs.clone()),
                    Entry::Negative => CacheLookup::NegativeHit,
                }
            }
            _ => {
                self.misses += 1;
                CacheLookup::Miss
            }
        }
    }

    /// Store a positive answer; expiry follows the minimum record TTL.
    pub fn store_positive(
        &mut self,
        name: &DnsName,
        rtype: RecordType,
        records: Vec<ResourceRecord>,
        now: SimTime,
    ) {
        let ttl = records.iter().map(|r| r.ttl).min().unwrap_or(0);
        self.entries.insert(
            (name.clone(), rtype.to_u16()),
            (now + SimDuration::secs(ttl as u64), Entry::Positive(records)),
        );
    }

    /// Store a negative answer; expiry follows the SOA `minimum` (RFC 2308),
    /// defaulting to 300 s when no SOA was provided.
    pub fn store_negative(
        &mut self,
        name: &DnsName,
        rtype: RecordType,
        soa: Option<&ResourceRecord>,
        now: SimTime,
    ) {
        let ttl = soa
            .and_then(|rr| match &rr.data {
                RecordData::Soa { minimum, .. } => Some((*minimum).min(rr.ttl)),
                _ => None,
            })
            .unwrap_or(300);
        self.entries.insert(
            (name.clone(), rtype.to_u16()),
            (now + SimDuration::secs(ttl as u64), Entry::Negative),
        );
    }

    /// Drop expired entries (periodic housekeeping).
    pub fn evict_expired(&mut self, now: SimTime) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, (expires, _)| *expires > now);
        before - self.entries.len()
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// A cached view over an in-process zone store — the "recursive resolver"
/// vantage point an outside observer *without* direct authoritative access
/// would have. Used by tests/experiments to quantify timing smear.
#[derive(Debug)]
pub struct CachedPtrView {
    store: crate::zone::ZoneStore,
    cache: DnsCache,
}

impl CachedPtrView {
    /// Wrap a store.
    pub fn new(store: crate::zone::ZoneStore) -> CachedPtrView {
        CachedPtrView {
            store,
            cache: DnsCache::new(),
        }
    }

    /// PTR lookup through the cache at virtual time `now`.
    pub fn get_ptr(&mut self, addr: std::net::Ipv4Addr, now: SimTime) -> Option<DnsName> {
        let name = DnsName::reverse_v4(addr);
        match self.cache.lookup(&name, RecordType::PTR, now) {
            CacheLookup::Hit(rrs) => rrs.into_iter().find_map(|rr| match rr.data {
                RecordData::Ptr(t) => Some(t),
                _ => None,
            }),
            CacheLookup::NegativeHit => None,
            CacheLookup::Miss => {
                match self.store.lookup(&name, RecordType::PTR) {
                    crate::zone::LookupResult::Answer(rrs) => {
                        self.cache
                            .store_positive(&name, RecordType::PTR, rrs.clone(), now);
                        rrs.into_iter().find_map(|rr| match rr.data {
                            RecordData::Ptr(t) => Some(t),
                            _ => None,
                        })
                    }
                    crate::zone::LookupResult::NxDomain { soa }
                    | crate::zone::LookupResult::NoData { soa } => {
                        self.cache
                            .store_negative(&name, RecordType::PTR, Some(&soa), now);
                        None
                    }
                    crate::zone::LookupResult::NotAuthoritative => None,
                }
            }
        }
    }

    /// Cache statistics.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::ZoneStore;
    use rdns_model::Date;
    use std::net::Ipv4Addr;

    fn t0() -> SimTime {
        SimTime::from_date(Date::from_ymd(2021, 11, 1))
    }

    fn name() -> DnsName {
        DnsName::reverse_v4("192.0.2.34".parse().unwrap())
    }

    fn ptr_record(ttl: u32) -> ResourceRecord {
        ResourceRecord::ptr(
            "192.0.2.34".parse().unwrap(),
            "brians-air.example.edu".parse().unwrap(),
            ttl,
        )
    }

    #[test]
    fn positive_caching_honours_ttl() {
        let mut c = DnsCache::new();
        assert_eq!(c.lookup(&name(), RecordType::PTR, t0()), CacheLookup::Miss);
        c.store_positive(&name(), RecordType::PTR, vec![ptr_record(300)], t0());
        assert!(matches!(
            c.lookup(&name(), RecordType::PTR, t0() + SimDuration::secs(299)),
            CacheLookup::Hit(_)
        ));
        assert_eq!(
            c.lookup(&name(), RecordType::PTR, t0() + SimDuration::secs(300)),
            CacheLookup::Miss
        );
    }

    #[test]
    fn negative_caching_uses_soa_minimum() {
        let mut c = DnsCache::new();
        let soa = ResourceRecord::new(
            "2.0.192.in-addr.arpa".parse().unwrap(),
            3600,
            RecordData::Soa {
                mname: "ns1.example".parse().unwrap(),
                rname: "host.example".parse().unwrap(),
                serial: 1,
                refresh: 1,
                retry: 1,
                expire: 1,
                minimum: 60,
            },
        );
        c.store_negative(&name(), RecordType::PTR, Some(&soa), t0());
        assert_eq!(
            c.lookup(&name(), RecordType::PTR, t0() + SimDuration::secs(59)),
            CacheLookup::NegativeHit
        );
        assert_eq!(
            c.lookup(&name(), RecordType::PTR, t0() + SimDuration::secs(60)),
            CacheLookup::Miss
        );
    }

    #[test]
    fn eviction_and_counters() {
        let mut c = DnsCache::new();
        c.store_positive(&name(), RecordType::PTR, vec![ptr_record(10)], t0());
        assert_eq!(c.len(), 1);
        assert_eq!(c.evict_expired(t0() + SimDuration::secs(5)), 0);
        assert_eq!(c.evict_expired(t0() + SimDuration::secs(11)), 1);
        assert!(c.is_empty());
        assert_eq!(c.stats(), (0, 0), "stores and evictions are not lookups");
        // An expired entry counts as a miss when looked up.
        c.store_positive(&name(), RecordType::PTR, vec![ptr_record(10)], t0());
        assert_eq!(
            c.lookup(&name(), RecordType::PTR, t0() + SimDuration::secs(20)),
            CacheLookup::Miss
        );
        assert_eq!(c.stats(), (0, 1));
    }

    #[test]
    fn cached_view_smears_removal_timing() {
        // The §6.1 rationale made concrete: through a cache, a removed PTR
        // stays visible for up to its TTL.
        let store = ZoneStore::new();
        let addr: Ipv4Addr = "192.0.2.34".parse().unwrap();
        store.ensure_reverse_zone(addr);
        store.set_ptr(addr, "brians-air.example.edu".parse().unwrap(), 300);

        let mut cached = CachedPtrView::new(store.clone());
        assert!(cached.get_ptr(addr, t0()).is_some());

        // The record is removed at t0 + 60 s...
        store.remove_ptr(addr);
        // ...the direct (authoritative) view sees it instantly:
        assert!(store.get_ptr(addr).is_none());
        // ...but the cached view still answers until the TTL runs out.
        assert!(
            cached.get_ptr(addr, t0() + SimDuration::secs(60)).is_some(),
            "cache must serve the stale record"
        );
        assert!(
            cached.get_ptr(addr, t0() + SimDuration::secs(301)).is_none(),
            "after TTL expiry the removal becomes visible"
        );
        let (hits, misses) = cached.cache_stats();
        assert_eq!(hits, 1);
        assert_eq!(misses, 2);
    }

    #[test]
    fn cached_view_negative_caching_delays_appearance() {
        // Negative caching also delays *appearance* visibility: a fresh
        // device can stay invisible for the negative TTL.
        let store = ZoneStore::new();
        let addr: Ipv4Addr = "192.0.2.77".parse().unwrap();
        store.ensure_reverse_zone(addr);
        let mut cached = CachedPtrView::new(store.clone());
        assert!(cached.get_ptr(addr, t0()).is_none()); // caches NXDOMAIN (minimum=300)

        store.set_ptr(addr, "new-device.example.edu".parse().unwrap(), 300);
        assert!(
            cached.get_ptr(addr, t0() + SimDuration::secs(100)).is_none(),
            "negative cache hides the new record"
        );
        assert!(cached
            .get_ptr(addr, t0() + SimDuration::secs(301))
            .is_some());
    }

    #[test]
    fn distinct_types_cached_separately() {
        let mut c = DnsCache::new();
        c.store_positive(&name(), RecordType::PTR, vec![ptr_record(300)], t0());
        assert_eq!(c.lookup(&name(), RecordType::TXT, t0()), CacheLookup::Miss);
        assert!(matches!(
            c.lookup(&name(), RecordType::PTR, t0()),
            CacheLookup::Hit(_)
        ));
    }
}
