//! Wire-codec properties: any message we can express must survive
//! encode → decode unchanged, and the decoder must never panic, whatever
//! bytes it is fed.

use proptest::prelude::*;
use rdns_dns::message::Header;
use rdns_dns::{DnsName, Message, Opcode, Question, Rcode, RecordData, RecordType, ResourceRecord};
use std::net::Ipv4Addr;

fn name(parts: &[&str]) -> DnsName {
    parts.join(".").parse().expect("generated labels are valid")
}

proptest! {
    #[test]
    fn prop_full_message_roundtrip(
        id in any::<u16>(),
        response in any::<bool>(),
        authoritative in any::<bool>(),
        recursion_desired in any::<bool>(),
        recursion_available in any::<bool>(),
        host in "[a-z][a-z0-9-]{0,12}",
        zone in "[a-z]{1,8}",
        a in any::<u8>(),
        b in any::<u8>(),
        ttl in 0u32..86_400,
        serial in any::<u32>(),
        txt in proptest::collection::vec("[a-zA-Z0-9 ]{0,20}", 1..3),
        opaque_type in 3000u16..4000,
        opaque in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let addr = Ipv4Addr::new(10, 0, a, b);
        let owner = name(&[&host, &zone, "example", "org"]);
        let msg = Message {
            header: Header {
                id,
                response,
                opcode: Opcode::Query,
                authoritative,
                truncated: false,
                recursion_desired,
                recursion_available,
                rcode: Rcode::NoError,
            },
            questions: vec![Question::ptr_for(addr)],
            answers: vec![
                ResourceRecord::ptr(addr, owner.clone(), ttl),
                ResourceRecord::new(owner.clone(), ttl, RecordData::A(addr)),
                ResourceRecord::new(owner.clone(), ttl, RecordData::Txt(txt)),
            ],
            authorities: vec![ResourceRecord::new(
                name(&[&zone, "example", "org"]),
                ttl,
                RecordData::Soa {
                    mname: name(&["ns1", &zone, "example", "org"]),
                    rname: name(&["hostmaster", &zone, "example", "org"]),
                    serial,
                    refresh: 7200,
                    retry: 900,
                    expire: 86_400,
                    minimum: 300,
                },
            )],
            additionals: vec![
                ResourceRecord::new(owner.clone(), ttl, RecordData::Cname(owner.clone())),
                ResourceRecord::new(owner.clone(), ttl, RecordData::Ns(owner.clone())),
                ResourceRecord::new(
                    owner,
                    ttl,
                    RecordData::Opaque(opaque_type, opaque),
                ),
            ],
        };
        let decoded = Message::decode(&msg.encode());
        let expected = Ok(msg);
        prop_assert_eq!(decoded, expected);
    }

    #[test]
    fn prop_query_roundtrip(
        id in any::<u16>(),
        host in "[a-z][a-z0-9-]{0,14}",
        qtype in 0u16..260,
    ) {
        let q = Message::query(
            id,
            Question::new(
                name(&[&host, "example", "net"]),
                RecordType::from_u16(qtype),
            ),
        );
        let decoded = Message::decode(&q.encode());
        let expected = Ok(q);
        prop_assert_eq!(decoded, expected);
    }

    #[test]
    fn prop_decode_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn prop_decode_never_panics_on_corrupted_message(
        id in any::<u16>(),
        host in "[a-z][a-z0-9-]{0,10}",
        pos in any::<u16>(),
        bit in 0u8..8,
        truncate in any::<u8>(),
    ) {
        let q = Message::query(id, Question::ptr_for(Ipv4Addr::new(192, 0, 2, 7)));
        let mut resp = Message::response_to(&q, Rcode::NoError);
        resp.answers.push(ResourceRecord::ptr(
            Ipv4Addr::new(192, 0, 2, 7),
            name(&[&host, "example", "org"]),
            300,
        ));
        let mut bytes = resp.encode();
        let idx = pos as usize % bytes.len();
        bytes[idx] ^= 1 << bit;
        let _ = Message::decode(&bytes);
        bytes.truncate(truncate as usize % (bytes.len() + 1));
        let _ = Message::decode(&bytes);
    }
}
