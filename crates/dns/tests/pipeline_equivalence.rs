//! The pipelined resolver must classify exactly like the serial resolver.
//!
//! Fig. 6's outcome taxonomy (answer / NXDOMAIN / name-server failure /
//! timeout) is only comparable across measurement campaigns if every client
//! path classifies identically. These tests run the serial [`Resolver`] and
//! the [`PipelinedResolver`] against the same fault-injecting server and
//! compare outcome *multisets* — fault injection is randomized per query, so
//! individual addresses may differ, but the distribution over a fixed fault
//! mix must agree in kind (and exactly for the deterministic 0.0 / 1.0
//! fault rates used here).

use rdns_dns::{
    FaultConfig, LookupOutcome, PipelinedConfig, PipelinedResolver, Resolver, ResolverConfig,
    UdpServer, ZoneStore,
};
use std::collections::BTreeMap;
use std::net::{Ipv4Addr, SocketAddr};
use std::time::Duration;

fn store_with_hosts(hosts: u8) -> ZoneStore {
    let store = ZoneStore::new();
    store.ensure_reverse_zone(Ipv4Addr::new(10, 70, 0, 1));
    for h in 1..=hosts {
        if h % 2 == 1 {
            store.set_ptr(
                Ipv4Addr::new(10, 70, 0, h),
                format!("host-{h}.cs.example.edu").parse().unwrap(),
                300,
            );
        }
    }
    store
}

async fn spawn_server(store: ZoneStore, faults: FaultConfig) -> SocketAddr {
    let server = UdpServer::bind("127.0.0.1:0".parse().unwrap(), store, faults)
        .await
        .unwrap();
    let addr = server.local_addr().unwrap();
    tokio::spawn(server.run());
    addr
}

/// Collapse an outcome into its Fig. 6 kind for multiset comparison.
fn kind(outcome: &LookupOutcome) -> &'static str {
    match outcome {
        LookupOutcome::Answer(_) => "answer",
        LookupOutcome::NxDomain => "nxdomain",
        LookupOutcome::NoData => "nodata",
        LookupOutcome::ServerFailure(_) => "servfail",
        LookupOutcome::Timeout => "timeout",
    }
}

fn serial_cfg(addr: SocketAddr, timeout_ms: u64, attempts: u32) -> ResolverConfig {
    let mut cfg = ResolverConfig::new(addr);
    cfg.timeout = Duration::from_millis(timeout_ms);
    cfg.attempts = attempts;
    cfg
}

/// Run both resolvers over `targets` and return the two outcome multisets.
async fn outcome_multisets(
    addr: SocketAddr,
    targets: &[Ipv4Addr],
    timeout_ms: u64,
    attempts: u32,
) -> (BTreeMap<&'static str, usize>, BTreeMap<&'static str, usize>) {
    let cfg = serial_cfg(addr, timeout_ms, attempts);
    let mut serial = Resolver::new(cfg.clone()).await.unwrap();
    let mut serial_counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for &t in targets {
        let out = serial.reverse(t).await.unwrap();
        *serial_counts.entry(kind(&out)).or_insert(0) += 1;
    }

    let pipelined = PipelinedResolver::new(PipelinedConfig::from_serial(&cfg, 64))
        .await
        .unwrap();
    let mut pipelined_counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for &t in targets {
        let out = pipelined.reverse(t).await.unwrap();
        *pipelined_counts.entry(kind(&out)).or_insert(0) += 1;
    }
    pipelined.shutdown().await;
    (serial_counts, pipelined_counts)
}

fn targets(n: u8) -> Vec<Ipv4Addr> {
    (1..=n).map(|h| Ipv4Addr::new(10, 70, 0, h)).collect()
}

#[tokio::test]
async fn clean_server_identical_multisets() {
    let addr = spawn_server(store_with_hosts(40), FaultConfig::default()).await;
    let (serial, pipelined) = outcome_multisets(addr, &targets(40), 500, 2).await;
    assert_eq!(serial, pipelined);
    assert_eq!(serial["answer"], 20);
    assert_eq!(serial["nxdomain"], 20);
}

#[tokio::test]
async fn all_servfail_identical_multisets() {
    let faults = FaultConfig {
        servfail_probability: 1.0,
        ..FaultConfig::default()
    };
    let addr = spawn_server(store_with_hosts(20), faults).await;
    let (serial, pipelined) = outcome_multisets(addr, &targets(20), 500, 2).await;
    assert_eq!(serial, pipelined);
    assert_eq!(serial["servfail"], 20);
    assert_eq!(serial.len(), 1, "every lookup must be a server failure");
}

#[tokio::test]
async fn all_dropped_identical_multisets() {
    let faults = FaultConfig {
        drop_probability: 1.0,
        ..FaultConfig::default()
    };
    let addr = spawn_server(store_with_hosts(6), faults).await;
    // Short timeout, single attempt: each lookup costs one timeout window.
    let (serial, pipelined) = outcome_multisets(addr, &targets(6), 80, 1).await;
    assert_eq!(serial, pipelined);
    assert_eq!(serial["timeout"], 6);
    assert_eq!(serial.len(), 1, "every lookup must time out");
}
