//! Columnar snapshot-series representation.
//!
//! [`SnapshotSeries`] stores one `BTreeMap<Ipv4Addr, Hostname>` per day —
//! convenient for incremental collection, but expensive as *analysis input*:
//! every §4/§5 pass walks pointer-chasing tree nodes and re-hashes every
//! address, and every day owns its own copy of every hostname string.
//!
//! [`ColumnarSeries`] is the analysis-side layout. Each day is two parallel
//! columns: a sorted `Vec<u32>` of addresses and a `Vec<NameId>` of indices
//! into a [`NamePool`] shared by all days, so a hostname that appears on 90
//! days is stored once. Because the address column is sorted, per-/24
//! aggregation is a run-length scan (`addr >> 8` changes ⇒ new block) with
//! no per-address hashing, and day columns are independent — the natural
//! shard for rayon fan-out. Reductions merge per-day results in day order,
//! so output is identical at any thread count.

use crate::snapshot::{Cadence, DailySnapshot, SnapshotSeries};
use rayon::prelude::*;
use rdns_model::{Date, Hostname, Slash24};
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Index of an interned hostname in a [`NamePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NameId(pub u32);

/// Interned hostname table: each distinct hostname is stored once and
/// addressed by [`NameId`].
#[derive(Debug, Clone, Default)]
pub struct NamePool {
    names: Vec<Arc<str>>,
    index: HashMap<Arc<str>, NameId>,
}

impl NamePool {
    /// An empty pool.
    pub fn new() -> NamePool {
        NamePool::default()
    }

    /// Intern `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(id) = self.index.get(name) {
            return *id;
        }
        let id = NameId(self.names.len() as u32);
        let shared: Arc<str> = Arc::from(name);
        self.names.push(Arc::clone(&shared));
        self.index.insert(shared, id);
        id
    }

    /// The string for `id`. Panics on a foreign id.
    pub fn get(&self, id: NameId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Shared handle to the string for `id`.
    pub fn get_arc(&self, id: NameId) -> Arc<str> {
        Arc::clone(&self.names[id.0 as usize])
    }

    /// Number of distinct names interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// One day of PTR records in columnar form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnarDay {
    /// Snapshot date.
    pub date: Date,
    /// Addresses with a PTR, ascending.
    pub addrs: Vec<u32>,
    /// `names[i]` is the hostname of `addrs[i]`.
    pub names: Vec<NameId>,
}

impl ColumnarDay {
    /// Number of PTR records.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the day has no records.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Per-/24 record counts as `(block prefix, count)`, ascending by
    /// prefix — a single run-length pass over the sorted address column.
    pub fn slash24_runs(&self) -> Vec<(u32, u32)> {
        let mut runs: Vec<(u32, u32)> = Vec::new();
        for &addr in &self.addrs {
            let prefix = addr >> 8;
            match runs.last_mut() {
                Some((p, n)) if *p == prefix => *n += 1,
                _ => runs.push((prefix, 1)),
            }
        }
        runs
    }

    /// Records satisfying an address predicate.
    pub fn count_where<F: Fn(Ipv4Addr) -> bool>(&self, pred: F) -> usize {
        self.addrs.iter().filter(|a| pred(Ipv4Addr::from(**a))).count()
    }
}

/// A full series in columnar form. Build with [`ColumnarSeries::from_series`].
#[derive(Debug, Clone)]
pub struct ColumnarSeries {
    /// Collection cadence, carried over from the source series.
    pub cadence: Cadence,
    /// Hostname table shared by all days.
    pub pool: NamePool,
    /// Day columns in date order.
    pub days: Vec<ColumnarDay>,
}

impl ColumnarSeries {
    /// Convert a row-oriented series. Day maps are already address-sorted
    /// (`BTreeMap`), so the columns come out sorted for free.
    pub fn from_series(series: &SnapshotSeries) -> ColumnarSeries {
        let mut pool = NamePool::new();
        let days = series
            .snapshots
            .iter()
            .map(|snap| {
                let mut addrs = Vec::with_capacity(snap.records.len());
                let mut names = Vec::with_capacity(snap.records.len());
                for (addr, host) in &snap.records {
                    addrs.push(u32::from(*addr));
                    names.push(pool.intern(host.as_str()));
                }
                ColumnarDay {
                    date: snap.date,
                    addrs,
                    names,
                }
            })
            .collect();
        ColumnarSeries {
            cadence: series.cadence,
            pool,
            days,
        }
    }

    /// Convert back to the row-oriented representation.
    pub fn to_series(&self) -> SnapshotSeries {
        SnapshotSeries {
            cadence: self.cadence,
            snapshots: self
                .days
                .iter()
                .map(|day| {
                    let records: BTreeMap<Ipv4Addr, Hostname> = day
                        .addrs
                        .iter()
                        .zip(&day.names)
                        .map(|(a, id)| (Ipv4Addr::from(*a), Hostname::new(self.pool.get(*id))))
                        .collect();
                    DailySnapshot {
                        date: day.date,
                        records,
                    }
                })
                .collect(),
        }
    }

    /// Number of days.
    pub fn len(&self) -> usize {
        self.days.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.days.is_empty()
    }

    /// First day's date.
    pub fn start_date(&self) -> Option<Date> {
        self.days.first().map(|d| d.date)
    }

    /// Last day's date.
    pub fn end_date(&self) -> Option<Date> {
        self.days.last().map(|d| d.date)
    }

    /// Total PTR responses across all days.
    pub fn total_responses(&self) -> u64 {
        self.days.iter().map(|d| d.len() as u64).sum()
    }

    /// Distinct hostnames that actually occur in some day column.
    pub fn unique_ptrs(&self) -> usize {
        let mut used = vec![false; self.pool.len()];
        for day in &self.days {
            for id in &day.names {
                used[id.0 as usize] = true;
            }
        }
        used.iter().filter(|u| **u).count()
    }

    /// Distinct /24 blocks with at least one PTR anywhere in the series.
    pub fn unique_slash24s(&self) -> usize {
        let mut prefixes: Vec<u32> = self
            .days
            .par_iter()
            .flat_map(|d| d.slash24_runs().into_iter().map(|(p, _)| p).collect::<Vec<_>>())
            .collect();
        prefixes.sort_unstable();
        prefixes.dedup();
        prefixes.len()
    }

    /// Per-/24 daily count matrix aligned with `self.days` — the §4.1
    /// heuristic's input, equal to [`SnapshotSeries::counts_matrix`] on the
    /// source series. Day columns are scanned in parallel; the merge walks
    /// per-day runs in day order, so the result is thread-count independent.
    pub fn counts_matrix(&self) -> BTreeMap<Slash24, Vec<u32>> {
        let days = self.days.len();
        let per_day: Vec<Vec<(u32, u32)>> =
            self.days.par_iter().map(|d| d.slash24_runs()).collect();
        let mut out: BTreeMap<Slash24, Vec<u32>> = BTreeMap::new();
        for (i, runs) in per_day.into_iter().enumerate() {
            for (prefix, count) in runs {
                let block = Slash24::containing(Ipv4Addr::from(prefix << 8));
                out.entry(block).or_insert_with(|| vec![0; days])[i] = count;
            }
        }
        out
    }

    /// Daily totals filtered by an address predicate (Fig. 9/10 series).
    pub fn daily_totals_where<F: Fn(Ipv4Addr) -> bool + Sync>(
        &self,
        pred: F,
    ) -> Vec<(Date, usize)> {
        self.days
            .par_iter()
            .map(|d| (d.date, d.count_where(&pred)))
            .collect()
    }

    /// Unique `(address, hostname)` observations across the series, in
    /// ascending `(address, name id)` order — a deterministic replacement
    /// for hash-set deduplication over the row representation.
    pub fn observations(&self) -> Vec<(Ipv4Addr, Hostname)> {
        let mut pairs: Vec<(u32, NameId)> = self
            .days
            .par_iter()
            .flat_map(|d| {
                d.addrs
                    .iter()
                    .zip(&d.names)
                    .map(|(a, id)| (*a, *id))
                    .collect::<Vec<_>>()
            })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
            .into_iter()
            .map(|(a, id)| (Ipv4Addr::from(a), Hostname::new(self.pool.get(id))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_fixture() -> SnapshotSeries {
        let mut series = SnapshotSeries::new(Cadence::Daily);
        let day1: BTreeMap<Ipv4Addr, Hostname> = [
            ("10.0.1.5", "a.example.edu"),
            ("10.0.1.9", "b.example.edu"),
            ("10.0.2.7", "c.example.edu"),
        ]
        .iter()
        .map(|(a, h)| (a.parse().unwrap(), Hostname::new(h)))
        .collect();
        let day2: BTreeMap<Ipv4Addr, Hostname> = [
            ("10.0.1.5", "a.example.edu"), // same record persists
            ("10.0.2.7", "d.example.edu"), // same addr, new name
            ("192.168.0.1", "e.example.org"),
        ]
        .iter()
        .map(|(a, h)| (a.parse().unwrap(), Hostname::new(h)))
        .collect();
        series.push(DailySnapshot {
            date: Date::from_ymd(2021, 1, 1),
            records: day1,
        });
        series.push(DailySnapshot {
            date: Date::from_ymd(2021, 1, 2),
            records: day2,
        });
        series
    }

    #[test]
    fn round_trip_preserves_series() {
        let series = series_fixture();
        let col = ColumnarSeries::from_series(&series);
        assert_eq!(col.to_series(), series);
    }

    #[test]
    fn interning_shares_names_across_days() {
        let col = ColumnarSeries::from_series(&series_fixture());
        // 5 distinct hostnames despite 6 records.
        assert_eq!(col.pool.len(), 5);
        assert_eq!(col.unique_ptrs(), 5);
        assert_eq!(col.days[0].names[0], col.days[1].names[0]);
    }

    #[test]
    fn stats_match_row_representation() {
        let series = series_fixture();
        let col = ColumnarSeries::from_series(&series);
        assert_eq!(col.len(), series.len());
        assert_eq!(col.start_date(), series.start_date());
        assert_eq!(col.end_date(), series.end_date());
        assert_eq!(col.total_responses(), series.total_responses());
        assert_eq!(col.unique_ptrs(), series.unique_ptrs());
        assert_eq!(col.unique_slash24s(), series.unique_slash24s());
    }

    #[test]
    fn counts_matrix_matches_row_representation() {
        let series = series_fixture();
        let col = ColumnarSeries::from_series(&series);
        assert_eq!(col.counts_matrix(), series.counts_matrix());
    }

    #[test]
    fn slash24_runs_are_run_length_counts() {
        let col = ColumnarSeries::from_series(&series_fixture());
        let runs = col.days[0].slash24_runs();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].1, 2); // 10.0.1.0/24
        assert_eq!(runs[1].1, 1); // 10.0.2.0/24
        assert!(runs[0].0 < runs[1].0);
    }

    #[test]
    fn observations_sorted_and_unique() {
        let col = ColumnarSeries::from_series(&series_fixture());
        let obs = col.observations();
        // 5 unique (addr, hostname) pairs; 10.0.1.5→a appears on both days.
        assert_eq!(obs.len(), 5);
        let mut sorted = obs.clone();
        sorted.sort();
        assert_eq!(obs.len(), sorted.len());
        for w in obs.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn daily_totals_with_predicate() {
        let series = series_fixture();
        let col = ColumnarSeries::from_series(&series);
        let net: rdns_model::Ipv4Net = "10.0.0.0/16".parse().unwrap();
        assert_eq!(
            col.daily_totals_where(|a| net.contains(a)),
            series.daily_totals_where(|a| net.contains(a)),
        );
    }
}
