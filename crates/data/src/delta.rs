//! Delta-encoded snapshot series.
//!
//! A [`SnapshotSeries`] stores every day as a full
//! `address → hostname` map. Between consecutive days of real rDNS data
//! almost everything is identical — the paper's churn analyses (§4, Fig. 7)
//! exist precisely because only a small fraction of records move per day —
//! so a 90-day window stores each stable record ~90 times.
//!
//! [`DeltaSeries`] stores day 0 in full plus one [`DeltaSnapshot`] per
//! subsequent day: the *adds* (addresses that gained a PTR), *renames*
//! (addresses whose hostname changed) and *removes* (addresses that lost
//! their PTR) against the previous day. Days are materialised lazily —
//! [`DeltaSeries::materialize`] for one day, [`DeltaSeries::for_each_day`]
//! to stream the whole window holding only a single day in memory — and
//! [`DeltaSeries::to_columnar`] feeds the §4–§7 columnar drivers without
//! ever materialising the row series.
//!
//! The determinism contract is byte identity: materialising every day of a
//! `DeltaSeries` yields exactly the `SnapshotSeries` the same pushes would
//! have produced.

use crate::columnar::{ColumnarDay, ColumnarSeries, NamePool};
use crate::snapshot::{Cadence, DailySnapshot, SnapshotSeries};
use rdns_model::{Date, Hostname};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// One day's change against the previous day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaSnapshot {
    /// The day this delta produces.
    pub date: Date,
    /// Addresses that gained a PTR, with the new hostname, ascending.
    pub adds: Vec<(Ipv4Addr, Hostname)>,
    /// Addresses whose PTR changed hostname, with the new hostname,
    /// ascending.
    pub renames: Vec<(Ipv4Addr, Hostname)>,
    /// Addresses whose PTR disappeared, ascending.
    pub removes: Vec<Ipv4Addr>,
}

impl DeltaSnapshot {
    /// Total changed records.
    pub fn len(&self) -> usize {
        self.adds.len() + self.renames.len() + self.removes.len()
    }

    /// Whether the day was identical to its predecessor.
    pub fn is_empty(&self) -> bool {
        self.adds.is_empty() && self.renames.is_empty() && self.removes.is_empty()
    }

    /// Diff `next` against `prev` — one sorted merge over both maps.
    pub fn between(prev: &DailySnapshot, next: &DailySnapshot) -> DeltaSnapshot {
        let mut adds = Vec::new();
        let mut renames = Vec::new();
        let mut removes = Vec::new();
        let mut old = prev.records.iter().peekable();
        let mut new = next.records.iter().peekable();
        loop {
            match (old.peek(), new.peek()) {
                (Some(&(oa, _)), Some(&(na, nh))) if oa == na => {
                    let (_, oh) = old.next().expect("peeked");
                    new.next();
                    if oh != nh {
                        renames.push((*na, nh.clone()));
                    }
                }
                (Some(&(oa, _)), Some(&(na, _))) if oa < na => {
                    removes.push(*oa);
                    old.next();
                }
                (Some(_), Some(&(na, nh))) => {
                    adds.push((*na, nh.clone()));
                    new.next();
                }
                (Some(&(oa, _)), None) => {
                    removes.push(*oa);
                    old.next();
                }
                (None, Some(&(na, nh))) => {
                    adds.push((*na, nh.clone()));
                    new.next();
                }
                (None, None) => break,
            }
        }
        DeltaSnapshot {
            date: next.date,
            adds,
            renames,
            removes,
        }
    }

    /// Apply this delta to `records`, turning the previous day into this one.
    pub fn apply(&self, records: &mut BTreeMap<Ipv4Addr, Hostname>) {
        for addr in &self.removes {
            records.remove(addr);
        }
        for (addr, host) in self.adds.iter().chain(&self.renames) {
            records.insert(*addr, host.clone());
        }
    }
}

/// A longitudinal series stored as day 0 plus per-day deltas.
///
/// Push full [`DailySnapshot`]s exactly as with a
/// [`SnapshotSeries`]; only the changed records are
/// retained. The `tail` cursor (the latest day, kept materialised) makes
/// each push a single sorted merge, O(day size), with no re-materialisation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaSeries {
    /// Collection cadence.
    pub cadence: Cadence,
    /// Day 0, stored in full.
    base: Option<DailySnapshot>,
    /// Deltas: `deltas[i]` turns day `i` into day `i + 1`.
    deltas: Vec<DeltaSnapshot>,
    /// The latest day, kept materialised as the diff target for `push`.
    tail: BTreeMap<Ipv4Addr, Hostname>,
    /// Running per-day record counts (for O(1) series statistics).
    day_lens: Vec<u64>,
}

impl DeltaSeries {
    /// An empty series.
    pub fn new(cadence: Cadence) -> DeltaSeries {
        DeltaSeries {
            cadence,
            base: None,
            deltas: Vec::new(),
            tail: BTreeMap::new(),
            day_lens: Vec::new(),
        }
    }

    /// Append a day, keeping date order. Only the delta against the
    /// previous day is retained (day 0 is kept in full).
    pub fn push(&mut self, snapshot: DailySnapshot) {
        self.day_lens.push(snapshot.len() as u64);
        match &self.base {
            None => {
                self.tail = snapshot.records.clone();
                self.base = Some(snapshot);
            }
            Some(base) => {
                debug_assert!(
                    self.deltas.last().map_or(base.date, |d| d.date) < snapshot.date,
                    "snapshots must be pushed in date order"
                );
                let prev = DailySnapshot {
                    date: snapshot.date,
                    records: std::mem::take(&mut self.tail),
                };
                self.deltas.push(DeltaSnapshot::between(&prev, &snapshot));
                self.tail = snapshot.records;
            }
        }
    }

    /// Convert an eagerly-stored series (used by differential tests; the
    /// streaming collectors push days directly instead).
    pub fn from_series(series: &SnapshotSeries) -> DeltaSeries {
        let mut out = DeltaSeries::new(series.cadence);
        for snap in &series.snapshots {
            out.push(snap.clone());
        }
        out
    }

    /// Number of days.
    pub fn len(&self) -> usize {
        self.day_lens.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.base.is_none()
    }

    /// First day's date.
    pub fn start_date(&self) -> Option<Date> {
        self.base.as_ref().map(|s| s.date)
    }

    /// Last day's date.
    pub fn end_date(&self) -> Option<Date> {
        self.deltas
            .last()
            .map(|d| d.date)
            .or_else(|| self.start_date())
    }

    /// Total PTR responses across all days (Table 1's "Total # responses").
    pub fn total_responses(&self) -> u64 {
        self.day_lens.iter().sum()
    }

    /// Changed records (adds + renames + removes) across all deltas — the
    /// quantity the encoding stores instead of `total_responses`.
    pub fn total_changes(&self) -> u64 {
        self.deltas.iter().map(|d| d.len() as u64).sum()
    }

    /// Materialise day `i` (0-based). O(sum of deltas up to `i`).
    pub fn materialize(&self, i: usize) -> Option<DailySnapshot> {
        if i >= self.len() {
            return None;
        }
        let base = self.base.as_ref().expect("non-empty series has a base");
        let mut day = base.clone();
        for delta in &self.deltas[..i] {
            delta.apply(&mut day.records);
            day.date = delta.date;
        }
        Some(day)
    }

    /// Stream every day in date order, holding exactly one materialised day
    /// at a time — the bounded-memory path the analysis drivers consume.
    pub fn for_each_day<F: FnMut(&DailySnapshot)>(&self, mut f: F) {
        let Some(base) = &self.base else {
            return;
        };
        let mut day = base.clone();
        f(&day);
        for delta in &self.deltas {
            delta.apply(&mut day.records);
            day.date = delta.date;
            f(&day);
        }
    }

    /// Materialise the whole series eagerly (differential tests; analysis
    /// code should stream via [`DeltaSeries::for_each_day`] or convert with
    /// [`DeltaSeries::to_columnar`] instead).
    pub fn to_series(&self) -> SnapshotSeries {
        let mut snapshots = Vec::with_capacity(self.len());
        self.for_each_day(|day| snapshots.push(day.clone()));
        SnapshotSeries {
            cadence: self.cadence,
            snapshots,
        }
    }

    /// Build the columnar analysis view in one streaming pass: sorted
    /// address columns plus an interned hostname pool, without ever holding
    /// more than one row-form day.
    pub fn to_columnar(&self) -> ColumnarSeries {
        let mut pool = NamePool::new();
        let mut days = Vec::with_capacity(self.len());
        self.for_each_day(|snap| {
            let mut addrs = Vec::with_capacity(snap.records.len());
            let mut names = Vec::with_capacity(snap.records.len());
            for (addr, host) in &snap.records {
                addrs.push(u32::from(*addr));
                names.push(pool.intern(host.as_str()));
            }
            days.push(ColumnarDay {
                date: snap.date,
                addrs,
                names,
            });
        });
        ColumnarSeries {
            cadence: self.cadence,
            pool,
            days,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day(date: Date, records: &[(&str, &str)]) -> DailySnapshot {
        DailySnapshot {
            date,
            records: records
                .iter()
                .map(|(a, h)| (a.parse().unwrap(), Hostname::new(h)))
                .collect(),
        }
    }

    fn fixture() -> SnapshotSeries {
        let d1 = Date::from_ymd(2021, 1, 1);
        let mut series = SnapshotSeries::new(Cadence::Daily);
        series.push(day(
            d1,
            &[
                ("10.0.1.5", "a.example.edu"),
                ("10.0.1.9", "b.example.edu"),
                ("10.0.2.7", "c.example.edu"),
            ],
        ));
        // Day 2: .9 removed, .7 renamed, new record appears.
        series.push(day(
            d1.succ(),
            &[
                ("10.0.1.5", "a.example.edu"),
                ("10.0.2.7", "d.example.edu"),
                ("192.168.0.1", "e.example.org"),
            ],
        ));
        // Day 3: identical to day 2.
        series.push(day(
            d1.plus_days(2),
            &[
                ("10.0.1.5", "a.example.edu"),
                ("10.0.2.7", "d.example.edu"),
                ("192.168.0.1", "e.example.org"),
            ],
        ));
        series
    }

    #[test]
    fn delta_classifies_adds_renames_removes() {
        let series = fixture();
        let delta = DeltaSnapshot::between(&series.snapshots[0], &series.snapshots[1]);
        assert_eq!(delta.removes, vec!["10.0.1.9".parse::<Ipv4Addr>().unwrap()]);
        assert_eq!(
            delta.renames,
            vec![("10.0.2.7".parse().unwrap(), Hostname::new("d.example.edu"))]
        );
        assert_eq!(
            delta.adds,
            vec![("192.168.0.1".parse().unwrap(), Hostname::new("e.example.org"))]
        );
    }

    #[test]
    fn quiet_day_is_an_empty_delta() {
        let series = fixture();
        let delta = DeltaSnapshot::between(&series.snapshots[1], &series.snapshots[2]);
        assert!(delta.is_empty());
        assert_eq!(delta.len(), 0);
    }

    #[test]
    fn delta_series_round_trips_eager_series() {
        let series = fixture();
        let delta = DeltaSeries::from_series(&series);
        assert_eq!(delta.to_series(), series);
        assert_eq!(delta.len(), series.len());
        assert_eq!(delta.start_date(), series.start_date());
        assert_eq!(delta.end_date(), series.end_date());
        assert_eq!(delta.total_responses(), series.total_responses());
        // 3 days × 3 records stored as 3 + the 3 changed records of day 2.
        assert_eq!(delta.total_changes(), 3);
    }

    #[test]
    fn lazy_materialization_matches_each_day() {
        let series = fixture();
        let delta = DeltaSeries::from_series(&series);
        for (i, snap) in series.snapshots.iter().enumerate() {
            assert_eq!(delta.materialize(i).as_ref(), Some(snap));
        }
        assert_eq!(delta.materialize(3), None);
    }

    #[test]
    fn streaming_visits_days_in_order() {
        let series = fixture();
        let delta = DeltaSeries::from_series(&series);
        let mut dates = Vec::new();
        let mut lens = Vec::new();
        delta.for_each_day(|d| {
            dates.push(d.date);
            lens.push(d.len());
        });
        assert_eq!(
            dates,
            series.snapshots.iter().map(|s| s.date).collect::<Vec<_>>()
        );
        assert_eq!(lens, vec![3, 3, 3]);
    }

    #[test]
    fn columnar_view_matches_eager_conversion() {
        let series = fixture();
        let delta = DeltaSeries::from_series(&series);
        let streamed = delta.to_columnar();
        let eager = ColumnarSeries::from_series(&series);
        assert_eq!(streamed.days, eager.days);
        assert_eq!(streamed.counts_matrix(), eager.counts_matrix());
        assert_eq!(streamed.to_series(), series);
    }

    #[test]
    fn empty_series_behaves() {
        let delta = DeltaSeries::new(Cadence::Weekly);
        assert!(delta.is_empty());
        assert_eq!(delta.len(), 0);
        assert_eq!(delta.materialize(0), None);
        let mut called = false;
        delta.for_each_day(|_| called = true);
        assert!(!called);
        assert_eq!(delta.to_series(), SnapshotSeries::new(Cadence::Weekly));
    }

    #[test]
    fn json_round_trip() {
        let delta = DeltaSeries::from_series(&fixture());
        let json = serde_json::to_string(&delta).unwrap();
        let back: DeltaSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(back, delta);
        assert_eq!(back.to_series(), delta.to_series());
    }
}
