//! # rdns-data
//!
//! The dataset layer: stand-ins for the three data sources of §3.
//!
//! * [`snapshot`] — full-address-space rDNS snapshots. A [`Snapshotter`]
//!   plays the role of OpenINTEL (daily cadence) or Rapid7 Project Sonar
//!   (weekly cadence) by dumping all PTR records from the shared
//!   [`ZoneStore`](rdns_dns::ZoneStore); a [`SnapshotSeries`] is the
//!   longitudinal dataset the §4/§5/§7.2 analyses consume.
//! * [`columnar`] — the analysis-side layout: sorted address columns plus
//!   an interned hostname pool shared across days, sharded per day for
//!   rayon fan-out.
//! * [`delta`] — the storage-side layout: day 0 in full plus per-day
//!   adds/renames/removes, with lazy materialization and a bounded-memory
//!   streaming walk, so a long window costs churn, not days × records.
//! * [`features`] — windowed behavioural features: per-address hostname
//!   [`PresenceTrack`]s with day-presence bitmasks, the content-blind input
//!   the `rdns-lab` tracker consumes.
//! * [`stats`] — summary statistics in the shape of Table 1 and Table 3.
//! * [`persist`] — on-disk storage: series as JSON, scan logs as CSV pairs.
//!
//! Snapshots serialize to JSON for offline reuse.

pub mod columnar;
pub mod delta;
pub mod features;
pub mod persist;
pub mod snapshot;
pub mod stats;

pub use columnar::{ColumnarDay, ColumnarSeries, NameId, NamePool};
pub use delta::{DeltaSeries, DeltaSnapshot};
pub use features::{PresenceTrack, TrackExtractor, TrackSet};
pub use persist::{load_scan_log, load_series, save_scan_log, save_series, PersistError};
pub use snapshot::{Cadence, DailySnapshot, Snapshotter, SnapshotSeries};
pub use stats::{ScanDatasetStats, SnapshotDatasetStats};
