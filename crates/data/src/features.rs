//! Windowed behavioural feature extraction over a snapshot series.
//!
//! The tracking-resistance lab (`rdns-lab`) pits mitigation policies against
//! a *content-blind* tracker: one that never reads what a PTR name says,
//! only whether the opaque token at an address stayed the same and how the
//! record appeared and disappeared over time. This module turns a day
//! stream (a [`DeltaSeries`] or any per-day `address → hostname` maps, e.g.
//! after a resolver-cache overlay) into [`PresenceTrack`]s: maximal spans
//! during which one address published one hostname token, with a per-day
//! presence bitmask.
//!
//! Hostnames are interned into a [`NamePool`] and only ever compared by
//! [`NameId`] equality downstream — the tracker never inspects name
//! *content*, which is what makes the lab's "hashing alone does not stop
//! tracking" result meaningful.
//!
//! Extraction is streaming (one materialised day at a time) and
//! deterministic: the produced tracks are a pure function of the day
//! stream, independent of how the world that produced it was sharded.

use crate::columnar::{NameId, NamePool};
use crate::delta::DeltaSeries;
use rdns_model::{Date, Hostname};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Maximum window length: presence is a `u64` day bitmask.
pub const MAX_WINDOW_DAYS: u16 = 64;

/// One maximal span of a single hostname token at a single address.
///
/// A track opens the first day `addr` publishes `token` and is broken only
/// when `addr` reappears with a *different* token; days where the address
/// has no record at all are gaps (zero bits in `presence`), not breaks —
/// an expired lease followed by the same device re-acquiring the same
/// address continues the same track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PresenceTrack {
    /// The address, as a big-endian `u32` (sorts like `Ipv4Addr`).
    pub addr: u32,
    /// Interned hostname token — compared only for equality.
    pub token: NameId,
    /// First window day (0-based) the token was present.
    pub first_day: u16,
    /// Last window day the token was present.
    pub last_day: u16,
    /// Bit `d` set iff the token was present on window day `d`.
    pub presence: u64,
}

impl PresenceTrack {
    /// Number of days the token was actually present.
    pub fn days_present(&self) -> u32 {
        self.presence.count_ones()
    }

    /// Whether the track was present on window day `d`.
    pub fn present_on(&self, d: u16) -> bool {
        d < MAX_WINDOW_DAYS && self.presence & (1u64 << d) != 0
    }

    /// Presence restricted to days `[from, to)`.
    pub fn presence_in(&self, from: u16, to: u16) -> u64 {
        let lo = from.min(MAX_WINDOW_DAYS) as u32;
        let hi = to.min(MAX_WINDOW_DAYS) as u32;
        if hi <= lo {
            return 0;
        }
        let span = hi - lo;
        let mask = if span >= 64 { u64::MAX } else { (1u64 << span) - 1 };
        (self.presence >> lo) & mask
    }

    /// The `/24` the address lives in (upper 24 bits).
    pub fn slash24(&self) -> u32 {
        self.addr >> 8
    }
}

/// The extracted feature set for one observation window.
#[derive(Debug, Clone)]
pub struct TrackSet {
    /// First day of the window.
    pub start: Date,
    /// Days in the window (≤ [`MAX_WINDOW_DAYS`]).
    pub days: u16,
    /// The token pool the tracks index into.
    pub pool: NamePool,
    /// All tracks, sorted by `(addr, first_day)`.
    pub tracks: Vec<PresenceTrack>,
}

impl TrackSet {
    /// Extract tracks from a delta series (the raw, no-overlay path).
    pub fn from_delta_series(series: &DeltaSeries) -> TrackSet {
        let mut ex = TrackExtractor::new();
        series.for_each_day(|day| ex.push_day(day.date, &day.records));
        ex.finish()
    }

    /// ISO weekday index (0 = Monday) of window day `d`.
    pub fn weekday_index(&self, d: u16) -> u8 {
        ((self.start.plus_days(d as i64).weekday() as u8) - 1) % 7
    }
}

/// Streaming track extractor: feed days in order, then [`finish`].
///
/// [`finish`]: TrackExtractor::finish
#[derive(Debug, Default)]
pub struct TrackExtractor {
    start: Option<Date>,
    day: u16,
    pool: NamePool,
    /// Open track per address: index into `tracks`.
    open: BTreeMap<u32, usize>,
    tracks: Vec<PresenceTrack>,
}

impl TrackExtractor {
    /// An empty extractor.
    pub fn new() -> TrackExtractor {
        TrackExtractor::default()
    }

    /// Ingest one day's `address → hostname` map. Days must be pushed in
    /// date order; at most [`MAX_WINDOW_DAYS`] days fit one window.
    pub fn push_day(&mut self, date: Date, records: &BTreeMap<Ipv4Addr, Hostname>) {
        assert!(
            self.day < MAX_WINDOW_DAYS,
            "window exceeds {MAX_WINDOW_DAYS} days"
        );
        if self.start.is_none() {
            self.start = Some(date);
        }
        let d = self.day;
        let bit = 1u64 << d;
        for (addr, host) in records {
            let addr = u32::from(*addr);
            let token = self.pool.intern(host.as_str());
            match self.open.get(&addr) {
                Some(&i) if self.tracks[i].token == token => {
                    self.tracks[i].last_day = d;
                    self.tracks[i].presence |= bit;
                }
                _ => {
                    let i = self.tracks.len();
                    self.tracks.push(PresenceTrack {
                        addr,
                        token,
                        first_day: d,
                        last_day: d,
                        presence: bit,
                    });
                    self.open.insert(addr, i);
                }
            }
        }
        self.day += 1;
    }

    /// Close the window and return the track set, sorted by
    /// `(addr, first_day)`.
    pub fn finish(self) -> TrackSet {
        let mut tracks = self.tracks;
        tracks.sort_unstable_by_key(|t| (t.addr, t.first_day));
        TrackSet {
            start: self.start.unwrap_or_else(|| Date::from_ymd(1970, 1, 1)),
            days: self.day,
            pool: self.pool,
            tracks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{Cadence, DailySnapshot};

    fn records(pairs: &[(&str, &str)]) -> BTreeMap<Ipv4Addr, Hostname> {
        pairs
            .iter()
            .map(|(a, h)| (a.parse().unwrap(), Hostname::new(h)))
            .collect()
    }

    fn extract(days: &[&[(&str, &str)]]) -> TrackSet {
        let start = Date::from_ymd(2021, 11, 1);
        let mut ex = TrackExtractor::new();
        for (i, day) in days.iter().enumerate() {
            ex.push_day(start.plus_days(i as i64), &records(day));
        }
        ex.finish()
    }

    #[test]
    fn stable_record_is_one_track() {
        let ts = extract(&[
            &[("10.0.1.5", "a.example.edu")],
            &[("10.0.1.5", "a.example.edu")],
            &[("10.0.1.5", "a.example.edu")],
        ]);
        assert_eq!(ts.days, 3);
        assert_eq!(ts.tracks.len(), 1);
        let t = ts.tracks[0];
        assert_eq!(t.presence, 0b111);
        assert_eq!((t.first_day, t.last_day), (0, 2));
        assert_eq!(t.days_present(), 3);
    }

    #[test]
    fn rename_splits_tracks_gap_does_not() {
        let ts = extract(&[
            &[("10.0.1.5", "a.example.edu")],
            &[], // gap: lease expired
            &[("10.0.1.5", "a.example.edu")], // same token resumes the track
            &[("10.0.1.5", "b.example.edu")], // new token breaks it
        ]);
        assert_eq!(ts.tracks.len(), 2);
        assert_eq!(ts.tracks[0].presence, 0b0101);
        assert_eq!(ts.tracks[0].last_day, 2);
        assert_eq!(ts.tracks[1].presence, 0b1000);
        assert_ne!(ts.tracks[0].token, ts.tracks[1].token);
    }

    #[test]
    fn tokens_are_shared_across_addresses() {
        // The same name at two addresses interns to one token — token
        // equality is how the content-blind tracker follows a device that
        // moved addresses.
        let ts = extract(&[
            &[("10.0.1.5", "x.example.edu")],
            &[("10.0.1.9", "x.example.edu")],
        ]);
        assert_eq!(ts.tracks.len(), 2);
        assert_eq!(ts.tracks[0].token, ts.tracks[1].token);
    }

    #[test]
    fn matches_delta_series_path() {
        let start = Date::from_ymd(2021, 11, 1);
        let days: Vec<Vec<(&str, &str)>> = vec![
            vec![("10.0.1.5", "a.edu"), ("10.0.1.9", "b.edu")],
            vec![("10.0.1.5", "a.edu")],
            vec![("10.0.1.5", "c.edu"), ("10.0.1.9", "b.edu")],
        ];
        let mut series = DeltaSeries::new(Cadence::Daily);
        let mut ex = TrackExtractor::new();
        for (i, day) in days.iter().enumerate() {
            let date = start.plus_days(i as i64);
            series.push(DailySnapshot {
                date,
                records: records(day),
            });
            ex.push_day(date, &records(day));
        }
        let a = TrackSet::from_delta_series(&series);
        let b = ex.finish();
        assert_eq!(a.tracks, b.tracks);
        assert_eq!(a.days, b.days);
        assert_eq!(a.start, b.start);
    }

    #[test]
    fn presence_window_helpers() {
        let t = PresenceTrack {
            addr: u32::from(Ipv4Addr::new(10, 0, 1, 5)),
            token: NameId(0),
            first_day: 0,
            last_day: 5,
            presence: 0b101101,
        };
        assert_eq!(t.presence_in(0, 3), 0b101);
        assert_eq!(t.presence_in(3, 6), 0b101);
        assert_eq!(t.presence_in(6, 6), 0);
        assert_eq!(t.slash24(), u32::from(Ipv4Addr::new(10, 0, 1, 5)) >> 8);
        assert!(t.present_on(0));
        assert!(!t.present_on(1));
    }

    #[test]
    fn weekday_index_follows_calendar() {
        let ts = extract(&[&[("10.0.1.5", "a.edu")]]);
        // 2021-11-01 is a Monday.
        assert_eq!(ts.weekday_index(0), 0);
        assert_eq!(ts.weekday_index(5), 5);
        assert_eq!(ts.weekday_index(7), 0);
    }

    #[test]
    fn empty_window() {
        let ts = TrackExtractor::new().finish();
        assert_eq!(ts.days, 0);
        assert!(ts.tracks.is_empty());
    }
}
