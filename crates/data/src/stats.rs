//! Dataset summary statistics (Table 1 and Table 3 shapes).

use crate::columnar::ColumnarSeries;
use crate::snapshot::SnapshotSeries;
use rdns_scan::ScanLog;
use rdns_model::Date;
use serde::{Deserialize, Serialize};

/// Table-1-shaped statistics for a snapshot series.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotDatasetStats {
    /// Dataset label (e.g. "OpenINTEL-like daily").
    pub label: String,
    /// First snapshot date.
    pub start: Option<Date>,
    /// Last snapshot date.
    pub end: Option<Date>,
    /// Total PTR responses across all snapshots.
    pub total_responses: u64,
    /// Unique PTR hostnames.
    pub unique_ptrs: usize,
}

impl SnapshotDatasetStats {
    /// Compute from a series.
    pub fn from_series(label: &str, series: &SnapshotSeries) -> SnapshotDatasetStats {
        SnapshotDatasetStats {
            label: label.to_string(),
            start: series.start_date(),
            end: series.end_date(),
            total_responses: series.total_responses(),
            unique_ptrs: series.unique_ptrs(),
        }
    }

    /// Compute from the columnar view; the unique-PTR count walks the
    /// interned name pool instead of hashing every hostname string.
    pub fn from_columnar(label: &str, series: &ColumnarSeries) -> SnapshotDatasetStats {
        SnapshotDatasetStats {
            label: label.to_string(),
            start: series.start_date(),
            end: series.end_date(),
            total_responses: series.total_responses(),
            unique_ptrs: series.unique_ptrs(),
        }
    }

    /// One row of a Table-1-style report.
    pub fn row(&self) -> String {
        format!(
            "{:<24} {:>10} {:>10} {:>14} {:>12}",
            self.label,
            self.start.map_or("-".into(), |d| d.to_string()),
            self.end.map_or("-".into(), |d| d.to_string()),
            self.total_responses,
            self.unique_ptrs
        )
    }
}

/// Table-3-shaped statistics for a supplemental measurement log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanDatasetStats {
    /// ICMP responses recorded.
    pub icmp_responses: u64,
    /// Unique addresses in ICMP data.
    pub icmp_unique_addrs: usize,
    /// rDNS responses recorded.
    pub rdns_responses: u64,
    /// Unique addresses in rDNS data.
    pub rdns_unique_addrs: usize,
    /// Unique PTR values observed.
    pub unique_ptrs: usize,
}

impl ScanDatasetStats {
    /// Compute from a scan log.
    pub fn from_log(log: &ScanLog) -> ScanDatasetStats {
        ScanDatasetStats {
            icmp_responses: log.icmp.len() as u64,
            icmp_unique_addrs: log.unique_icmp_addrs(),
            rdns_responses: log.rdns.len() as u64,
            rdns_unique_addrs: log.unique_rdns_addrs(),
            unique_ptrs: log.unique_ptrs(),
        }
    }

    /// Two rows of a Table-3-style report.
    pub fn rows(&self) -> Vec<String> {
        vec![
            format!(
                "ICMP {:>14} responses {:>10} unique addrs {:>10}",
                self.icmp_responses, self.icmp_unique_addrs, "-"
            ),
            format!(
                "rDNS {:>14} responses {:>10} unique addrs {:>10} unique PTRs",
                self.rdns_responses, self.rdns_unique_addrs, self.unique_ptrs
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{Cadence, DailySnapshot};
    use rdns_model::Hostname;
    use rdns_model::SimTime;
    use rdns_scan::RdnsOutcome;
    use std::collections::BTreeMap;

    #[test]
    fn snapshot_stats() {
        let mut series = SnapshotSeries::new(Cadence::Daily);
        let mut records = BTreeMap::new();
        records.insert("192.0.2.1".parse().unwrap(), Hostname::new("a.example"));
        series.push(DailySnapshot {
            date: Date::from_ymd(2020, 2, 17),
            records: records.clone(),
        });
        records.insert("192.0.2.2".parse().unwrap(), Hostname::new("b.example"));
        series.push(DailySnapshot {
            date: Date::from_ymd(2020, 2, 18),
            records,
        });
        let stats = SnapshotDatasetStats::from_series("OpenINTEL-like", &series);
        assert_eq!(stats.start, Some(Date::from_ymd(2020, 2, 17)));
        assert_eq!(stats.end, Some(Date::from_ymd(2020, 2, 18)));
        assert_eq!(stats.total_responses, 3);
        assert_eq!(stats.unique_ptrs, 2);
        assert!(stats.row().contains("OpenINTEL-like"));
    }

    #[test]
    fn empty_series_stats() {
        let series = SnapshotSeries::new(Cadence::Weekly);
        let stats = SnapshotDatasetStats::from_series("empty", &series);
        assert_eq!(stats.start, None);
        assert_eq!(stats.total_responses, 0);
        assert!(stats.row().contains('-'));
    }

    #[test]
    fn scan_stats() {
        let mut log = ScanLog::new();
        let t = SimTime::from_date(Date::from_ymd(2021, 10, 27));
        log.push_icmp(t, "10.0.0.1".parse().unwrap(), true);
        log.push_icmp(t, "10.0.0.2".parse().unwrap(), true);
        log.push_rdns(t, "10.0.0.1".parse().unwrap(), RdnsOutcome::Ptr(Hostname::new("x.example")));
        log.push_rdns(t, "10.0.0.1".parse().unwrap(), RdnsOutcome::NxDomain);
        let stats = ScanDatasetStats::from_log(&log);
        assert_eq!(stats.icmp_responses, 2);
        assert_eq!(stats.icmp_unique_addrs, 2);
        assert_eq!(stats.rdns_responses, 2);
        assert_eq!(stats.rdns_unique_addrs, 1);
        assert_eq!(stats.unique_ptrs, 1);
        assert_eq!(stats.rows().len(), 2);
    }
}
