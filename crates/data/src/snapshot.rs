//! rDNS snapshots and snapshot series.

use rdns_dns::{DnsStore, ZoneStore};
use rdns_model::{Date, Hostname, Slash24};
use rdns_telemetry::{Counter, Determinism, Gauge, Registry};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use std::net::Ipv4Addr;

/// Measurement cadence of a series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cadence {
    /// One snapshot per day (OpenINTEL).
    Daily,
    /// One snapshot per week (Rapid7 Sonar, "a single weekday every week").
    Weekly,
}

impl Cadence {
    /// Days between snapshots.
    pub fn interval_days(&self) -> i64 {
        match self {
            Cadence::Daily => 1,
            Cadence::Weekly => 7,
        }
    }
}

/// All PTR records visible on one date.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DailySnapshot {
    /// Snapshot date.
    pub date: Date,
    /// `address → hostname` for every PTR present.
    pub records: BTreeMap<Ipv4Addr, Hostname>,
}

impl DailySnapshot {
    /// Adopt a wire-mode sweep result. A [`rdns_scan::WireSnapshot`] carries
    /// exactly the `(date, ip → ptr)` shape of a daily observation, so the
    /// wire path and the fast path feed the same longitudinal analyses.
    pub fn from_wire(wire: rdns_scan::WireSnapshot) -> DailySnapshot {
        DailySnapshot {
            date: wire.date,
            records: wire.records,
        }
    }

    /// Number of PTR records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Per-/24 record counts as `(block prefix, count)`, ascending by
    /// prefix. The `BTreeMap` keys are already address-sorted, so this is a
    /// single run-length pass (`addr >> 8` changes ⇒ new block) with no
    /// per-address map lookups — the same shape as
    /// [`crate::ColumnarDay::slash24_runs`].
    pub fn slash24_runs(&self) -> Vec<(u32, u32)> {
        let mut runs: Vec<(u32, u32)> = Vec::new();
        for addr in self.records.keys() {
            let prefix = u32::from(*addr) >> 8;
            match runs.last_mut() {
                Some((p, n)) if *p == prefix => *n += 1,
                _ => runs.push((prefix, 1)),
            }
        }
        runs
    }

    /// Unique addresses-with-PTR per /24 block, in block order.
    pub fn counts_by_slash24(&self) -> BTreeMap<Slash24, u32> {
        self.slash24_runs()
            .into_iter()
            .map(|(prefix, count)| {
                (Slash24::containing(Ipv4Addr::from(prefix << 8)), count)
            })
            .collect()
    }

    /// Records within a predicate over addresses (e.g. one subnet).
    pub fn count_where<F: Fn(Ipv4Addr) -> bool>(&self, pred: F) -> usize {
        self.records.keys().filter(|a| pred(**a)).count()
    }
}

impl From<rdns_scan::WireSnapshot> for DailySnapshot {
    fn from(wire: rdns_scan::WireSnapshot) -> DailySnapshot {
        DailySnapshot::from_wire(wire)
    }
}

/// Takes snapshots of a DNS store.
///
/// Works over any [`DnsStore`]; the default is the lock-striped
/// [`ZoneStore`], where [`Snapshotter::take`] sweeps zone by zone — only
/// one stripe is locked at any moment, so concurrent writers (sim shards,
/// DHCP-driven IPAM updates) are never blocked for the duration of a full
/// address-space sweep.
#[derive(Debug, Clone)]
pub struct Snapshotter<S: DnsStore = ZoneStore> {
    store: S,
    metrics: SnapMetrics,
}

/// Telemetry cells for [`Snapshotter`]. Unregistered (free-floating) by
/// default; [`Snapshotter::attach_registry`] swaps in registry-backed cells.
#[derive(Debug, Clone, Default)]
struct SnapMetrics {
    snapshots: Counter,
    last_records: Gauge,
}

impl SnapMetrics {
    fn with_registry(registry: &Registry) -> SnapMetrics {
        SnapMetrics {
            snapshots: registry.counter(
                "rdns_data_snapshots_total",
                "Full-store snapshots taken.",
                Determinism::SeedStable,
            ),
            last_records: registry.gauge(
                "rdns_data_last_snapshot_records",
                "PTR records in the most recent snapshot.",
                Determinism::SeedStable,
            ),
        }
    }
}

impl<S: DnsStore> Snapshotter<S> {
    /// Observe `store`.
    pub fn new(store: S) -> Snapshotter<S> {
        Snapshotter {
            store,
            metrics: SnapMetrics::default(),
        }
    }

    /// Report snapshot metrics (`rdns_data_*`) to `registry`. Call once,
    /// before taking snapshots; prior counts carry over. Clones made after
    /// attaching share the same metric cells.
    pub fn attach_registry(&mut self, registry: &Registry) {
        let metrics = SnapMetrics::with_registry(registry);
        metrics.snapshots.absorb(&self.metrics.snapshots);
        metrics.last_records.set(self.metrics.last_records.get());
        self.metrics = metrics;
    }

    /// Take a full snapshot dated `date`.
    pub fn take(&self, date: Date) -> DailySnapshot {
        let mut records = BTreeMap::new();
        // The hostname visit lends the interned PTR text directly (no
        // intermediate `DnsName` materialisation on the fast path).
        self.store.visit_ptr_hostnames(&mut |addr, name| {
            records.insert(addr, Hostname::new(name));
        });
        self.metrics.snapshots.inc();
        self.metrics.last_records.set(records.len() as i64);
        DailySnapshot { date, records }
    }
}

/// A longitudinal series of snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotSeries {
    /// Cadence of collection.
    pub cadence: Cadence,
    /// Snapshots in date order.
    pub snapshots: Vec<DailySnapshot>,
}

impl SnapshotSeries {
    /// An empty series.
    pub fn new(cadence: Cadence) -> SnapshotSeries {
        SnapshotSeries {
            cadence,
            snapshots: Vec::new(),
        }
    }

    /// Append a snapshot, keeping date order.
    pub fn push(&mut self, snapshot: DailySnapshot) {
        debug_assert!(self
            .snapshots
            .last()
            .is_none_or(|s| s.date < snapshot.date));
        self.snapshots.push(snapshot);
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// First snapshot date.
    pub fn start_date(&self) -> Option<Date> {
        self.snapshots.first().map(|s| s.date)
    }

    /// Last snapshot date.
    pub fn end_date(&self) -> Option<Date> {
        self.snapshots.last().map(|s| s.date)
    }

    /// Total PTR responses across snapshots (Table 1's "Total # responses").
    pub fn total_responses(&self) -> u64 {
        self.snapshots.iter().map(|s| s.len() as u64).sum()
    }

    /// Unique PTR hostnames across the whole series.
    pub fn unique_ptrs(&self) -> usize {
        let mut set: HashSet<&Hostname> = HashSet::new();
        for s in &self.snapshots {
            set.extend(s.records.values());
        }
        set.len()
    }

    /// Unique /24 blocks with at least one PTR anywhere in the series.
    pub fn unique_slash24s(&self) -> usize {
        let mut set: HashSet<Slash24> = HashSet::new();
        for s in &self.snapshots {
            set.extend(s.records.keys().map(|a| Slash24::containing(*a)));
        }
        set.len()
    }

    /// Per-/24 daily count matrix: for each block seen anywhere, a vector of
    /// counts aligned with `self.snapshots` — the input of the §4.1
    /// dynamicity heuristic. Keyed in block order, so iteration is
    /// deterministic without sorting.
    pub fn counts_matrix(&self) -> BTreeMap<Slash24, Vec<u32>> {
        let days = self.snapshots.len();
        let mut out: BTreeMap<Slash24, Vec<u32>> = BTreeMap::new();
        for (i, snap) in self.snapshots.iter().enumerate() {
            for (prefix, count) in snap.slash24_runs() {
                let block = Slash24::containing(Ipv4Addr::from(prefix << 8));
                out.entry(block).or_insert_with(|| vec![0; days])[i] = count;
            }
        }
        out
    }

    /// Daily totals filtered by an address predicate (Fig. 9/10 series).
    pub fn daily_totals_where<F: Fn(Ipv4Addr) -> bool>(&self, pred: F) -> Vec<(Date, usize)> {
        self.snapshots
            .iter()
            .map(|s| (s.date, s.count_where(&pred)))
            .collect()
    }

    /// Serialize the series to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Load a series from JSON.
    pub fn from_json(text: &str) -> serde_json::Result<SnapshotSeries> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(records: &[(&str, &str)]) -> ZoneStore {
        let store = ZoneStore::new();
        for (addr, host) in records {
            let a: Ipv4Addr = addr.parse().unwrap();
            store.ensure_reverse_zone(a);
            store.set_ptr(a, host.parse().unwrap(), 300);
        }
        store
    }

    #[test]
    fn snapshot_captures_store_state() {
        let store = store_with(&[
            ("192.0.2.1", "a.example.edu"),
            ("192.0.2.2", "b.example.edu"),
            ("198.51.100.9", "c.example.org"),
        ]);
        let snap = Snapshotter::new(store.clone()).take(Date::from_ymd(2021, 1, 1));
        assert_eq!(snap.len(), 3);
        assert_eq!(
            snap.records[&"192.0.2.1".parse::<Ipv4Addr>().unwrap()],
            Hostname::new("a.example.edu")
        );
        // Mutating the store afterwards must not affect the snapshot.
        store.remove_ptr("192.0.2.1".parse().unwrap());
        assert_eq!(snap.len(), 3);
    }

    #[test]
    fn counts_by_slash24() {
        let store = store_with(&[
            ("192.0.2.1", "a.example"),
            ("192.0.2.2", "b.example"),
            ("198.51.100.9", "c.example"),
        ]);
        let snap = Snapshotter::new(store).take(Date::from_ymd(2021, 1, 1));
        let counts = snap.counts_by_slash24();
        assert_eq!(counts[&Slash24::from_octets(192, 0, 2)], 2);
        assert_eq!(counts[&Slash24::from_octets(198, 51, 100)], 1);
    }

    #[test]
    fn series_statistics() {
        let store = store_with(&[("192.0.2.1", "a.example"), ("192.0.2.2", "b.example")]);
        let snapper = Snapshotter::new(store.clone());
        let mut series = SnapshotSeries::new(Cadence::Daily);
        series.push(snapper.take(Date::from_ymd(2021, 1, 1)));
        store.set_ptr("192.0.2.3".parse().unwrap(), "c.example".parse().unwrap(), 300);
        series.push(snapper.take(Date::from_ymd(2021, 1, 2)));
        assert_eq!(series.len(), 2);
        assert_eq!(series.total_responses(), 2 + 3);
        assert_eq!(series.unique_ptrs(), 3);
        assert_eq!(series.unique_slash24s(), 1);
        assert_eq!(series.start_date(), Some(Date::from_ymd(2021, 1, 1)));
        assert_eq!(series.end_date(), Some(Date::from_ymd(2021, 1, 2)));
    }

    #[test]
    fn counts_matrix_alignment() {
        let store = store_with(&[("192.0.2.1", "a.example")]);
        let snapper = Snapshotter::new(store.clone());
        let mut series = SnapshotSeries::new(Cadence::Daily);
        series.push(snapper.take(Date::from_ymd(2021, 1, 1)));
        // Day 2: record gone; a different block appears.
        store.remove_ptr("192.0.2.1".parse().unwrap());
        store.ensure_reverse_zone("198.51.100.1".parse().unwrap());
        store.set_ptr("198.51.100.1".parse().unwrap(), "x.example".parse().unwrap(), 300);
        series.push(snapper.take(Date::from_ymd(2021, 1, 2)));

        let matrix = series.counts_matrix();
        assert_eq!(matrix[&Slash24::from_octets(192, 0, 2)], vec![1, 0]);
        assert_eq!(matrix[&Slash24::from_octets(198, 51, 100)], vec![0, 1]);
    }

    #[test]
    fn daily_totals_with_predicate() {
        let store = store_with(&[
            ("192.0.2.1", "a.example"),
            ("198.51.100.1", "b.example"),
        ]);
        let snapper = Snapshotter::new(store);
        let mut series = SnapshotSeries::new(Cadence::Daily);
        series.push(snapper.take(Date::from_ymd(2021, 1, 1)));
        let net: rdns_model::Ipv4Net = "192.0.2.0/24".parse().unwrap();
        let totals = series.daily_totals_where(|a| net.contains(a));
        assert_eq!(totals, vec![(Date::from_ymd(2021, 1, 1), 1)]);
    }

    #[test]
    fn json_roundtrip() {
        let store = store_with(&[("192.0.2.1", "a.example")]);
        let mut series = SnapshotSeries::new(Cadence::Weekly);
        series.push(Snapshotter::new(store).take(Date::from_ymd(2021, 1, 1)));
        let json = series.to_json().unwrap();
        let back = SnapshotSeries::from_json(&json).unwrap();
        assert_eq!(series, back);
        assert_eq!(back.cadence.interval_days(), 7);
    }

    #[test]
    fn wire_snapshot_converts_losslessly() {
        let date = Date::from_ymd(2021, 11, 1);
        let mut records = BTreeMap::new();
        records.insert(
            "192.0.2.1".parse::<Ipv4Addr>().unwrap(),
            Hostname::new("a.example.edu"),
        );
        let wire = rdns_scan::WireSnapshot {
            date,
            records: records.clone(),
        };
        let snap: DailySnapshot = wire.into();
        assert_eq!(snap.date, date);
        assert_eq!(snap.records, records);
        // A converted snapshot slots straight into a series.
        let mut series = SnapshotSeries::new(Cadence::Daily);
        series.push(snap);
        assert_eq!(series.total_responses(), 1);
    }

    #[test]
    fn cadence_intervals() {
        assert_eq!(Cadence::Daily.interval_days(), 1);
        assert_eq!(Cadence::Weekly.interval_days(), 7);
    }
}
