//! On-disk persistence for datasets.
//!
//! The paper retains its supplemental data "in encrypted form on our
//! institution's servers" for reproducibility (§9); this module provides the
//! plumbing: snapshot series as JSON, scan logs as the same CSV pair the
//! measurement tools write.

use crate::snapshot::SnapshotSeries;
use rdns_scan::ScanLog;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Errors from dataset persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// CSV parse failure.
    Csv(rdns_scan::records::CsvError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o: {e}"),
            PersistError::Json(e) => write!(f, "json: {e}"),
            PersistError::Csv(e) => write!(f, "csv: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

impl From<rdns_scan::records::CsvError> for PersistError {
    fn from(e: rdns_scan::records::CsvError) -> Self {
        PersistError::Csv(e)
    }
}

/// Write a snapshot series as JSON.
pub fn save_series(series: &SnapshotSeries, path: &Path) -> Result<(), PersistError> {
    fs::write(path, series.to_json()?)?;
    Ok(())
}

/// Load a snapshot series from JSON.
pub fn load_series(path: &Path) -> Result<SnapshotSeries, PersistError> {
    Ok(SnapshotSeries::from_json(&fs::read_to_string(path)?)?)
}

/// Write a scan log as the measurement tools' CSV pair:
/// `<stem>.icmp.csv` and `<stem>.rdns.csv`.
pub fn save_scan_log(log: &ScanLog, dir: &Path, stem: &str) -> Result<(), PersistError> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(format!("{stem}.icmp.csv")), log.icmp_csv())?;
    fs::write(dir.join(format!("{stem}.rdns.csv")), log.rdns_csv())?;
    Ok(())
}

/// Load a scan log from its CSV pair.
pub fn load_scan_log(dir: &Path, stem: &str) -> Result<ScanLog, PersistError> {
    let icmp = fs::read_to_string(dir.join(format!("{stem}.icmp.csv")))?;
    let rdns = fs::read_to_string(dir.join(format!("{stem}.rdns.csv")))?;
    Ok(ScanLog::from_csv(&icmp, &rdns)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{Cadence, DailySnapshot};
    use rdns_model::{Date, Hostname, SimTime};
    use rdns_scan::RdnsOutcome;
    use std::collections::BTreeMap;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rdns-data-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn series_roundtrip_via_disk() {
        let dir = scratch_dir("series");
        let mut series = SnapshotSeries::new(Cadence::Daily);
        let mut records = BTreeMap::new();
        records.insert(
            "192.0.2.1".parse().unwrap(),
            Hostname::new("brians-air.example.edu"),
        );
        series.push(DailySnapshot {
            date: Date::from_ymd(2021, 11, 1),
            records,
        });
        let path = dir.join("daily.json");
        save_series(&series, &path).unwrap();
        let back = load_series(&path).unwrap();
        assert_eq!(back, series);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_log_roundtrip_via_disk() {
        let dir = scratch_dir("scanlog");
        let mut log = ScanLog::new();
        let t = SimTime::from_date(Date::from_ymd(2021, 11, 1));
        log.push_icmp(t, "10.0.0.1".parse().unwrap(), true);
        log.push_rdns(
            t,
            "10.0.0.1".parse().unwrap(),
            RdnsOutcome::Ptr(Hostname::new("emmas-ipad.example.edu")),
        );
        log.push_rdns(t, "10.0.0.2".parse().unwrap(), RdnsOutcome::Timeout);
        save_scan_log(&log, &dir, "campaign").unwrap();
        let back = load_scan_log(&dir, "campaign").unwrap();
        assert_eq!(back, log);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_files_error_cleanly() {
        let dir = scratch_dir("missing");
        assert!(matches!(
            load_series(&dir.join("nope.json")),
            Err(PersistError::Io(_))
        ));
        assert!(matches!(
            load_scan_log(&dir, "nope"),
            Err(PersistError::Io(_))
        ));
        // Corrupt content surfaces as the right error class.
        fs::write(dir.join("bad.json"), "{not json").unwrap();
        assert!(matches!(
            load_series(&dir.join("bad.json")),
            Err(PersistError::Json(_))
        ));
        fs::write(dir.join("bad.icmp.csv"), "ts,addr,alive\nbroken").unwrap();
        fs::write(dir.join("bad.rdns.csv"), "h\n").unwrap();
        assert!(matches!(
            load_scan_log(&dir, "bad"),
            Err(PersistError::Csv(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
