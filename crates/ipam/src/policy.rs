//! The policy engine: lease events in, scheduled DNS changes out.

use crate::naming::{hashed_label, sanitize_label};
use rdns_dhcp::{LeaseEvent, MacAddr};
use rdns_dns::{DnsName, DnsStore, ZoneStore};
use rdns_model::{SimDuration, SimTime};
use rdns_telemetry::{Counter, Determinism, Registry};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::net::Ipv4Addr;

/// How lease events translate into reverse-DNS state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PtrPolicy {
    /// Publish the sanitized client Host Name under `suffix` and remove the
    /// record when the lease ends — the configuration the paper observes in
    /// the wild.
    CarryOverHostName {
        /// Zone suffix appended to the host label, e.g. `resnet.example.edu`.
        suffix: String,
    },
    /// Publish a salted hash of the client identity instead of the name.
    /// Presence dynamics remain observable; identity does not.
    Hashed {
        /// Zone suffix appended to the hash label.
        suffix: String,
        /// Hash salt; rotate to unlink longitudinal observations.
        salt: u64,
    },
    /// [`PtrPolicy::Hashed`] with the rotation actually performed: the
    /// effective salt changes every `period_secs` of simulated time, so an
    /// observer's hash tokens stop matching across rotation boundaries.
    /// This is the operationalised form of §8's "rotate the salt" advice —
    /// the grid axis `rdns-lab` evaluates against a content-blind tracker.
    HashedRotating {
        /// Zone suffix appended to the hash label.
        suffix: String,
        /// Base salt; each rotation epoch mixes the epoch index in.
        salt: u64,
        /// Rotation period in simulated seconds (e.g. 7 days).
        period_secs: u64,
    },
    /// Static IP-derived names (`host-a-b-c-d.dynamic.<suffix>`), provisioned
    /// once and never changed by lease traffic.
    FixedForm {
        /// Zone suffix.
        suffix: String,
    },
    /// Never touch the DNS.
    NoUpdate,
}

/// A single reverse-DNS mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnsChange {
    /// Install/replace the PTR for `addr`.
    AddPtr {
        /// Address whose reverse name is updated.
        addr: Ipv4Addr,
        /// The PTR target.
        target: DnsName,
    },
    /// Delete the PTR for `addr`.
    RemovePtr {
        /// Address whose reverse name is cleared.
        addr: Ipv4Addr,
    },
}

impl DnsChange {
    /// The address the change concerns.
    pub fn addr(&self) -> Ipv4Addr {
        match self {
            DnsChange::AddPtr { addr, .. } | DnsChange::RemovePtr { addr } => *addr,
        }
    }
}

/// IPAM configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpamConfig {
    /// PTR derivation policy.
    pub policy: PtrPolicy,
    /// Whether the RFC 4702 `N` ("no server DNS updates") bit from the
    /// client FQDN option is honoured. Paper §8 asks exactly this question
    /// of real deployments.
    pub honor_no_update_flag: bool,
    /// Processing latency between a lease event and the DNS change landing.
    pub update_delay: SimDuration,
    /// TTL for published PTR records.
    pub ttl: u32,
    /// Also maintain the matching *forward* (A) records — the paper's §10
    /// notes forward DNS can be dynamically updated by DHCP servers too and
    /// deserves the same scrutiny.
    pub maintain_forward: bool,
}

impl IpamConfig {
    /// The leaky default: verbatim carry-over, no honouring of N, immediate
    /// updates, 300 s TTL.
    pub fn carry_over(suffix: impl Into<String>) -> IpamConfig {
        IpamConfig {
            policy: PtrPolicy::CarryOverHostName {
                suffix: suffix.into(),
            },
            honor_no_update_flag: false,
            update_delay: SimDuration::secs(0),
            ttl: 300,
            maintain_forward: false,
        }
    }
}

/// Counters of policy-engine activity.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpamStats {
    /// PTR additions committed.
    pub added: u64,
    /// PTR removals committed.
    pub removed: u64,
    /// Lease events that produced no DNS change.
    pub suppressed: u64,
}

/// Registry-backed counters behind an [`Ipam`]. Carry-over decisions are a
/// pure function of lease traffic, so all of them are
/// [`Determinism::SeedStable`].
#[derive(Debug, Clone, Default)]
struct IpamMetrics {
    added: Counter,
    removed: Counter,
    suppressed: Counter,
}

impl IpamMetrics {
    fn with_registry(registry: &Registry) -> IpamMetrics {
        let c = |name, help| registry.counter(name, help, Determinism::SeedStable);
        IpamMetrics {
            added: c("rdns_ipam_added_total", "PTR additions committed."),
            removed: c("rdns_ipam_removed_total", "PTR removals committed."),
            suppressed: c(
                "rdns_ipam_suppressed_total",
                "Lease events that produced no DNS change.",
            ),
        }
    }

    fn absorb(&self, old: &IpamMetrics) {
        self.added.absorb(&old.added);
        self.removed.absorb(&old.removed);
        self.suppressed.absorb(&old.suppressed);
    }
}

/// An entry in the audit trail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEntry {
    /// When the change was committed.
    pub at: SimTime,
    /// The committed change.
    pub change: DnsChange,
}

#[derive(Debug, Clone)]
struct Pending {
    due: SimTime,
    change: DnsChange,
}

/// The IPAM policy engine bound to a zone store.
///
/// Generic over the [`DnsStore`] backend: production code writes to the
/// lock-striped [`ZoneStore`] (the default), while the serial simulation
/// baseline drives the same policy logic against a
/// [`rdns_dns::CoarseZoneStore`].
/// Note on cloning: clones share the same metric cells, so after
/// [`Ipam::attach_registry`] the counters reported by [`Ipam::stats`] are the
/// aggregate across all clones.
#[derive(Debug, Clone)]
pub struct Ipam<S: DnsStore = ZoneStore> {
    config: IpamConfig,
    store: S,
    queue: VecDeque<Pending>,
    metrics: IpamMetrics,
    audit: Vec<AuditEntry>,
    audit_enabled: bool,
}

impl<S: DnsStore> Ipam<S> {
    /// Create an engine writing to `store`.
    pub fn new(config: IpamConfig, store: S) -> Ipam<S> {
        Ipam {
            config,
            store,
            queue: VecDeque::new(),
            metrics: IpamMetrics::default(),
            audit: Vec::new(),
            audit_enabled: false,
        }
    }

    /// Route this engine's counters through `registry` (as `rdns_ipam_*`).
    /// Counts accumulated so far — e.g. by [`Ipam::preprovision`] during
    /// world construction — are carried over; call once per engine.
    pub fn attach_registry(&mut self, registry: &Registry) {
        let metrics = IpamMetrics::with_registry(registry);
        metrics.absorb(&self.metrics);
        self.metrics = metrics;
    }

    /// Keep an in-memory audit trail of committed changes (off by default;
    /// long simulations would otherwise grow unboundedly).
    pub fn enable_audit(&mut self) {
        self.audit_enabled = true;
    }

    /// The audit trail (empty unless enabled).
    pub fn audit(&self) -> &[AuditEntry] {
        &self.audit
    }

    /// Engine counters.
    pub fn stats(&self) -> IpamStats {
        IpamStats {
            added: self.metrics.added.get(),
            removed: self.metrics.removed.get(),
            suppressed: self.metrics.suppressed.get(),
        }
    }

    /// The configured policy.
    pub fn config(&self) -> &IpamConfig {
        &self.config
    }

    /// For [`PtrPolicy::FixedForm`]: provision static records for an entire
    /// pool up front. Idempotent.
    pub fn preprovision<I: IntoIterator<Item = Ipv4Addr>>(&mut self, addrs: I, now: SimTime) {
        if let PtrPolicy::FixedForm { suffix } = &self.config.policy {
            let suffix = suffix.clone();
            for addr in addrs {
                let target = fixed_form_name(addr, &suffix);
                self.store.ensure_reverse_zone(addr);
                self.commit(
                    now,
                    DnsChange::AddPtr {
                        addr,
                        target,
                    },
                );
            }
        }
    }

    /// Translate a lease event into scheduled DNS changes.
    pub fn apply(&mut self, event: &LeaseEvent) {
        let (at, change) = match event {
            LeaseEvent::Allocated {
                lease,
                client_fqdn,
                at,
            } => {
                if self.config.honor_no_update_flag
                    && client_fqdn.as_ref().is_some_and(|(n, _)| *n)
                {
                    self.metrics.suppressed.inc();
                    return;
                }
                match self.derive_target(lease.addr, lease.mac, lease.host_name.as_deref(), *at) {
                    Some(target) => (
                        *at,
                        DnsChange::AddPtr {
                            addr: lease.addr,
                            target,
                        },
                    ),
                    None => {
                        self.metrics.suppressed.inc();
                        return;
                    }
                }
            }
            LeaseEvent::Renewed { .. } => {
                // Renewal keeps the binding; nothing to change.
                self.metrics.suppressed.inc();
                return;
            }
            LeaseEvent::Released { lease, at } | LeaseEvent::Expired { lease, at } => {
                match self.config.policy {
                    PtrPolicy::CarryOverHostName { .. }
                    | PtrPolicy::Hashed { .. }
                    | PtrPolicy::HashedRotating { .. } => {
                        (*at, DnsChange::RemovePtr { addr: lease.addr })
                    }
                    PtrPolicy::FixedForm { .. } | PtrPolicy::NoUpdate => {
                        self.metrics.suppressed.inc();
                        return;
                    }
                }
            }
        };
        let due = at + self.config.update_delay;
        self.queue.push_back(Pending { due, change });
    }

    /// Commit every scheduled change due at or before `now`. Returns the
    /// changes committed in this call.
    pub fn flush(&mut self, now: SimTime) -> Vec<DnsChange> {
        let mut out = Vec::new();
        // Queue is in insertion order; with a constant delay that is also
        // due-time order.
        while let Some(front) = self.queue.front() {
            if front.due > now {
                break;
            }
            let Pending { due, change } = self.queue.pop_front().expect("peeked non-empty");
            self.commit(due, change.clone());
            out.push(change);
        }
        out
    }

    /// Changes still scheduled.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    fn commit(&mut self, at: SimTime, change: DnsChange) {
        match &change {
            DnsChange::AddPtr { addr, target } => {
                self.store.ensure_reverse_zone(*addr);
                if self.config.maintain_forward {
                    self.store.ensure_zone(target.parent());
                    self.store.set_a(target, *addr, self.config.ttl);
                }
                self.store.set_ptr(*addr, target.clone(), self.config.ttl);
                self.metrics.added.inc();
            }
            DnsChange::RemovePtr { addr } => {
                if self.config.maintain_forward {
                    // The PTR still names the host; mirror its removal in
                    // the forward tree before dropping it.
                    if let Some(name) = self.store.get_ptr(*addr) {
                        self.store.remove_a(&name);
                    }
                }
                self.store.remove_ptr(*addr);
                self.metrics.removed.inc();
            }
        }
        if self.audit_enabled {
            self.audit.push(AuditEntry { at, change });
        }
    }

    fn derive_target(
        &self,
        addr: Ipv4Addr,
        mac: MacAddr,
        host_name: Option<&str>,
        at: SimTime,
    ) -> Option<DnsName> {
        match &self.config.policy {
            PtrPolicy::CarryOverHostName { suffix } => {
                let label = sanitize_label(host_name?)?;
                DnsName::parse(&format!("{label}.{suffix}")).ok()
            }
            PtrPolicy::Hashed { suffix, salt } => {
                let label = hashed_label(mac, *salt);
                DnsName::parse(&format!("{label}.{suffix}")).ok()
            }
            PtrPolicy::HashedRotating {
                suffix,
                salt,
                period_secs,
            } => {
                let label = hashed_label(mac, rotated_salt(*salt, *period_secs, at));
                DnsName::parse(&format!("{label}.{suffix}")).ok()
            }
            PtrPolicy::FixedForm { suffix } => Some(fixed_form_name(addr, suffix)),
            PtrPolicy::NoUpdate => None,
        }
    }
}

/// The effective salt of a [`PtrPolicy::HashedRotating`] policy at `at`:
/// epoch 0 uses the base salt verbatim (so a never-rotating period is
/// indistinguishable from [`PtrPolicy::Hashed`]); later epochs mix the epoch
/// index through a multiplicative spread so consecutive epochs share no
/// structure.
pub fn rotated_salt(salt: u64, period_secs: u64, at: SimTime) -> u64 {
    if period_secs == 0 {
        return salt;
    }
    let secs = at.0.max(0) as u64;
    let epoch = secs / period_secs;
    salt ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn fixed_form_name(addr: Ipv4Addr, suffix: &str) -> DnsName {
    let o = addr.octets();
    DnsName::parse(&format!(
        "host-{}-{}-{}-{}.dynamic.{suffix}",
        o[0], o[1], o[2], o[3]
    ))
    .expect("fixed-form names are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdns_dhcp::{acquire, ClientIdentity, DhcpServer, ServerConfig};
    use rdns_model::Date;

    fn t0() -> SimTime {
        SimTime::from_date(Date::from_ymd(2021, 11, 1))
    }

    fn setup(policy: PtrPolicy) -> (DhcpServer, Ipam, ZoneStore) {
        let store = ZoneStore::new();
        let config = IpamConfig {
            policy,
            honor_no_update_flag: false,
            update_delay: SimDuration::secs(0),
            ttl: 300,
            maintain_forward: false,
        };
        let server = DhcpServer::new(
            ServerConfig::new("10.0.0.1".parse().unwrap()),
            (10..=20u8).map(|i| Ipv4Addr::new(10, 0, 0, i)),
        );
        (server, Ipam::new(config, store.clone()), store)
    }

    fn carry_over() -> PtrPolicy {
        PtrPolicy::CarryOverHostName {
            suffix: "resnet.example.edu".into(),
        }
    }

    #[test]
    fn allocation_publishes_ptr() {
        let (mut server, mut ipam, store) = setup(carry_over());
        let id = ClientIdentity::standard(rdns_dhcp::MacAddr::from_seed(1), "Brian's iPhone");
        let (addr, events) = acquire(&mut server, &id, 1, t0()).unwrap();
        for e in &events {
            ipam.apply(e);
        }
        ipam.flush(t0());
        assert_eq!(
            store.get_ptr(addr).unwrap().to_string(),
            "brians-iphone.resnet.example.edu."
        );
        assert_eq!(ipam.stats().added, 1);
    }

    #[test]
    fn release_removes_ptr() {
        let (mut server, mut ipam, store) = setup(carry_over());
        let id = ClientIdentity::standard(rdns_dhcp::MacAddr::from_seed(1), "laptop");
        let (addr, events) = acquire(&mut server, &id, 1, t0()).unwrap();
        for e in &events {
            ipam.apply(e);
        }
        ipam.flush(t0());
        assert!(store.get_ptr(addr).is_some());

        let leave = t0() + SimDuration::mins(42);
        let rel = id.release(2, addr, "10.0.0.1".parse().unwrap());
        let (_, events) = server.handle(&rel, leave);
        for e in &events {
            ipam.apply(e);
        }
        ipam.flush(leave);
        assert!(store.get_ptr(addr).is_none());
        assert_eq!(ipam.stats().removed, 1);
    }

    #[test]
    fn expiry_removes_ptr() {
        let (mut server, mut ipam, store) = setup(carry_over());
        let id = ClientIdentity::standard(rdns_dhcp::MacAddr::from_seed(1), "ghost-phone");
        let (addr, events) = acquire(&mut server, &id, 1, t0()).unwrap();
        for e in &events {
            ipam.apply(e);
        }
        ipam.flush(t0());

        let when = t0() + SimDuration::hours(1);
        for e in server.tick(when) {
            ipam.apply(&e);
        }
        ipam.flush(when);
        assert!(store.get_ptr(addr).is_none());
    }

    #[test]
    fn update_delay_defers_commit() {
        let store = ZoneStore::new();
        let mut config = IpamConfig::carry_over("example.org");
        config.update_delay = SimDuration::mins(2);
        let mut ipam = Ipam::new(config, store.clone());
        let mut server = DhcpServer::new(
            ServerConfig::new("10.0.0.1".parse().unwrap()),
            [Ipv4Addr::new(10, 0, 0, 10)],
        );
        let id = ClientIdentity::standard(rdns_dhcp::MacAddr::from_seed(1), "slow");
        let (addr, events) = acquire(&mut server, &id, 1, t0()).unwrap();
        for e in &events {
            ipam.apply(e);
        }
        assert!(ipam.flush(t0()).is_empty());
        assert_eq!(ipam.pending(), 1);
        assert!(store.get_ptr(addr).is_none());
        let committed = ipam.flush(t0() + SimDuration::mins(2));
        assert_eq!(committed.len(), 1);
        assert!(store.get_ptr(addr).is_some());
    }

    #[test]
    fn hashed_policy_hides_identity_but_not_presence() {
        let (mut server, mut ipam, store) = setup(PtrPolicy::Hashed {
            suffix: "example.edu".into(),
            salt: 99,
        });
        let id = ClientIdentity::standard(rdns_dhcp::MacAddr::from_seed(1), "Brian's iPhone");
        let (addr, events) = acquire(&mut server, &id, 1, t0()).unwrap();
        for e in &events {
            ipam.apply(e);
        }
        ipam.flush(t0());
        let name = store.get_ptr(addr).unwrap().to_string();
        assert!(!name.contains("brian"), "identity leaked: {name}");
        assert!(name.starts_with("h-"));
        // Presence dynamics still visible: removal on release.
        let rel = id.release(2, addr, "10.0.0.1".parse().unwrap());
        let leave = t0() + SimDuration::mins(5);
        let (_, events) = server.handle(&rel, leave);
        for e in &events {
            ipam.apply(e);
        }
        ipam.flush(leave);
        assert!(store.get_ptr(addr).is_none());
    }

    #[test]
    fn rotating_hash_changes_label_across_period_boundary() {
        let period = SimDuration::hours(24).as_secs();
        let policy = || PtrPolicy::HashedRotating {
            suffix: "example.edu".into(),
            salt: 99,
            period_secs: period,
        };
        let label_at = |at: SimTime| {
            let (mut server, mut ipam, store) = setup(policy());
            let id = ClientIdentity::standard(rdns_dhcp::MacAddr::from_seed(1), "Brian's iPhone");
            let (addr, events) = acquire(&mut server, &id, 1, at).unwrap();
            for e in &events {
                ipam.apply(e);
            }
            ipam.flush(at);
            store.get_ptr(addr).unwrap().to_string()
        };
        let t = t0();
        let same_epoch = label_at(t + SimDuration::hours(1));
        assert_eq!(label_at(t), same_epoch, "no rotation within one epoch");
        let next_epoch = label_at(t + SimDuration::hours(25));
        assert_ne!(label_at(t), next_epoch, "salt must rotate across the period");
        assert!(next_epoch.starts_with("h-"), "still a hash label: {next_epoch}");
        assert!(!next_epoch.contains("brian"), "identity leaked: {next_epoch}");
    }

    #[test]
    fn rotating_hash_epoch_zero_matches_static_hash() {
        // Same base salt, epoch 0: the rotating policy is indistinguishable
        // from the static one, so enabling rotation is a drop-in change.
        let t = SimTime(0) + SimDuration::mins(30);
        assert_eq!(rotated_salt(99, SimDuration::hours(24).as_secs(), t), 99);
        let (mut server, mut ipam, store) = setup(PtrPolicy::HashedRotating {
            suffix: "example.edu".into(),
            salt: 7,
            period_secs: 0, // period 0 = never rotate
        });
        let id = ClientIdentity::standard(rdns_dhcp::MacAddr::from_seed(4), "laptop");
        let (addr, events) = acquire(&mut server, &id, 1, t0()).unwrap();
        for e in &events {
            ipam.apply(e);
        }
        ipam.flush(t0());
        let got = store.get_ptr(addr).unwrap().to_string();
        assert_eq!(got, format!("{}.example.edu.", hashed_label(id.mac, 7)));
    }

    #[test]
    fn rotating_hash_removes_on_release() {
        let (mut server, mut ipam, store) = setup(PtrPolicy::HashedRotating {
            suffix: "example.edu".into(),
            salt: 3,
            period_secs: SimDuration::hours(24).as_secs(),
        });
        let id = ClientIdentity::standard(rdns_dhcp::MacAddr::from_seed(1), "phone");
        let (addr, events) = acquire(&mut server, &id, 1, t0()).unwrap();
        for e in &events {
            ipam.apply(e);
        }
        ipam.flush(t0());
        assert!(store.get_ptr(addr).is_some());
        let leave = t0() + SimDuration::mins(17);
        let rel = id.release(2, addr, "10.0.0.1".parse().unwrap());
        let (_, events) = server.handle(&rel, leave);
        for e in &events {
            ipam.apply(e);
        }
        ipam.flush(leave);
        assert!(store.get_ptr(addr).is_none(), "presence dynamics stay visible");
    }

    #[test]
    fn fixed_form_is_static_through_churn() {
        let (mut server, mut ipam, store) = setup(PtrPolicy::FixedForm {
            suffix: "example.edu".into(),
        });
        let pool: Vec<Ipv4Addr> = (10..=20u8).map(|i| Ipv4Addr::new(10, 0, 0, i)).collect();
        ipam.preprovision(pool.clone(), t0());
        let before: Vec<_> = pool.iter().map(|a| store.get_ptr(*a)).collect();
        assert!(before.iter().all(|p| p.is_some()));
        assert_eq!(
            store.get_ptr(pool[0]).unwrap().to_string(),
            "host-10-0-0-10.dynamic.example.edu."
        );

        // Lease churn must not change any record.
        let id = ClientIdentity::standard(rdns_dhcp::MacAddr::from_seed(1), "Brian's iPhone");
        let (addr, events) = acquire(&mut server, &id, 1, t0()).unwrap();
        for e in &events {
            ipam.apply(e);
        }
        let rel = id.release(2, addr, "10.0.0.1".parse().unwrap());
        let (_, events) = server.handle(&rel, t0() + SimDuration::mins(9));
        for e in &events {
            ipam.apply(e);
        }
        ipam.flush(t0() + SimDuration::hours(1));
        let after: Vec<_> = pool.iter().map(|a| store.get_ptr(*a)).collect();
        assert_eq!(before, after);
        assert!(!store
            .get_ptr(addr)
            .unwrap()
            .to_string()
            .contains("brian"));
    }

    #[test]
    fn no_update_policy_never_touches_dns() {
        let (mut server, mut ipam, store) = setup(PtrPolicy::NoUpdate);
        let id = ClientIdentity::standard(rdns_dhcp::MacAddr::from_seed(1), "Brian's iPhone");
        let (addr, events) = acquire(&mut server, &id, 1, t0()).unwrap();
        for e in &events {
            ipam.apply(e);
        }
        ipam.flush(t0());
        assert!(store.get_ptr(addr).is_none());
        assert_eq!(ipam.stats().added, 0);
        assert_eq!(ipam.stats().suppressed, 1);
    }

    #[test]
    fn honors_client_no_update_wish_when_configured() {
        let store = ZoneStore::new();
        let mut config = IpamConfig::carry_over("example.org");
        config.honor_no_update_flag = true;
        let mut ipam = Ipam::new(config, store.clone());
        let mut server = DhcpServer::new(
            ServerConfig::new("10.0.0.1".parse().unwrap()),
            [Ipv4Addr::new(10, 0, 0, 10)],
        );
        let mut id = ClientIdentity::standard(rdns_dhcp::MacAddr::from_seed(1), "quiet");
        id.fqdn = Some(("quiet.example.org".into(), true));
        let (addr, events) = acquire(&mut server, &id, 1, t0()).unwrap();
        for e in &events {
            ipam.apply(e);
        }
        ipam.flush(t0());
        assert!(store.get_ptr(addr).is_none());
        assert_eq!(ipam.stats().suppressed, 1);
    }

    #[test]
    fn anonymous_client_yields_no_record_under_carry_over() {
        let (mut server, mut ipam, store) = setup(carry_over());
        let id = ClientIdentity::anonymous(rdns_dhcp::MacAddr::from_seed(2));
        let (addr, events) = acquire(&mut server, &id, 1, t0()).unwrap();
        for e in &events {
            ipam.apply(e);
        }
        ipam.flush(t0());
        assert!(store.get_ptr(addr).is_none(), "no Host Name → no PTR");
    }

    #[test]
    fn renewals_do_not_churn_dns() {
        let (mut server, mut ipam, _store) = setup(carry_over());
        let id = ClientIdentity::standard(rdns_dhcp::MacAddr::from_seed(1), "phone");
        let (addr, events) = acquire(&mut server, &id, 1, t0()).unwrap();
        for e in &events {
            ipam.apply(e);
        }
        ipam.flush(t0());
        let added_before = ipam.stats().added;
        let renew = id.renew(2, addr);
        let (_, events) = server.handle(&renew, t0() + SimDuration::mins(45));
        for e in &events {
            ipam.apply(e);
        }
        ipam.flush(t0() + SimDuration::mins(45));
        assert_eq!(ipam.stats().added, added_before);
    }

    #[test]
    fn forward_records_follow_the_lease_when_enabled() {
        let store = ZoneStore::new();
        let mut config = IpamConfig::carry_over("resnet.example.edu");
        config.maintain_forward = true;
        let mut ipam = Ipam::new(config, store.clone());
        let mut server = DhcpServer::new(
            ServerConfig::new("10.0.0.1".parse().unwrap()),
            [Ipv4Addr::new(10, 0, 0, 10)],
        );
        let id = ClientIdentity::standard(rdns_dhcp::MacAddr::from_seed(1), "Brian's iPhone");
        let (addr, events) = acquire(&mut server, &id, 1, t0()).unwrap();
        for e in &events {
            ipam.apply(e);
        }
        ipam.flush(t0());
        let fqdn: rdns_dns::DnsName = "brians-iphone.resnet.example.edu".parse().unwrap();
        assert_eq!(store.get_a(&fqdn), Some(addr), "A record must mirror the PTR");

        // Release: both directions disappear together.
        let leave = t0() + SimDuration::mins(20);
        let rel = id.release(2, addr, "10.0.0.1".parse().unwrap());
        let (_, events) = server.handle(&rel, leave);
        for e in &events {
            ipam.apply(e);
        }
        ipam.flush(leave);
        assert_eq!(store.get_a(&fqdn), None);
        assert!(store.get_ptr(addr).is_none());
    }

    #[test]
    fn forward_records_absent_by_default() {
        let (mut server, mut ipam, store) = setup(carry_over());
        let id = ClientIdentity::standard(rdns_dhcp::MacAddr::from_seed(1), "Brian's iPhone");
        let (_, events) = acquire(&mut server, &id, 1, t0()).unwrap();
        for e in &events {
            ipam.apply(e);
        }
        ipam.flush(t0());
        let fqdn: rdns_dns::DnsName = "brians-iphone.resnet.example.edu".parse().unwrap();
        assert_eq!(store.get_a(&fqdn), None);
    }

    #[test]
    fn audit_trail_records_changes() {
        let (mut server, mut ipam, _store) = setup(carry_over());
        ipam.enable_audit();
        let id = ClientIdentity::standard(rdns_dhcp::MacAddr::from_seed(1), "phone");
        let (addr, events) = acquire(&mut server, &id, 1, t0()).unwrap();
        for e in &events {
            ipam.apply(e);
        }
        ipam.flush(t0());
        let rel = id.release(2, addr, "10.0.0.1".parse().unwrap());
        let leave = t0() + SimDuration::mins(10);
        let (_, events) = server.handle(&rel, leave);
        for e in &events {
            ipam.apply(e);
        }
        ipam.flush(leave);
        let audit = ipam.audit();
        assert_eq!(audit.len(), 2);
        assert!(matches!(audit[0].change, DnsChange::AddPtr { .. }));
        assert!(matches!(audit[1].change, DnsChange::RemovePtr { .. }));
        assert_eq!(audit[1].at, leave);
        assert_eq!(audit[0].change.addr(), addr);
    }
}
