//! Hostname derivation: sanitizing client-provided names into DNS labels and
//! building hashed replacement labels.

use rdns_dhcp::MacAddr;

/// Sanitize a client-provided device name into a single DNS label the way
/// real DHCP/IPAM stacks do: lower-case, drop apostrophes (`Brian's iPhone`
/// → `brians-iphone`), map every other non-alphanumeric run to a single
/// hyphen, trim leading/trailing hyphens, cap at 63 octets.
///
/// Returns `None` when nothing survives (e.g. a name of only punctuation),
/// in which case the IPAM layer publishes no PTR for the lease.
pub fn sanitize_label(raw: &str) -> Option<String> {
    let mut out = String::with_capacity(raw.len());
    let mut pending_hyphen = false;
    for ch in raw.chars() {
        match ch {
            '\'' | '\u{2019}' => {} // drop apostrophes entirely
            c if c.is_ascii_alphanumeric() => {
                if pending_hyphen && !out.is_empty() {
                    out.push('-');
                }
                pending_hyphen = false;
                out.push(c.to_ascii_lowercase());
            }
            _ => pending_hyphen = true,
        }
    }
    let trimmed = out.trim_matches('-');
    if trimmed.is_empty() {
        return None;
    }
    let mut label = trimmed.to_string();
    label.truncate(63);
    let label = label.trim_end_matches('-').to_string();
    if label.is_empty() {
        None
    } else {
        Some(label)
    }
}

/// A stable, salted, non-reversible label for a client identity — the §8
/// "use some sort of hash" mitigation. FNV-1a over salt + MAC, rendered as
/// `h-<12 hex digits>`.
pub fn hashed_label(mac: MacAddr, salt: u64) -> String {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET;
    for b in salt.to_be_bytes().iter().chain(mac.0.iter()) {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    format!("h-{:012x}", h & 0xFFFF_FFFF_FFFF)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn brians_iphone() {
        assert_eq!(
            sanitize_label("Brian's iPhone").as_deref(),
            Some("brians-iphone")
        );
        assert_eq!(
            sanitize_label("Brian\u{2019}s Galaxy Note9").as_deref(),
            Some("brians-galaxy-note9")
        );
    }

    #[test]
    fn already_clean_names_pass_through() {
        assert_eq!(sanitize_label("brians-mbp").as_deref(), Some("brians-mbp"));
        assert_eq!(sanitize_label("DESKTOP-4J2K9").as_deref(), Some("desktop-4j2k9"));
    }

    #[test]
    fn punctuation_runs_collapse() {
        assert_eq!(sanitize_label("a .. b").as_deref(), Some("a-b"));
        assert_eq!(sanitize_label("--edge--").as_deref(), Some("edge"));
        assert_eq!(sanitize_label("__under__score__").as_deref(), Some("under-score"));
    }

    #[test]
    fn empty_and_punct_only_rejected() {
        assert_eq!(sanitize_label(""), None);
        assert_eq!(sanitize_label("'''"), None);
        assert_eq!(sanitize_label("!!! ???"), None);
    }

    #[test]
    fn long_names_truncated_to_valid_label() {
        let raw = "x".repeat(100);
        let label = sanitize_label(&raw).unwrap();
        assert_eq!(label.len(), 63);
        // Truncation must not leave a trailing hyphen.
        let tricky = format!("{}-{}", "a".repeat(62), "b".repeat(40));
        let label = sanitize_label(&tricky).unwrap();
        assert!(label.len() <= 63);
        assert!(!label.ends_with('-'));
    }

    #[test]
    fn hashed_label_is_stable_and_salted() {
        let mac = MacAddr::from_seed(42);
        let a = hashed_label(mac, 1);
        let b = hashed_label(mac, 1);
        let c = hashed_label(mac, 2);
        let d = hashed_label(MacAddr::from_seed(43), 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert!(a.starts_with("h-"));
        assert_eq!(a.len(), 2 + 12);
    }

    proptest! {
        #[test]
        fn prop_sanitized_is_valid_label(raw in ".{0,80}") {
            if let Some(label) = sanitize_label(&raw) {
                prop_assert!(!label.is_empty());
                prop_assert!(label.len() <= 63);
                prop_assert!(!label.starts_with('-'));
                prop_assert!(!label.ends_with('-'));
                prop_assert!(label.chars().all(|c| c.is_ascii_lowercase()
                    || c.is_ascii_digit()
                    || c == '-'));
            }
        }

        #[test]
        fn prop_sanitize_idempotent(raw in "[a-zA-Z0-9 '_.-]{0,60}") {
            if let Some(once) = sanitize_label(&raw) {
                let twice = sanitize_label(&once);
                prop_assert_eq!(twice.as_deref(), Some(once.as_str()));
            }
        }

        #[test]
        fn prop_hashed_label_valid(seed in any::<u64>(), salt in any::<u64>()) {
            let label = hashed_label(MacAddr::from_seed(seed), salt);
            prop_assert!(label.len() <= 63);
            prop_assert!(label.chars().all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit()
                || c == '-'));
        }
    }
}
