//! # rdns-ipam
//!
//! The IP Address Management (IPAM) layer: the glue between DHCP and DNS
//! whose default behaviour the paper identifies as the root of the privacy
//! leak (§2.1, §8). Commercial IPAM products (Infoblox, Bluecat, EfficientIP,
//! Men & Mice, SolarWinds) make it easy to update the global DNS on every
//! lease event; this crate models that coupling with an explicit, auditable
//! policy:
//!
//! * [`PtrPolicy::CarryOverHostName`] — the leaky default: the client's Host
//!   Name option becomes the PTR target (`brians-iphone.resnet.example.edu`),
//! * [`PtrPolicy::Hashed`] — the mitigation sketched in §8: a salted hash of
//!   the client identity replaces the name; presence remains visible but the
//!   identity does not,
//! * [`PtrPolicy::HashedRotating`] — the same hash with its salt rotated on
//!   a fixed simulated-time period, unlinking hash tokens across rotation
//!   boundaries (the variant `rdns-lab`'s mitigation grid exercises),
//! * [`PtrPolicy::FixedForm`] — static, IP-derived names for dynamic pools
//!   (`host-10-1-2-3.dynamic.example.edu`), as the 83 validated campus
//!   prefixes in §4.1: DHCP-dynamic but rDNS-static,
//! * [`PtrPolicy::NoUpdate`] — no global-DNS updates at all.
//!
//! [`Ipam::apply`] consumes [`rdns_dhcp::LeaseEvent`]s and schedules
//! [`DnsChange`]s; [`Ipam::flush`] commits due changes to the shared
//! [`rdns_dns::ZoneStore`]. Every committed change lands in an audit trail.

//! ## Example: the leak, end to end
//!
//! ```
//! use rdns_dhcp::{acquire, ClientIdentity, DhcpServer, MacAddr, ServerConfig};
//! use rdns_dns::ZoneStore;
//! use rdns_ipam::{Ipam, IpamConfig};
//! use rdns_model::{Date, SimTime};
//! use std::net::Ipv4Addr;
//!
//! let store = ZoneStore::new();
//! let mut dhcp = DhcpServer::new(
//!     ServerConfig::new(Ipv4Addr::new(10, 0, 0, 1)),
//!     (2..250u8).map(|i| Ipv4Addr::new(10, 0, 0, i)),
//! );
//! let mut ipam = Ipam::new(IpamConfig::carry_over("resnet.example.edu"), store.clone());
//!
//! // Brian's phone joins the network...
//! let phone = ClientIdentity::standard(MacAddr::from_seed(1), "Brian's iPhone");
//! let now = SimTime::from_date(Date::from_ymd(2021, 11, 1));
//! let (addr, events) = acquire(&mut dhcp, &phone, 1, now).unwrap();
//! for e in &events { ipam.apply(e); }
//! ipam.flush(now);
//!
//! // ...and anyone on the Internet can now learn who owns it:
//! assert_eq!(
//!     store.get_ptr(addr).unwrap().to_string(),
//!     "brians-iphone.resnet.example.edu."
//! );
//! ```

mod naming;
mod policy;

pub use naming::{hashed_label, sanitize_label};
pub use policy::{rotated_salt, DnsChange, Ipam, IpamConfig, IpamStats, PtrPolicy};
