//! The experiment engine: replay one seeded world through every policy
//! cell and score tracker performance against ground truth.
//!
//! Per cell: build the base world spec, rewrite it under the cell's
//! [`MitigationPolicy`], run the full simulation window taking one
//! authoritative snapshot per day at 14:00 (the same instant
//! `truth_identities` is captured), apply the TTL cache overlay, extract
//! [`PresenceTrack`]s, run the cross-epoch tracker, and compute the
//! operator-utility components. Cells are independent seeded replays, so
//! they fan out across the rayon pool; the collected matrix is in grid
//! order regardless of thread count.
//!
//! [`PresenceTrack`]: rdns_data::features::PresenceTrack

use crate::grid::{default_grid, rotation_days};
use crate::observe::{overlay_ttl, ObservedDay};
use crate::report::{MatrixCell, MatrixReport};
use rayon::prelude::*;
use rdns_core::tracker::{link_epochs, TrackerConfig};
use rdns_data::features::TrackExtractor;
use rdns_data::{DailySnapshot, Snapshotter};
use rdns_model::{Date, SimTime};
use rdns_netsim::spec::presets;
use rdns_netsim::{MitigationPolicy, NetworkSpec, World, WorldConfig};
use rdns_telemetry::{Determinism, Registry};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Snapshot hour (14:00 local), matching the analysis harness.
pub const SNAPSHOT_HOUR: u8 = 14;

/// Lab run parameters.
#[derive(Debug, Clone)]
pub struct LabConfig {
    /// World seed; every cell replays the same seeded world.
    pub seed: u64,
    /// First window day.
    pub start: Date,
    /// Window length in days (≤ 64).
    pub days: u16,
    /// First day of the tracker's epoch B.
    pub split_day: u16,
    /// Population scale of the base networks.
    pub scale: f64,
    /// World shard count (0 = one per network). Never affects results.
    pub world_shards: usize,
    /// The policy grid to sweep.
    pub grid: Vec<MitigationPolicy>,
}

impl LabConfig {
    /// The standard lab: 16 days from Mon 2021-11-01, epoch split at day 8
    /// (one hash rotation boundary in-window), small two-network world,
    /// full 16-cell grid.
    pub fn standard(seed: u64) -> LabConfig {
        LabConfig {
            seed,
            start: Date::from_ymd(2021, 11, 1),
            days: 16,
            split_day: 8,
            scale: 0.1,
            world_shards: 0,
            grid: default_grid(),
        }
    }
}

/// The lab's base world: a campus (Academic-A) plus a residential ISP pool
/// (ISP-A), the two environments the paper's tracking discussion cares
/// about. RFC 7844 anonymity devices are held at zero so label churn is
/// attributable to the policy axes alone; the planted seed persons stay.
pub fn base_specs(scale: f64) -> Vec<NetworkSpec> {
    let mut specs = vec![presets::academic_a(scale), presets::isp_a(scale)];
    for spec in &mut specs {
        spec.anonymity_fraction = 0.0;
    }
    specs
}

fn ratio(num: u64, den: u64, when_empty: f64) -> f64 {
    if den == 0 {
        when_empty
    } else {
        num as f64 / den as f64
    }
}

/// Ground truth for one day: `address (u32) → device id`.
type TruthDay = BTreeMap<u32, u64>;

/// Operator-utility components for one cell.
fn utility_components(
    raw: &[DailySnapshot],
    observed: &[ObservedDay],
    truth: &[TruthDay],
) -> (f64, f64, f64, u64) {
    // Coverage: device-days where the device's address had an observable
    // PTR, over all device-days.
    let mut truth_days = 0u64;
    let mut covered = 0u64;
    for (t, obs) in truth.iter().zip(observed) {
        truth_days += t.len() as u64;
        covered += t
            .keys()
            .filter(|a| obs.contains_key(&Ipv4Addr::from(**a)))
            .count() as u64;
    }
    // Freshness: observed records that match the authoritative zone of the
    // same day (TTL staleness is exactly what this loses).
    let mut observed_total = 0u64;
    let mut fresh = 0u64;
    for (r, obs) in raw.iter().zip(observed) {
        observed_total += obs.len() as u64;
        fresh += obs
            .iter()
            .filter(|(a, h)| r.records.get(a) == Some(h))
            .count() as u64;
    }
    // Specificity: devices an operator can single out because some PTR name
    // maps to that device alone over the window. Verbatim and hashed names
    // are per-device (an operator holding the salt keeps their mapping);
    // fixed-form names are shared by whoever holds the address.
    let mut devices: BTreeSet<u64> = BTreeSet::new();
    let mut carriers: BTreeMap<&str, BTreeSet<u64>> = BTreeMap::new();
    for (t, r) in truth.iter().zip(raw) {
        for (addr, dev) in t {
            devices.insert(*dev);
            if let Some(host) = r.records.get(&Ipv4Addr::from(*addr)) {
                carriers.entry(host.as_str()).or_default().insert(*dev);
            }
        }
    }
    let mut identified: BTreeSet<u64> = BTreeSet::new();
    for devs in carriers.values() {
        if devs.len() == 1 {
            identified.extend(devs);
        }
    }
    let coverage = ratio(covered, truth_days, 0.0);
    let freshness = ratio(fresh, observed_total, 1.0);
    let specificity = ratio(identified.len() as u64, devices.len() as u64, 0.0);
    (coverage, freshness, specificity, devices.len() as u64)
}

/// Run one grid cell: returns its matrix row plus the ground-truth device
/// count (identical across cells of the same config).
pub fn run_cell(cfg: &LabConfig, policy: &MitigationPolicy) -> (MatrixCell, u64) {
    let mut networks = base_specs(cfg.scale);
    for spec in &mut networks {
        policy.apply_to(spec);
    }
    let mut world = World::new(WorldConfig {
        seed: cfg.seed,
        shards: cfg.world_shards,
        start: cfg.start,
        networks,
    });
    let snapper = Snapshotter::new(world.store().clone());
    let mut raw: Vec<DailySnapshot> = Vec::with_capacity(cfg.days as usize);
    let mut truth: Vec<TruthDay> = Vec::with_capacity(cfg.days as usize);
    for d in 0..cfg.days {
        let date = cfg.start.plus_days(d as i64);
        world.step_until(SimTime::from_date_hms(date, SNAPSHOT_HOUR, 0, 0));
        raw.push(snapper.take(date));
        truth.push(
            world
                .truth_identities()
                .into_iter()
                .map(|(addr, id)| (u32::from(addr), id))
                .collect(),
        );
    }

    let observed = overlay_ttl(&raw, policy.ptr_ttl);
    let mut extractor = TrackExtractor::new();
    for (i, day) in observed.iter().enumerate() {
        extractor.push_day(cfg.start.plus_days(i as i64), day);
    }
    let set = extractor.finish();
    let tracker = link_epochs(&set, &truth, &TrackerConfig::at_split(cfg.split_day));
    let (coverage, freshness, specificity, devices) =
        utility_components(&raw, &observed, &truth);

    let cell = MatrixCell {
        naming: policy.naming.label().to_string(),
        rotation_days: rotation_days(policy),
        ptr_ttl_secs: policy.ptr_ttl,
        lease_secs: policy.lease_time.as_secs(),
        tracks: set.tracks.len() as u64,
        fragments_a: tracker.fragments_a as u64,
        fragments_b: tracker.fragments_b as u64,
        links: tracker.links as u64,
        correct_links: tracker.correct_links as u64,
        linkable_devices: tracker.linkable_devices as u64,
        reidentified_devices: tracker.reidentified_devices as u64,
        precision: tracker.precision(),
        recall: tracker.recall(),
        coverage,
        freshness,
        specificity,
        utility: coverage * freshness * specificity,
    };
    (cell, devices)
}

/// Sweep the whole grid and assemble the matrix. Cells run across the
/// rayon pool; the report is in grid order and byte-identical at any
/// `RAYON_NUM_THREADS` and any `world_shards`.
pub fn run(cfg: &LabConfig, registry: &Registry) -> MatrixReport {
    let cells_total = registry.counter(
        "rdns_lab_cells_total",
        "Policy-grid cells evaluated.",
        Determinism::SeedStable,
    );
    let tracks_total = registry.counter(
        "rdns_lab_tracks_total",
        "Presence tracks extracted across all cells.",
        Determinism::SeedStable,
    );
    let links_total = registry.counter(
        "rdns_lab_links_total",
        "Cross-epoch links asserted across all cells.",
        Determinism::SeedStable,
    );
    let reidentified_total = registry.counter(
        "rdns_lab_reidentified_total",
        "Device re-identifications across all cells.",
        Determinism::SeedStable,
    );
    let cell_wall = registry.histogram(
        "rdns_lab_cell_wall_us",
        "Wall time per grid cell (µs).",
        Determinism::WallClock,
    );

    let results: Vec<(MatrixCell, u64)> = cfg
        .grid
        .par_iter()
        .map(|policy| {
            let _span = cell_wall.start_span();
            run_cell(cfg, policy)
        })
        .collect();

    let devices = results.iter().map(|(_, d)| *d).max().unwrap_or(0);
    let cells: Vec<MatrixCell> = results.into_iter().map(|(c, _)| c).collect();
    cells_total.add(cells.len() as u64);
    tracks_total.add(cells.iter().map(|c| c.tracks).sum());
    links_total.add(cells.iter().map(|c| c.links).sum());
    reidentified_total.add(cells.iter().map(|c| c.reidentified_devices).sum());

    MatrixReport {
        schema_version: 1,
        bench: "matrix".to_string(),
        seed: cfg.seed,
        start: cfg.start.to_string(),
        days: cfg.days,
        split_day: cfg.split_day,
        devices,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdns_netsim::NamingPolicy;
    use rdns_model::SimDuration;

    fn tiny(grid: Vec<MitigationPolicy>) -> LabConfig {
        LabConfig {
            seed: 11,
            start: Date::from_ymd(2021, 11, 1),
            days: 8,
            split_day: 4,
            scale: 0.05,
            world_shards: 0,
            grid,
        }
    }

    fn cell(naming: NamingPolicy) -> MitigationPolicy {
        MitigationPolicy {
            naming,
            ptr_ttl: 300,
            lease_time: SimDuration::hours(1),
        }
    }

    #[test]
    fn verbatim_tracks_and_none_does_not() {
        let cfg = tiny(vec![
            cell(NamingPolicy::Verbatim),
            cell(NamingPolicy::None),
        ]);
        let report = run(&cfg, &Registry::new());
        assert_eq!(report.cells.len(), 2);
        let verbatim = &report.cells[0];
        let none = &report.cells[1];
        assert!(verbatim.recall > none.recall, "{report:?}");
        // No-update pools publish nothing; what remains observable is
        // static infrastructure, which the tracker's static filter drops.
        assert_eq!(none.fragments_a + none.fragments_b, 0, "{none:?}");
        assert_eq!(none.links, 0);
        assert_eq!(none.recall, 0.0);
        assert_eq!(none.utility, 0.0);
        assert!(verbatim.utility > 0.0);
        assert!(report.devices > 0);
    }

    #[test]
    fn world_shards_never_change_the_matrix() {
        let grid = vec![cell(NamingPolicy::Hashed { period_days: 4 })];
        let mut one = tiny(grid.clone());
        one.world_shards = 1;
        let mut four = tiny(grid);
        four.world_shards = 4;
        let a = run(&one, &Registry::new());
        let b = run(&four, &Registry::new());
        assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
    }

    #[test]
    fn telemetry_accumulates() {
        let reg = Registry::new();
        let cfg = tiny(vec![cell(NamingPolicy::Verbatim)]);
        let report = run(&cfg, &reg);
        let prom = reg.render_prometheus();
        assert!(prom.contains("rdns_lab_cells_total 1"));
        assert!(prom.contains(&format!(
            "rdns_lab_tracks_total {}",
            report.cells[0].tracks
        )));
        assert!(prom.contains("# DETERMINISM rdns_lab_cell_wall_us wall_clock"));
    }
}
