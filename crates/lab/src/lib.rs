//! # rdns-lab
//!
//! The tracking-resistance lab: §8's mitigation advice, measured instead of
//! asserted.
//!
//! The paper closes by recommending operators hash or drop dynamic PTR
//! content. This crate asks the follow-up question: *which policy actually
//! stops a longitudinal tracker, and what does it cost the operator?* It
//! replays one seeded simulated world through a grid of IPAM/naming
//! policies ([`grid`]) — verbatim carry-over, salted hashes with a rotating
//! salt, fixed-form names, and no updates at all, crossed with PTR-TTL and
//! DHCP-lease-time variants — and runs a *content-blind* sequence tracker
//! ([`rdns_core::tracker`]) over each cell's observed snapshot window. The
//! tracker never reads name content: it re-identifies devices across an
//! epoch boundary purely from PTR churn patterns (opaque-token equality,
//! appearance/disappearance weekday profile, lease-renewal cadence, `/24`
//! adjacency).
//!
//! Each cell is scored twice:
//!
//! * **privacy** — tracker precision/recall against simulator ground truth
//!   (`address → device` per day, captured at the same instants as the
//!   snapshots);
//! * **operator utility** — coverage × freshness × specificity: what
//!   fraction of device-days remain observable, current and attributable.
//!
//! The result is a privacy–utility matrix ([`MatrixReport`]), committed as
//! `BENCH_matrix.json` and rendered as markdown. `MITIGATIONS.md` at the
//! repository root documents how to read it.
//!
//! ## Determinism contract
//!
//! The matrix is a pure function of `(seed, window, grid)`: byte-identical
//! across runs, `RAYON_NUM_THREADS` values and world shard counts. Tracker
//! scores are integers; every `f64` in the report is a ratio of integers;
//! no wall-clock value enters the artifact (per-cell timings go to the
//! `rdns_lab_cell_wall_us` telemetry histogram instead, which is classed
//! `WallClock` and excluded from deterministic exports).
//!
//! ## Example
//!
//! ```
//! use rdns_lab::{engine, LabConfig};
//! use rdns_netsim::NamingPolicy;
//! use rdns_telemetry::Registry;
//!
//! let mut cfg = LabConfig::standard(7);
//! cfg.days = 6; // keep the doctest quick
//! cfg.split_day = 3;
//! cfg.scale = 0.05;
//! cfg.grid.truncate(1); // verbatim, live TTL, 1-hour leases
//! let report = engine::run(&cfg, &Registry::new());
//! assert_eq!(report.cells.len(), 1);
//! assert_eq!(report.cells[0].naming, "verbatim");
//! assert!(report.cells[0].tracks > 0);
//! ```

pub mod engine;
pub mod grid;
pub mod observe;
pub mod report;

pub use engine::{base_specs, run_cell, LabConfig};
pub use grid::{default_grid, rotation_days, HASH_ROTATION_DAYS};
pub use observe::overlay_ttl;
pub use report::{MatrixCell, MatrixReport};
