//! The mitigation-policy grid: which cells the lab sweeps.

use rdns_model::SimDuration;
use rdns_netsim::{MitigationPolicy, NamingPolicy};

/// Salt-rotation period used for the `hashed` naming cells. Eight days
/// guarantees exactly one rotation boundary inside the standard 16-day
/// window, so hash tokens never survive the epoch split.
pub const HASH_ROTATION_DAYS: u16 = 8;

/// The default 16-cell grid: 4 naming policies × 2 PTR TTLs × 2 lease
/// times, in a fixed deterministic order (naming-major).
///
/// * naming: `verbatim`, `hashed` (rotating salt), `fixed-form`, `none`
/// * PTR TTL: 300 s (live view) vs 86 400 s (a day of resolver staleness)
/// * lease: 1 h (campus-style churn) vs 12 h (access-network-style)
pub fn default_grid() -> Vec<MitigationPolicy> {
    let namings = [
        NamingPolicy::Verbatim,
        NamingPolicy::Hashed {
            period_days: HASH_ROTATION_DAYS,
        },
        NamingPolicy::FixedForm,
        NamingPolicy::None,
    ];
    let ttls = [300u32, 86_400];
    let leases = [SimDuration::hours(1), SimDuration::hours(12)];
    let mut grid = Vec::with_capacity(namings.len() * ttls.len() * leases.len());
    for naming in namings {
        for ptr_ttl in ttls {
            for lease_time in leases {
                grid.push(MitigationPolicy {
                    naming,
                    ptr_ttl,
                    lease_time,
                });
            }
        }
    }
    grid
}

/// The rotation period (days) a policy's naming axis carries, for reports.
pub fn rotation_days(policy: &MitigationPolicy) -> u16 {
    match policy.naming {
        NamingPolicy::Hashed { period_days } => period_days,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_16_cells_naming_major() {
        let grid = default_grid();
        assert_eq!(grid.len(), 16);
        let labels: Vec<&str> = grid.iter().map(|p| p.naming.label()).collect();
        assert_eq!(&labels[0..4], &["verbatim"; 4]);
        assert_eq!(&labels[4..8], &["hashed"; 4]);
        assert_eq!(&labels[8..12], &["fixed-form"; 4]);
        assert_eq!(&labels[12..16], &["none"; 4]);
        // Every (naming, ttl, lease) combination appears exactly once.
        let mut seen = std::collections::BTreeSet::new();
        for p in &grid {
            assert!(seen.insert((
                p.naming.label(),
                rotation_days(p),
                p.ptr_ttl,
                p.lease_time.as_secs()
            )));
        }
    }

    #[test]
    fn hashed_cells_rotate_inside_the_window() {
        for p in default_grid() {
            if p.naming.label() == "hashed" {
                assert_eq!(rotation_days(&p), HASH_ROTATION_DAYS);
            }
        }
    }
}
