//! The privacy–utility matrix artifact (`BENCH_matrix.json`).
//!
//! The report is the lab's determinism contract: a pure function of
//! `(seed, window, grid)` with **no wall-clock fields**, so the serialized
//! bytes are identical across runs, rayon thread counts and world shard
//! counts. All scores are ratios of integers, so even the `f64` columns
//! are bit-exact.

use serde::{Deserialize, Serialize};

/// One grid cell's outcome: the policy knobs, the tracker's performance
/// against ground truth, and the operator-utility components.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixCell {
    /// Naming policy label: `verbatim`, `hashed`, `fixed-form` or `none`.
    pub naming: String,
    /// Hash-salt rotation period in days (0 when not hashing).
    pub rotation_days: u16,
    /// PTR TTL in seconds.
    pub ptr_ttl_secs: u32,
    /// DHCP lease time in seconds.
    pub lease_secs: u64,
    /// Presence tracks extracted from the observed window.
    pub tracks: u64,
    /// Epoch-A fragments after the static filter.
    pub fragments_a: u64,
    /// Epoch-B fragments after the static filter.
    pub fragments_b: u64,
    /// Cross-epoch links the tracker asserted.
    pub links: u64,
    /// Links that connected the same ground-truth device.
    pub correct_links: u64,
    /// Devices observable in both epochs (recall denominator).
    pub linkable_devices: u64,
    /// Devices correctly re-identified.
    pub reidentified_devices: u64,
    /// `correct_links / links` (1.0 when no links asserted).
    pub precision: f64,
    /// `reidentified_devices / linkable_devices` (0.0 when none linkable).
    pub recall: f64,
    /// Operator utility: fraction of device-days with an observable PTR.
    pub coverage: f64,
    /// Operator utility: fraction of observed records that are current.
    pub freshness: f64,
    /// Operator utility: fraction of devices a PTR name can single out.
    pub specificity: f64,
    /// `coverage × freshness × specificity`.
    pub utility: f64,
}

/// The full matrix: window parameters plus one [`MatrixCell`] per policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixReport {
    /// Schema version; bump on any field change.
    pub schema_version: u32,
    /// Artifact discriminator, always `"matrix"`.
    pub bench: String,
    /// World seed.
    pub seed: u64,
    /// First window day, `YYYY-MM-DD`.
    pub start: String,
    /// Window length in days.
    pub days: u16,
    /// First day of epoch B.
    pub split_day: u16,
    /// Distinct ground-truth devices observed in the window.
    pub devices: u64,
    /// One row per grid cell, grid order.
    pub cells: Vec<MatrixCell>,
}

impl MatrixReport {
    /// Serialize for `BENCH_matrix.json` (single line + trailing newline;
    /// byte-stable).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self).map(|mut s| {
            s.push('\n');
            s
        })
    }

    /// Parse `BENCH_matrix.json`; errors double as schema violations.
    pub fn from_json(text: &str) -> serde_json::Result<MatrixReport> {
        serde_json::from_str(text.trim_end())
    }

    /// Cells with the given naming label, grid order.
    pub fn cells_named<'a>(&'a self, naming: &'a str) -> impl Iterator<Item = &'a MatrixCell> {
        self.cells.iter().filter(move |c| c.naming == naming)
    }

    /// Render the privacy–utility matrix as a GitHub-flavoured markdown
    /// table (what `MITIGATIONS.md` documents how to read).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Mitigation matrix — seed {}, {} days from {}, epoch split at day {}, {} devices\n\n",
            self.seed, self.days, self.start, self.split_day, self.devices
        ));
        out.push_str(
            "| naming | ttl (s) | lease (h) | precision | recall | coverage | freshness | specificity | utility |\n",
        );
        out.push_str(
            "|--------|---------|-----------|-----------|--------|----------|-----------|-------------|--------|\n",
        );
        for c in &self.cells {
            out.push_str(&format!(
                "| {} | {} | {} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} |\n",
                c.naming,
                c.ptr_ttl_secs,
                c.lease_secs / 3600,
                c.precision,
                c.recall,
                c.coverage,
                c.freshness,
                c.specificity,
                c.utility,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MatrixReport {
        MatrixReport {
            schema_version: 1,
            bench: "matrix".into(),
            seed: 7,
            start: "2021-11-01".into(),
            days: 16,
            split_day: 8,
            devices: 120,
            cells: vec![MatrixCell {
                naming: "verbatim".into(),
                rotation_days: 0,
                ptr_ttl_secs: 300,
                lease_secs: 3600,
                tracks: 400,
                fragments_a: 150,
                fragments_b: 140,
                links: 100,
                correct_links: 90,
                linkable_devices: 100,
                reidentified_devices: 85,
                precision: 0.9,
                recall: 0.85,
                coverage: 0.8,
                freshness: 1.0,
                specificity: 0.95,
                utility: 0.76,
            }],
        }
    }

    #[test]
    fn json_round_trip() {
        let r = sample();
        let text = r.to_json().unwrap();
        assert!(text.ends_with('\n'));
        let back = MatrixReport::from_json(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn markdown_has_a_row_per_cell() {
        let md = sample().render_markdown();
        assert!(md.contains("| verbatim | 300 | 1 |"));
        assert!(md.contains("| naming |"));
        assert_eq!(md.matches("| verbatim").count(), 1);
    }

    #[test]
    fn missing_field_is_a_schema_violation() {
        let text = sample().to_json().unwrap().replace("\"recall\"", "\"recal\"");
        assert!(MatrixReport::from_json(&text).is_err());
    }
}
