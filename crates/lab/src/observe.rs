//! Observer-side resolver-cache model: what a tracker actually sees under a
//! given PTR TTL.
//!
//! Snapshots out of the simulator are the *authoritative* zone content. A
//! real longitudinal observer reads through resolver caches, so a record
//! with TTL `t` that changed underneath keeps serving its old value for up
//! to `t` seconds. The lab models this at day granularity: with
//! `ttl = 86 400 s` a record observed yesterday is still served today even
//! if the zone dropped it, which *blurs* churn — long TTLs are a mitigation
//! against sequence tracking precisely because they hide the
//! appearance/disappearance edges the tracker feeds on, at the price of
//! staleness (scored as `freshness` in the utility column).

use rdns_data::DailySnapshot;
use rdns_model::Hostname;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// One observed day: `address → hostname` as seen through the cache.
pub type ObservedDay = BTreeMap<Ipv4Addr, Hostname>;

/// Apply a TTL overlay to a window of authoritative snapshots.
///
/// `observed[d]` is day `d`'s zone content plus every record from the
/// previous `ttl_secs / 86 400` days that day `d` did not overwrite —
/// most-recent value wins among stale days, and the authoritative day
/// always wins over any cached value. Sub-day TTLs return the exact
/// authoritative view.
///
/// This is a lab hot loop (every grid cell runs it over the full window):
/// it is written panic-free — no indexing, no unwraps, no unchecked
/// subtraction — and `lint.toml` pins it that way.
pub fn overlay_ttl(days: &[DailySnapshot], ttl_secs: u32) -> Vec<ObservedDay> {
    let ttl_days = (ttl_secs / 86_400) as usize;
    let mut out = Vec::with_capacity(days.len());
    for (d, day) in days.iter().enumerate() {
        let mut merged = day.records.clone();
        if ttl_days > 0 {
            let lo = d.saturating_sub(ttl_days);
            for prior in days.get(lo..d).into_iter().flatten().rev() {
                for (addr, host) in &prior.records {
                    merged.entry(*addr).or_insert_with(|| host.clone());
                }
            }
        }
        out.push(merged);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdns_model::Date;

    fn day(offset: i64, records: &[(&str, &str)]) -> DailySnapshot {
        DailySnapshot {
            date: Date::from_ymd(2021, 11, 1).plus_days(offset),
            records: records
                .iter()
                .map(|(a, h)| (a.parse().unwrap(), Hostname::new(h)))
                .collect(),
        }
    }

    #[test]
    fn short_ttl_is_the_exact_view() {
        let days = vec![day(0, &[("10.0.1.5", "a.edu")]), day(1, &[])];
        let observed = overlay_ttl(&days, 300);
        assert_eq!(observed[0], days[0].records);
        assert!(observed[1].is_empty(), "no cache at sub-day TTL");
    }

    #[test]
    fn day_ttl_keeps_removed_records_alive_one_day() {
        let days = vec![
            day(0, &[("10.0.1.5", "a.edu")]),
            day(1, &[]),
            day(2, &[]),
        ];
        let observed = overlay_ttl(&days, 86_400);
        assert_eq!(observed[1].len(), 1, "record served stale on day 1");
        assert!(observed[2].is_empty(), "expired from the cache by day 2");
    }

    #[test]
    fn authoritative_day_wins_over_cache() {
        let days = vec![
            day(0, &[("10.0.1.5", "old.edu")]),
            day(1, &[("10.0.1.5", "new.edu")]),
        ];
        let observed = overlay_ttl(&days, 86_400);
        assert_eq!(
            observed[1].get(&"10.0.1.5".parse().unwrap()),
            Some(&Hostname::new("new.edu"))
        );
    }

    #[test]
    fn most_recent_stale_day_wins() {
        let days = vec![
            day(0, &[("10.0.1.5", "oldest.edu")]),
            day(1, &[("10.0.1.5", "newer.edu")]),
            day(2, &[]),
        ];
        let observed = overlay_ttl(&days, 2 * 86_400);
        assert_eq!(
            observed[2].get(&"10.0.1.5".parse().unwrap()),
            Some(&Hostname::new("newer.edu"))
        );
    }
}
