//! Parallel-engine guarantees: the columnar path must reproduce the row
//! path byte for byte, and the rayon fan-out must be deterministic at any
//! thread count.

use rdns_core::dynamicity::{identify_dynamic, identify_dynamic_par, DynamicityParams};
use rdns_core::experiments::harness::{collect_series, run_supplemental, FaultMix};
use rdns_core::experiments::Scale;
use rdns_core::timing::{build_groups, par_build_groups};
use rdns_data::{Cadence, ColumnarSeries};
use rdns_model::{Date, Hostname};
use rdns_netsim::spec::presets;
use rdns_netsim::{World, WorldConfig};
use std::collections::HashSet;
use std::net::Ipv4Addr;

fn campus_series() -> rdns_data::SnapshotSeries {
    let scale = Scale::tiny();
    let from = Date::from_ymd(2021, 1, 1);
    let to = from.plus_days(13);
    let mut world = World::new(WorldConfig {
        seed: scale.seed,
        shards: 0,
        start: from,
        networks: vec![presets::academic_a(scale.focus_scale)],
    });
    collect_series(&mut world, from, to, Cadence::Daily)
}

#[test]
fn columnar_view_equals_row_view() {
    let series = campus_series();
    let columnar = ColumnarSeries::from_series(&series);

    // Round trip is lossless.
    assert_eq!(columnar.to_series(), series);

    // The counts matrix — the §4.1 input — is identical.
    assert_eq!(columnar.counts_matrix(), series.counts_matrix());

    // Observations are the same set, in deterministic ascending order.
    let mut expected: HashSet<(Ipv4Addr, Hostname)> = HashSet::new();
    for snap in &series.snapshots {
        for (addr, host) in &snap.records {
            expected.insert((*addr, host.clone()));
        }
    }
    let got = columnar.observations();
    assert!(got.windows(2).all(|w| w[0] < w[1]), "sorted and deduped");
    assert_eq!(got.into_iter().collect::<HashSet<_>>(), expected);
}

#[test]
fn dynamicity_par_equals_sequential() {
    let series = campus_series();
    let matrix = series.counts_matrix();
    let params = DynamicityParams {
        min_daily_addrs: Scale::tiny().min_daily_addrs,
        ..DynamicityParams::default()
    };
    assert_eq!(
        identify_dynamic_par(&matrix, &params),
        identify_dynamic(&matrix, &params)
    );
}

#[test]
fn group_building_par_equals_sequential() {
    let scale = Scale::tiny();
    let from = Date::from_ymd(2021, 11, 1);
    let mut world = World::new(WorldConfig {
        seed: scale.seed,
        shards: 0,
        start: from,
        networks: vec![presets::academic_a(scale.focus_scale)],
    });
    let run = run_supplemental(
        &mut world,
        &["Academic-A"],
        from,
        2,
        FaultMix::realistic(),
        scale.seed,
    );
    let seq = build_groups(&run.log);
    let par = par_build_groups(&run.log);
    assert!(!seq.is_empty(), "campus must produce activity groups");
    assert_eq!(seq, par);
}

/// The fan-out reductions must not depend on the worker count: pin the pool
/// to one thread, then to several, and require identical output. The rayon
/// layer re-reads `RAYON_NUM_THREADS` on every call, so flipping the
/// variable mid-process exercises genuinely different shard schedules.
#[test]
fn results_identical_at_any_thread_count() {
    let series = campus_series();
    let columnar = ColumnarSeries::from_series(&series);
    let params = DynamicityParams {
        min_daily_addrs: Scale::tiny().min_daily_addrs,
        ..DynamicityParams::default()
    };

    let scale = Scale::tiny();
    let from = Date::from_ymd(2021, 11, 1);
    let mut world = World::new(WorldConfig {
        seed: scale.seed,
        shards: 0,
        start: from,
        networks: vec![presets::academic_a(scale.focus_scale)],
    });
    let run = run_supplemental(
        &mut world,
        &["Academic-A"],
        from,
        2,
        FaultMix::realistic(),
        scale.seed,
    );

    let run_all = || {
        (
            columnar.counts_matrix(),
            columnar.observations(),
            identify_dynamic_par(&columnar.counts_matrix(), &params),
            par_build_groups(&run.log),
        )
    };

    std::env::set_var("RAYON_NUM_THREADS", "1");
    let single = run_all();
    std::env::set_var("RAYON_NUM_THREADS", "7");
    let many = run_all();
    std::env::remove_var("RAYON_NUM_THREADS");
    let default = run_all();

    assert_eq!(single, many);
    assert_eq!(single, default);
}
