//! Given-name matching (§5.1).
//!
//! The paper selects the 50 most popular US given names for newborns
//! 2000–2020 (SSA data) and matches PTR records against them. The list here
//! is the one visible in Fig. 2 (48 names) completed with `ava` and `mia`
//! from the same SSA ranking. Note that `brian` — the case-study name — is
//! deliberately *not* a matcher name, exactly as in the paper.

use rdns_model::Hostname;

/// The top-50 matcher list, in Fig. 2 order.
pub const MATCH_GIVEN_NAMES: [&str; 50] = [
    "jacob", "michael", "emma", "william", "ethan", "olivia", "matthew", "emily", "daniel",
    "noah", "joshua", "isabella", "alexander", "joseph", "james", "andrew", "sophia",
    "christopher", "anthony", "david", "madison", "logan", "benjamin", "ryan", "abigail",
    "john", "elijah", "mason", "samuel", "dylan", "nicholas", "jayden", "liam", "elizabeth",
    "christian", "gabriel", "tyler", "jonathan", "nathan", "jordan", "hannah", "aiden",
    "jackson", "alexis", "caleb", "lucas", "angel", "brandon", "ava", "mia",
];

/// Names from the matcher list appearing as substrings of the record, with
/// shadowed sub-matches removed: a record matching `christopher` should not
/// additionally match `christian`-style submatches of other names it only
/// contains *because* of the longer name. Plain substring matching is kept
/// otherwise — the city-name collisions it causes (Jackson/Jacksonville) are
/// the ones the paper's ratio thresholds are designed to survive.
pub fn match_given_names(hostname: &Hostname) -> Vec<&'static str> {
    let text = hostname.as_str();
    let mut matches: Vec<(&'static str, usize)> = Vec::new();
    for name in MATCH_GIVEN_NAMES {
        if let Some(pos) = text.find(name) {
            matches.push((name, pos));
        }
    }
    // Drop any match fully contained within another match's span.
    let spans: Vec<(usize, usize)> = matches.iter().map(|(n, p)| (*p, p + n.len())).collect();
    matches
        .iter()
        .enumerate()
        .filter(|(i, (_, p))| {
            let (s, e) = spans[*i];
            let _ = p;
            !spans
                .iter()
                .enumerate()
                .any(|(j, (s2, e2))| j != *i && *s2 <= s && e <= *e2 && (*s2, *e2) != (s, e))
        })
        .map(|(_, (n, _))| *n)
        .collect()
}

/// Whether the record matches at least one name.
pub fn has_given_name(hostname: &Hostname) -> bool {
    !match_given_names(hostname).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_fifty_lowercase() {
        assert_eq!(MATCH_GIVEN_NAMES.len(), 50);
        for n in MATCH_GIVEN_NAMES {
            assert!(n.chars().all(|c| c.is_ascii_lowercase()));
        }
        assert!(!MATCH_GIVEN_NAMES.contains(&"brian"));
    }

    #[test]
    fn basic_matches() {
        assert_eq!(
            match_given_names(&Hostname::new("jacobs-iphone.resnet.example.edu")),
            vec!["jacob"]
        );
        assert!(has_given_name(&Hostname::new("emmas-galaxy.example.edu")));
        assert!(!has_given_name(&Hostname::new("host-10-1-2-3.example.edu")));
        // Brian does not match: the case-study name is not in the list.
        assert!(!has_given_name(&Hostname::new("brians-mbp.example.edu")));
    }

    #[test]
    fn city_collision_still_matches() {
        // Router-level city names DO match (Jacksonville contains jackson);
        // the pipeline relies on ratio thresholds to filter these networks.
        let m = match_given_names(&Hostname::new("jacksonville.core.isp.net"));
        assert_eq!(m, vec!["jackson"]);
    }

    #[test]
    fn shadowed_submatches_removed() {
        // "christopher" contains no other list name, but "alexander"
        // contains "alexa"? Not in list. Use constructed case: a hostname
        // containing "elizabeth" also contains "liza"? Not in list either.
        // Actual overlap in the list: "alexis"/"alexander" share a prefix
        // but neither contains the other; "christian"/"christopher" share
        // "christ". Test containment logic with "ava" inside "java".
        let m = match_given_names(&Hostname::new("javascript-host.example.org"));
        assert_eq!(m, vec!["ava"], "ava matches inside 'java' (substring semantics)");
        // And a name containing another list name entirely: "liam" ⊂ "william".
        let m = match_given_names(&Hostname::new("williams-pc.example.org"));
        assert_eq!(m, vec!["william"], "liam inside william must be shadowed");
    }

    #[test]
    fn multiple_distinct_names() {
        let mut m = match_given_names(&Hostname::new("emma-and-noah.example.org"));
        m.sort();
        assert_eq!(m, vec!["emma", "noah"]);
    }

    #[test]
    fn case_insensitive_through_hostname_normalization() {
        assert!(has_given_name(&Hostname::new("EMMAS-IPAD.Example.EDU")));
    }
}
