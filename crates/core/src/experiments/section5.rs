//! §5 experiments: the leak-identification study and Figs. 2–4.
//!
//! [`LeakStudy::run`] simulates a mixed population (background organisations
//! plus the Table 4 focus networks), collects daily + weekly snapshot series
//! over the dynamicity window, runs the §4.1 heuristic and the §5.1 suffix
//! pipeline, and caches everything the individual figures need.

use crate::dynamicity::{identify_dynamic_par, DynamicityParams, DynamicityResult};
use crate::experiments::harness::collect_dual_series;
use crate::experiments::population::{generate_population, PopulationConfig};
use crate::experiments::Scale;
use crate::names::match_given_names;
use crate::report::{log_bar, TextTable};
use crate::suffix::{identify_leaking_suffixes, LeakParams, SuffixStats};
use crate::terms::{extract_terms, DEVICE_TERMS};
use crate::classify::TypeBreakdown;
use rdns_data::{ColumnarSeries, SnapshotSeries};
use rdns_model::{Date, Hostname, Ipv4Net, Slash24};
use rdns_netsim::spec::presets;
use rdns_netsim::{NetworkSpec, World, WorldConfig};
use std::collections::{BTreeMap, HashSet};
use std::net::Ipv4Addr;

/// The §4+§5 study over one simulated window.
pub struct LeakStudy {
    /// The scale it ran at.
    pub scale: Scale,
    /// Daily (OpenINTEL-like) series.
    pub daily: SnapshotSeries,
    /// Columnar analysis view of the daily series (shared hostname pool,
    /// sorted address columns).
    pub columnar: ColumnarSeries,
    /// Weekly (Rapid7-like) series.
    pub weekly: SnapshotSeries,
    /// §4.1 output.
    pub dynamicity: DynamicityResult,
    /// All announced prefixes of the simulated organisations.
    pub announced: Vec<Ipv4Net>,
    /// Per-suffix statistics (§5.1.1 step 4).
    pub suffix_stats: Vec<SuffixStats>,
    /// Identified (leaking) suffixes (§5.1.1 steps 5–6).
    pub identified: Vec<String>,
    /// Unique `(addr, hostname)` observations across the daily series.
    observations: Vec<(Ipv4Addr, Hostname)>,
}

impl LeakStudy {
    /// Run the full §4/§5 pipeline at the given scale. The window starts
    /// 2021-01-01, the paper's dynamicity-identification quarter.
    pub fn run(scale: &Scale) -> LeakStudy {
        let from = Date::from_ymd(2021, 1, 1);
        let to = from.plus_days(scale.window_days as i64 - 1);
        let mut networks: Vec<NetworkSpec> =
            generate_population(&PopulationConfig::new(scale.seed, scale.background_orgs));
        networks.extend(presets::table4_networks(scale.focus_scale));
        let announced: Vec<Ipv4Net> = networks.iter().flat_map(|n| n.announced.clone()).collect();
        let mut world = World::new(WorldConfig {
            seed: scale.seed,
            shards: 0,
            start: from,
            networks,
        });
        let (daily, weekly) = collect_dual_series(&mut world, from, to);

        // Analysis runs over the columnar view: sorted address columns with
        // an interned hostname pool, sharded per /24 and per day for rayon.
        let columnar = ColumnarSeries::from_series(&daily);
        let matrix = columnar.counts_matrix();
        let dyn_params = DynamicityParams {
            min_daily_addrs: scale.min_daily_addrs,
            ..DynamicityParams::default()
        };
        let dynamicity = identify_dynamic_par(&matrix, &dyn_params);

        // Unique (addr, hostname) observations across the window, in
        // deterministic ascending address order.
        let observations: Vec<(Ipv4Addr, Hostname)> = columnar.observations();

        let params = LeakParams::scaled(scale.min_unique_names);
        let (suffix_stats, identified) = identify_leaking_suffixes(
            observations.iter().map(|(a, h)| (*a, h)),
            &dynamicity.dynamic,
            &params,
        );

        LeakStudy {
            scale: *scale,
            daily,
            columnar,
            weekly,
            dynamicity,
            announced,
            suffix_stats,
            identified,
            observations,
        }
    }

    /// Whether an observation lies in an identified, dynamic block — the
    /// "filtered" population of Figs. 2–3.
    fn is_filtered(&self, addr: Ipv4Addr, hostname: &Hostname) -> bool {
        if !self.dynamicity.dynamic.contains(&Slash24::containing(addr)) {
            return false;
        }
        match hostname.tld_plus_one() {
            Some(suffix) => self.identified.contains(&suffix),
            None => false,
        }
    }

    /// Unique record observations.
    pub fn observations(&self) -> &[(Ipv4Addr, Hostname)] {
        &self.observations
    }
}

/// Fig. 2: given-name occurrences, all vs filtered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig2 {
    /// `(name, all matches, filtered matches)` in the paper's name order.
    pub rows: Vec<(&'static str, u64, u64)>,
}

impl Fig2 {
    /// Render as a log-scaled bar list.
    pub fn render(&self) -> String {
        let max = self.rows.iter().map(|r| r.1).max().unwrap_or(1) as f64;
        let mut t = TextTable::new(["name", "all", "filtered", "all (log bar)"]);
        for (name, all, filtered) in &self.rows {
            t.row([
                name.to_string(),
                all.to_string(),
                filtered.to_string(),
                log_bar(*all as f64, max, 30),
            ]);
        }
        t.render()
    }

    /// Sum of all matches / filtered matches.
    pub fn totals(&self) -> (u64, u64) {
        self.rows
            .iter()
            .fold((0, 0), |(a, f), (_, all, filt)| (a + all, f + filt))
    }
}

/// Compute Fig. 2 from a study.
pub fn fig2(study: &LeakStudy) -> Fig2 {
    let mut all: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut filtered: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (addr, host) in study.observations() {
        let names = match_given_names(host);
        if names.is_empty() {
            continue;
        }
        let in_filtered = study.is_filtered(*addr, host);
        for n in names {
            *all.entry(n).or_insert(0) += 1;
            if in_filtered {
                *filtered.entry(n).or_insert(0) += 1;
            }
        }
    }
    Fig2 {
        rows: crate::names::MATCH_GIVEN_NAMES
            .iter()
            .map(|n| {
                (
                    *n,
                    all.get(n).copied().unwrap_or(0),
                    filtered.get(n).copied().unwrap_or(0),
                )
            })
            .collect(),
    }
}

/// Fig. 3: device terms co-appearing with given names, all vs filtered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig3 {
    /// `(term, all, filtered)`, plus the `total` row first like the paper.
    pub rows: Vec<(String, u64, u64)>,
}

impl Fig3 {
    /// Render as a table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["keyword", "all", "filtered"]);
        for (term, all, filtered) in &self.rows {
            t.row([term.clone(), all.to_string(), filtered.to_string()]);
        }
        t.render()
    }
}

/// Compute Fig. 3 from a study: device terms counted over records that also
/// match a given name.
pub fn fig3(study: &LeakStudy) -> Fig3 {
    let mut all: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut filtered: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (addr, host) in study.observations() {
        if match_given_names(host).is_empty() {
            continue;
        }
        let terms: HashSet<String> = extract_terms(host).into_iter().collect();
        let in_filtered = study.is_filtered(*addr, host);
        for dt in DEVICE_TERMS {
            if terms.contains(dt) {
                *all.entry(dt).or_insert(0) += 1;
                if in_filtered {
                    *filtered.entry(dt).or_insert(0) += 1;
                }
            }
        }
    }
    let mut rows: Vec<(String, u64, u64)> = DEVICE_TERMS
        .iter()
        .map(|t| {
            (
                t.to_string(),
                all.get(t).copied().unwrap_or(0),
                filtered.get(t).copied().unwrap_or(0),
            )
        })
        .collect();
    rows.sort_by_key(|(_, a, _)| std::cmp::Reverse(*a));
    let total_all: u64 = rows.iter().map(|(_, a, _)| a).sum();
    let total_filtered: u64 = rows.iter().map(|(_, _, f)| f).sum();
    rows.insert(0, ("total".to_string(), total_all, total_filtered));
    Fig3 { rows }
}

/// Fig. 4: type breakdown of identified networks.
pub fn fig4(study: &LeakStudy) -> TypeBreakdown {
    TypeBreakdown::from_suffixes_par(&study.identified)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::NetworkClass;

    fn study() -> LeakStudy {
        LeakStudy::run(&Scale::tiny())
    }

    #[test]
    fn study_finds_dynamic_blocks_and_leaky_suffixes() {
        let s = study();
        assert!(s.daily.len() as u32 == Scale::tiny().window_days);
        assert!(
            !s.dynamicity.dynamic.is_empty(),
            "campus pools must register as dynamic"
        );
        assert!(
            s.dynamicity.dynamic.len() < s.dynamicity.total,
            "static blocks must survive"
        );
        assert!(
            s.identified.contains(&"midwest-state.edu".to_string()),
            "Academic-A must be identified; got {:?}",
            s.identified
        );
        // Fixed-form networks must NOT be identified by name matching.
        assert!(!s.identified.iter().any(|s| s.contains("polder-tech")
            && s.contains("dhcp")));
    }

    #[test]
    fn fig2_filtered_is_subset() {
        let s = study();
        let f2 = fig2(&s);
        assert_eq!(f2.rows.len(), 50);
        let (all, filtered) = f2.totals();
        assert!(all > 0, "given names must appear");
        assert!(filtered <= all);
        assert!(filtered > 0, "identified networks must contribute matches");
        for (_, a, f) in &f2.rows {
            assert!(f <= a);
        }
        assert!(f2.render().contains("jacob"));
    }

    #[test]
    fn fig3_totals_and_terms() {
        let s = study();
        let f3 = fig3(&s);
        assert_eq!(f3.rows[0].0, "total");
        let (_, total_all, total_filtered) = &f3.rows[0];
        let sum_all: u64 = f3.rows[1..].iter().map(|(_, a, _)| a).sum();
        assert_eq!(*total_all, sum_all);
        assert!(*total_filtered <= *total_all);
        assert!(*total_all > 0);
        // Phones dominate the simulated population, like the paper's Fig 3.
        let phoneish: u64 = f3.rows[1..]
            .iter()
            .filter(|(t, _, _)| ["iphone", "phone", "galaxy", "android"].contains(&t.as_str()))
            .map(|(_, a, _)| a)
            .sum();
        assert!(phoneish > 0);
        assert!(f3.render().contains("iphone"));
    }

    #[test]
    fn fig4_breakdown_is_academic_heavy() {
        let s = study();
        let b = fig4(&s);
        assert!(b.total() > 0);
        // The paper finds 61.9% academic; our generator skews leaky
        // networks academic. At tiny scale the handful of identified
        // suffixes makes the ranking a lottery, so only require Academic
        // among the top three classes with a nonzero count.
        let rows = b.rows();
        let top3: Vec<(NetworkClass, usize)> =
            rows.iter().take(3).map(|r| (r.0, r.1)).collect();
        assert!(
            top3.iter().any(|(c, n)| *c == NetworkClass::Academic && *n > 0),
            "rows: {rows:?}"
        );
    }

    #[test]
    fn filtered_excludes_static_blocks() {
        let s = study();
        // Any observation on a non-dynamic block must not be "filtered".
        for (addr, host) in s.observations().iter().take(500) {
            if !s.dynamicity.dynamic.contains(&Slash24::containing(*addr)) {
                assert!(!s.is_filtered(*addr, host));
            }
        }
    }
}
