//! §4 experiments: Fig. 1 and the ground-truth validation.

use crate::dynamicity::{
    identify_dynamic_par, prefix_dynamicity, summarize_fractions, ConfusionMatrix,
    DynamicityParams, FractionSummary,
};
use crate::experiments::harness::collect_delta_series;
use crate::experiments::section5::LeakStudy;
use crate::experiments::Scale;
use crate::report::TextTable;
use rdns_data::Cadence;
use rdns_model::{Date, Slash24};
use rdns_netsim::spec::{presets, DynDnsMode, SubnetRole};
use rdns_netsim::{World, WorldConfig};
use std::collections::HashSet;

/// Fig. 1 contents: dynamic-fraction distribution per announced-prefix size.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1 {
    /// Summary rows, smallest prefix length first.
    pub rows: Vec<FractionSummary>,
    /// Total /24s seen and labelled dynamic (the §4.2 headline numbers).
    pub total_slash24s: usize,
    /// Count labelled dynamic.
    pub dynamic_slash24s: usize,
}

impl Fig1 {
    /// Render like the paper's Fig. 1 (min/median/max ticks per size).
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["announced size", "prefixes", "min", "median", "max"]);
        for r in &self.rows {
            t.row([
                format!("/{}", r.prefix_len),
                r.prefixes.to_string(),
                format!("{:.1}%", r.min * 100.0),
                format!("{:.1}%", r.median * 100.0),
                format!("{:.1}%", r.max * 100.0),
            ]);
        }
        format!(
            "{}\n{} of {} /24s labelled dynamic\n",
            t.render(),
            self.dynamic_slash24s,
            self.total_slash24s
        )
    }
}

/// Compute Fig. 1 from a leak study.
pub fn fig1(study: &LeakStudy) -> Fig1 {
    let rows = summarize_fractions(&prefix_dynamicity(
        &study.dynamicity.dynamic,
        &study.announced,
    ));
    Fig1 {
        rows,
        total_slash24s: study.dynamicity.total,
        dynamic_slash24s: study.dynamicity.dynamic.len(),
    }
}

/// The §4.1 campus validation: run the heuristic against a network with a
/// known numbering plan and compare with ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct Validation {
    /// Confusion matrix over the campus /24s.
    pub matrix: ConfusionMatrix,
    /// /24s flagged dynamic.
    pub flagged: usize,
    /// /24s with dynamic addressing but fixed-form rDNS (must NOT be
    /// flagged — the 83-prefix observation).
    pub fixed_form_flagged: usize,
}

impl Validation {
    /// Render a short report.
    pub fn render(&self) -> String {
        format!(
            "flagged dynamic: {}\ntrue positives: {}  false positives: {}\n\
             false negatives: {}  true negatives: {}\n\
             precision: {:.2}  recall: {:.2}\n\
             fixed-form (DHCP, static rDNS) prefixes flagged: {}\n",
            self.flagged,
            self.matrix.true_positives,
            self.matrix.false_positives,
            self.matrix.false_negatives,
            self.matrix.true_negatives,
            self.matrix.precision(),
            self.matrix.recall(),
            self.fixed_form_flagged
        )
    }
}

/// Run the validation at the given scale against Academic-C (our campus,
/// which mixes carry-over pools, fixed-form pools and static space).
pub fn validation(scale: &Scale) -> Validation {
    let spec = presets::academic_c(scale.focus_scale.max(0.1));
    let from = Date::from_ymd(2021, 1, 1);
    let to = from.plus_days(scale.window_days as i64 - 1);

    // Ground truth from the numbering plan.
    let mut truth_dynamic: HashSet<Slash24> = HashSet::new();
    let mut fixed_form: HashSet<Slash24> = HashSet::new();
    let mut universe: HashSet<Slash24> = HashSet::new();
    for sn in &spec.subnets {
        for block in sn.prefix.slash24s() {
            universe.insert(block);
            match &sn.role {
                SubnetRole::DynamicClients {
                    dns:
                        DynDnsMode::CarryOver
                        | DynDnsMode::Hashed
                        | DynDnsMode::HashedRotating { .. },
                    ..
                } => {
                    truth_dynamic.insert(block);
                }
                SubnetRole::FixedFormDhcp { .. } => {
                    fixed_form.insert(block);
                }
                _ => {}
            }
        }
    }

    let mut world = World::new(WorldConfig {
        seed: scale.seed,
        shards: 0,
        start: from,
        networks: vec![spec],
    });
    // Delta-collected, then streamed into the columnar view: the whole
    // window is never held in row form.
    let series = collect_delta_series(&mut world, from, to, Cadence::Daily);
    let matrix = series.to_columnar().counts_matrix();
    let params = DynamicityParams {
        min_daily_addrs: scale.min_daily_addrs,
        ..DynamicityParams::default()
    };
    let result = identify_dynamic_par(&matrix, &params);

    let fixed_form_flagged = fixed_form
        .iter()
        .filter(|b| result.dynamic.contains(b))
        .count();
    Validation {
        matrix: ConfusionMatrix::compute(&universe, &result.dynamic, &truth_dynamic),
        flagged: result.dynamic.len(),
        fixed_form_flagged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_matches_paper_narrative() {
        let v = validation(&Scale::tiny());
        // All carry-over pools detected, nothing else flagged.
        assert_eq!(v.matrix.false_positives, 0, "{v:?}");
        assert!(v.matrix.recall() > 0.8, "{v:?}");
        assert_eq!(
            v.fixed_form_flagged, 0,
            "fixed-form DHCP pools must read as static"
        );
        assert!(v.flagged > 0);
        assert!(v.render().contains("precision"));
    }

    #[test]
    fn fig1_rows_consistent() {
        let study = LeakStudy::run(&Scale::tiny());
        let f1 = fig1(&study);
        assert!(f1.dynamic_slash24s > 0);
        assert!(f1.dynamic_slash24s <= f1.total_slash24s);
        for r in &f1.rows {
            assert!(r.min <= r.median && r.median <= r.max);
            assert!(r.max <= 1.0);
            assert!(r.prefixes > 0);
        }
        // Generally only part of an announced prefix is dynamic (Fig. 1's
        // point): the median fraction over all sizes must be below 100%.
        let any_partial = f1.rows.iter().any(|r| r.median < 1.0);
        assert!(any_partial, "{:?}", f1.rows);
        assert!(f1.render().contains("announced size"));
    }
}
