//! §6 experiments: the supplemental measurement (Tables 2–5, Figs. 6–7).

use crate::experiments::harness::{run_supplemental, FaultMix, SupplementalRun};
use crate::experiments::Scale;
use crate::report::TextTable;
use crate::timing::{par_build_groups, ActivityGroup, GroupFunnel, RemovalDelays};
use rdns_data::ScanDatasetStats;
use rdns_model::{Date, Ipv4Net};
use rdns_netsim::spec::presets;
use rdns_netsim::{IcmpPolicy, World, WorldConfig};
use rdns_scan::{BackoffSchedule, RdnsOutcome};
use std::collections::{BTreeMap, HashSet};
use std::net::Ipv4Addr;

/// Per-network metadata captured at study time (Table 4 rows).
#[derive(Debug, Clone, PartialEq)]
pub struct NetMeta {
    /// Anonymized-style name ("Academic-A").
    pub name: String,
    /// Targeted dynamic address space.
    pub targets: Vec<Ipv4Net>,
    /// Total targeted addresses.
    pub target_size: u32,
    /// Whether the network blocks ICMP at ingress.
    pub icmp_blocked: bool,
}

impl NetMeta {
    /// Whether an address belongs to this network's targets.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        self.targets.iter().any(|p| p.contains(addr))
    }
}

/// The full §6 study: one supplemental campaign over the nine networks.
pub struct SupplementalStudy {
    /// The campaign output.
    pub run: SupplementalRun,
    /// Activity groups (§6.1 merging).
    pub groups: Vec<ActivityGroup>,
    /// Table 5 funnel.
    pub funnel: GroupFunnel,
    /// Per-network metadata.
    pub networks: Vec<NetMeta>,
}

impl SupplementalStudy {
    /// Run the campaign: the Table 4 networks, starting 2021-11-01.
    pub fn run(scale: &Scale) -> SupplementalStudy {
        Self::run_from(scale, Date::from_ymd(2021, 11, 1), scale.supplemental_days)
    }

    /// Run from an explicit start date for the given number of days.
    pub fn run_from(scale: &Scale, from: Date, days: u32) -> SupplementalStudy {
        let specs = presets::table4_networks(scale.focus_scale);
        let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
        let mut world = World::new(WorldConfig {
            seed: scale.seed,
            shards: 0,
            start: from,
            networks: specs.clone(),
        });
        let networks: Vec<NetMeta> = specs
            .iter()
            .map(|s| {
                let targets = world.scan_targets(&s.name);
                NetMeta {
                    name: s.name.clone(),
                    target_size: targets.iter().map(|p| p.size()).sum(),
                    targets,
                    icmp_blocked: s.icmp == IcmpPolicy::Blocked,
                }
            })
            .collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let run = run_supplemental(
            &mut world,
            &name_refs,
            from,
            days,
            FaultMix::realistic(),
            scale.seed,
        );
        let groups = par_build_groups(&run.log);
        let funnel = GroupFunnel::compute(&groups);
        SupplementalStudy {
            run,
            groups,
            funnel,
            networks,
        }
    }

    /// The network an address belongs to, if any.
    pub fn network_of(&self, addr: Ipv4Addr) -> Option<&NetMeta> {
        self.networks.iter().find(|n| n.contains(addr))
    }

    /// Reliable-group removal delays for one network.
    pub fn delays_for(&self, network: &str) -> RemovalDelays {
        let meta = self.networks.iter().find(|n| n.name == network);
        let Some(meta) = meta else {
            return RemovalDelays::default();
        };
        RemovalDelays {
            minutes: self
                .groups
                .iter()
                .filter(|g| g.reliable() && meta.contains(g.addr))
                .filter_map(|g| g.removal_delay())
                .map(|d| d.as_mins_f64())
                .collect(),
        }
    }

    /// All reliable-group delays.
    pub fn delays(&self) -> RemovalDelays {
        RemovalDelays::from_groups(&self.groups)
    }
}

/// Table 2: the reactive back-off schedule (methodology table; asserted
/// against [`BackoffSchedule::standard`]).
pub fn table2() -> String {
    let s = BackoffSchedule::standard();
    let mut out = String::from("Reactive measurement back-off (Table 2):\n");
    let stages = [
        (12u32, 5u64, "1st hour"),
        (6, 10, "2nd hour"),
        (3, 20, "3rd hour"),
        (2, 30, "4th hour"),
    ];
    let mut idx = 0u32;
    for (count, mins, label) in stages {
        debug_assert_eq!(s.delay_after(idx).as_mins(), mins);
        out.push_str(&format!(
            "  {count:>2} times in the {label} at {mins}-minute intervals\n"
        ));
        idx += count;
    }
    debug_assert_eq!(s.delay_after(idx).as_mins(), 60);
    out.push_str("  until client goes offline, once at 60-minute intervals\n");
    out
}

/// Table 3: supplemental measurement statistics.
pub fn table3(study: &SupplementalStudy) -> String {
    let stats = ScanDatasetStats::from_log(&study.run.log);
    let end = study.run.from.plus_days(study.run.days as i64 - 1);
    let mut t = TextTable::new([
        "stream",
        "start",
        "end",
        "total responses",
        "unique IPs",
        "unique PTRs",
    ]);
    t.row([
        "ICMP".into(),
        study.run.from.to_string(),
        end.to_string(),
        stats.icmp_responses.to_string(),
        stats.icmp_unique_addrs.to_string(),
        "-".to_string(),
    ]);
    t.row([
        "rDNS".into(),
        study.run.from.to_string(),
        end.to_string(),
        stats.rdns_responses.to_string(),
        stats.rdns_unique_addrs.to_string(),
        stats.unique_ptrs.to_string(),
    ]);
    t.render()
}

/// Table 4 rows: per-network targeted size, addresses observed, percentage.
pub fn table4(study: &SupplementalStudy) -> String {
    // Unique alive addresses per network.
    let mut observed: BTreeMap<&str, HashSet<Ipv4Addr>> = BTreeMap::new();
    for rec in &study.run.log.icmp {
        if rec.alive {
            if let Some(meta) = study.network_of(rec.addr) {
                observed.entry(&meta.name).or_default().insert(rec.addr);
            }
        }
    }
    let mut t = TextTable::new(["network", "size", "addresses observed", "percent observed"]);
    for meta in &study.networks {
        let seen = observed.get(meta.name.as_str()).map_or(0, |s| s.len());
        let pct = seen as f64 / meta.target_size as f64 * 100.0;
        t.row([
            meta.name.clone(),
            format!(
                "{} x /24 ({})",
                meta.targets.len(),
                meta.target_size
            ),
            seen.to_string(),
            format!("{pct:.1}%"),
        ]);
    }
    t.render()
}

/// Table 5: the group funnel.
pub fn table5(study: &SupplementalStudy) -> String {
    let mut t = TextTable::new(["subset", "#groups", "fraction of parent"]);
    for (label, count, pct) in study.funnel.rows() {
        t.row([label.to_string(), count.to_string(), format!("{pct:.1}%")]);
    }
    t.render()
}

/// Fig. 6: daily DNS error counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig6 {
    /// `(date, total lookups, nxdomain, servfail, timeout)` per day.
    pub rows: Vec<(Date, usize, usize, usize, usize)>,
}

impl Fig6 {
    /// Render as a table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["date", "total", "nxdomain", "ns-failure", "timeout"]);
        for (d, total, nx, sf, to) in &self.rows {
            t.row([
                d.to_string(),
                total.to_string(),
                nx.to_string(),
                sf.to_string(),
                to.to_string(),
            ]);
        }
        t.render()
    }

    /// Aggregate error fractions over the campaign.
    pub fn error_fraction(&self) -> f64 {
        let total: usize = self.rows.iter().map(|r| r.1).sum();
        let errors: usize = self.rows.iter().map(|r| r.2 + r.3 + r.4).sum();
        if total == 0 {
            0.0
        } else {
            errors as f64 / total as f64
        }
    }
}

/// Compute Fig. 6 from the study.
pub fn fig6(study: &SupplementalStudy) -> Fig6 {
    let mut by_day: BTreeMap<Date, (usize, usize, usize, usize)> = BTreeMap::new();
    for rec in &study.run.log.rdns {
        let entry = by_day.entry(rec.ts.date()).or_default();
        entry.0 += 1;
        match rec.outcome {
            RdnsOutcome::NxDomain => entry.1 += 1,
            RdnsOutcome::NameserverFailure => entry.2 += 1,
            RdnsOutcome::Timeout => entry.3 += 1,
            RdnsOutcome::Ptr(_) => {}
        }
    }
    Fig6 {
        rows: by_day
            .into_iter()
            .map(|(d, (t, nx, sf, to))| (d, t, nx, sf, to))
            .collect(),
    }
}

/// Fig. 7 contents: removal-delay histogram and per-network CDFs.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7 {
    /// 5-minute histogram up to 180 minutes (Fig. 7a).
    pub histogram: Vec<(f64, usize)>,
    /// Per-network CDF checkpoints at 15/30/60/120 minutes (Fig. 7b).
    pub cdfs: Vec<(String, [f64; 4])>,
    /// Overall fraction of removals within an hour (the 9-in-10 headline).
    pub within_hour: f64,
}

impl Fig7 {
    /// Render both panels as text.
    pub fn render(&self) -> String {
        let max = self.histogram.iter().map(|(_, c)| *c).max().unwrap_or(1);
        let mut out = String::from("Fig 7a — minutes between last ICMP and PTR removal:\n");
        for (start, count) in &self.histogram {
            if *count > 0 {
                out.push_str(&format!(
                    "  {:>3.0}-{:<3.0} {:>6}  {}\n",
                    start,
                    start + 5.0,
                    count,
                    crate::report::bar(*count as f64, max as f64, 40)
                ));
            }
        }
        out.push_str("\nFig 7b — CDF checkpoints (15/30/60/120 min):\n");
        for (name, cdf) in &self.cdfs {
            out.push_str(&format!(
                "  {:<14} {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}%\n",
                name,
                cdf[0] * 100.0,
                cdf[1] * 100.0,
                cdf[2] * 100.0,
                cdf[3] * 100.0
            ));
        }
        out.push_str(&format!(
            "\noverall within 60 minutes: {:.1}%\n",
            self.within_hour * 100.0
        ));
        out
    }
}

/// Compute Fig. 7 from the study.
pub fn fig7(study: &SupplementalStudy) -> Fig7 {
    let all = study.delays();
    let cdfs = study
        .networks
        .iter()
        .filter(|m| !m.icmp_blocked)
        .map(|m| {
            let d = study.delays_for(&m.name);
            (
                m.name.clone(),
                [d.cdf_at(15.0), d.cdf_at(30.0), d.cdf_at(60.0), d.cdf_at(120.0)],
            )
        })
        .filter(|(_, cdf)| cdf[3] > 0.0) // drop networks with no usable groups
        .collect();
    Fig7 {
        histogram: all.histogram(5.0, 180.0),
        cdfs,
        within_hour: all.fraction_within_hour(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> SupplementalStudy {
        SupplementalStudy::run(&Scale::tiny())
    }

    #[test]
    fn table2_matches_schedule() {
        let t = table2();
        assert!(t.contains("12 times in the 1st hour at 5-minute intervals"));
        assert!(t.contains("60-minute intervals"));
    }

    #[test]
    fn study_produces_usable_groups() {
        let s = study();
        assert!(s.funnel.all > 0);
        assert!(s.funnel.reliable > 0, "funnel: {:?}", s.funnel);
        assert!(s.funnel.reliable <= s.funnel.ptr_reverted);
        assert!(s.funnel.ptr_reverted <= s.funnel.successful);
        assert!(s.funnel.successful <= s.funnel.all);
    }

    #[test]
    fn blocked_networks_unobserved_in_table4() {
        let s = study();
        let t4 = table4(&s);
        // Enterprise-B and Enterprise-C block ICMP: zero observed.
        for line in t4.lines() {
            if line.starts_with("Enterprise-B") || line.starts_with("Enterprise-C") {
                assert!(line.contains(" 0 "), "expected 0 observed: {line}");
            }
            if line.starts_with("Academic-A") {
                assert!(!line.contains(" 0 "), "Academic-A must be observed: {line}");
            }
        }
    }

    #[test]
    fn removals_mostly_within_an_hour() {
        let s = study();
        let f7 = fig7(&s);
        assert!(
            f7.within_hour > 0.7,
            "paper: ~9 in 10 within an hour; got {:.2}",
            f7.within_hour
        );
        assert!(!f7.cdfs.is_empty());
        for (_, cdf) in &f7.cdfs {
            assert!(cdf[0] <= cdf[1] && cdf[1] <= cdf[2] && cdf[2] <= cdf[3]);
        }
        assert!(f7.render().contains("Fig 7a"));
    }

    #[test]
    fn fig6_error_mix_is_low_but_present() {
        let s = study();
        let f6 = fig6(&s);
        assert!(!f6.rows.is_empty());
        let frac = f6.error_fraction();
        assert!(frac > 0.0, "injected faults must appear");
        // NXDOMAIN dominates "errors" because record-absence is normal for
        // reverse DNS (§6.2's nuance).
        let nx: usize = f6.rows.iter().map(|r| r.2).sum();
        let sf: usize = f6.rows.iter().map(|r| r.3).sum();
        assert!(nx > sf);
        assert!(f6.render().contains("nxdomain"));
    }

    #[test]
    fn table3_and_table5_render() {
        let s = study();
        let t3 = table3(&s);
        assert!(t3.contains("ICMP"));
        assert!(t3.contains("rDNS"));
        assert!(t3.contains("2021-11-01"));
        let t5 = table5(&s);
        assert!(t5.contains("All groups"));
        assert!(t5.contains("Reliable timing alignment"));
    }

    #[test]
    fn hour_peak_structure_in_histogram() {
        let s = study();
        let f7 = fig7(&s);
        // Clean releases produce an early (< 10 min) population; silent
        // leavers land in the (lease/2, lease] band. Both must exist.
        let early: usize = f7
            .histogram
            .iter()
            .filter(|(m, _)| *m < 10.0)
            .map(|(_, c)| c)
            .sum();
        let late: usize = f7
            .histogram
            .iter()
            .filter(|(m, _)| *m >= 30.0 && *m <= 65.0)
            .map(|(_, c)| c)
            .sum();
        assert!(early > 0, "release peak missing: {:?}", f7.histogram);
        assert!(late > 0, "lease-expiry band missing: {:?}", f7.histogram);
    }
}
