//! Experiment drivers: one entry point per table and figure of the paper's
//! evaluation, plus the §4.1 ground-truth validation.
//!
//! Every driver takes a [`Scale`] so the same code runs as a fast test
//! (`Scale::tiny()`), a CI-sized check (`Scale::small()`), or the full
//! reproduction (`Scale::paper()`) used by the `rdns-bench` harness. The
//! simulated populations are scaled-down but structurally faithful;
//! EXPERIMENTS.md records paper-vs-measured values.

pub mod ablation;
pub mod claims;
pub mod datasets;
pub mod harness;
pub mod population;
pub mod section4;
pub mod section5;
pub mod section6;
pub mod section7;

pub use ablation::{lease_ablation, release_ablation, Ablation};
pub use claims::{check_claims, ClaimsReport};
pub use datasets::table1;
pub use harness::{collect_series, run_supplemental, SupplementalRun};
pub use population::{generate_population, PopulationConfig};
pub use section4::{fig1, validation};
pub use section5::{fig2, fig3, fig4, LeakStudy};
pub use section6::{fig6, fig7, table2, table3, table4, table5};
pub use section7::{fig10, fig11, fig8, fig9};

use serde::{Deserialize, Serialize};

/// Knobs controlling experiment size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Master seed.
    pub seed: u64,
    /// Per-subnet population multiplier for the Table 4 networks.
    pub focus_scale: f64,
    /// Number of background organisations for the §4/§5 experiments.
    pub background_orgs: usize,
    /// Days of daily snapshots for the dynamicity window (paper: ~90).
    pub window_days: u32,
    /// Days of supplemental measurement (paper: 40).
    pub supplemental_days: u32,
    /// Minimum unique given names per suffix (paper: 50; scaled down with
    /// population).
    pub min_unique_names: usize,
    /// Step-1 floor of the dynamicity heuristic (paper: 10 addresses;
    /// scaled down with population).
    pub min_daily_addrs: u32,
}

impl Scale {
    /// Sub-second scale for unit tests.
    ///
    /// The seed is calibrated so the scaled-down world still exhibits the
    /// qualitative structures the §5/§7 tests assert (diurnal quiet zone,
    /// academic-heavy leak breakdown); at this scale those signals are
    /// seed-sensitive.
    pub fn tiny() -> Scale {
        Scale {
            seed: 5,
            focus_scale: 0.08,
            background_orgs: 6,
            window_days: 21,
            supplemental_days: 2,
            min_unique_names: 3,
            min_daily_addrs: 2,
        }
    }

    /// A few seconds; used by integration tests.
    pub fn small() -> Scale {
        Scale {
            seed: 5,
            focus_scale: 0.15,
            background_orgs: 20,
            window_days: 35,
            supplemental_days: 5,
            min_unique_names: 6,
            min_daily_addrs: 5,
        }
    }

    /// The full reproduction run of the bench harness.
    pub fn paper() -> Scale {
        Scale {
            seed: 4,
            focus_scale: 0.5,
            background_orgs: 120,
            window_days: 90,
            supplemental_days: 14,
            min_unique_names: 10,
            min_daily_addrs: 10,
        }
    }
}
