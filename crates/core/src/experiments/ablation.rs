//! Ablations of the design choices behind the timing results (§6.2, §10).
//!
//! * [`release_ablation`] — the paper's future-work question: clients that
//!   send DHCP RELEASE get their PTR pulled within minutes; silent leavers
//!   linger until lease expiry. Sweeping the clean-release probability
//!   quantifies how much *not releasing* acts as a defence.
//! * [`lease_ablation`] — §6.2 attributes Academic-B's lingering records to
//!   longer leases; sweeping the lease time makes that dependency explicit.

use crate::experiments::harness::{run_supplemental, FaultMix};
use crate::experiments::Scale;
use crate::report::TextTable;
use crate::timing::{par_build_groups, RemovalDelays};
use rdns_model::{Date, SimDuration};
use rdns_netsim::spec::presets;
use rdns_netsim::{World, WorldConfig};

/// One ablation row.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// The swept parameter value (probability or hours).
    pub value: f64,
    /// Reliable delay samples gathered.
    pub samples: usize,
    /// Fraction of removals within 15 minutes.
    pub within_15m: f64,
    /// Fraction within 60 minutes.
    pub within_60m: f64,
}

/// A parameter sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct Ablation {
    /// Swept parameter name.
    pub parameter: &'static str,
    /// Rows in sweep order.
    pub rows: Vec<AblationRow>,
}

impl Ablation {
    /// Render as a table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            self.parameter,
            "delay samples",
            "removed <=15 min",
            "removed <=60 min",
        ]);
        for r in &self.rows {
            t.row([
                format!("{:.2}", r.value),
                r.samples.to_string(),
                format!("{:.1}%", r.within_15m * 100.0),
                format!("{:.1}%", r.within_60m * 100.0),
            ]);
        }
        t.render()
    }
}

fn measure(scale: &Scale, mutate: impl Fn(&mut rdns_netsim::NetworkSpec)) -> (usize, f64, f64) {
    let from = Date::from_ymd(2021, 11, 1);
    let mut spec = presets::academic_a(scale.focus_scale);
    spec.seed_persons.clear();
    mutate(&mut spec);
    let mut world = World::new(WorldConfig {
        seed: scale.seed,
        shards: 0,
        start: from,
        networks: vec![spec],
    });
    let run = run_supplemental(
        &mut world,
        &["Academic-A"],
        from,
        scale.supplemental_days.max(2),
        FaultMix::none(),
        scale.seed,
    );
    let groups = par_build_groups(&run.log);
    let delays = RemovalDelays::from_groups(&groups);
    (delays.len(), delays.cdf_at(15.0), delays.cdf_at(60.0))
}

/// Sweep the probability that departing clients send DHCP RELEASE.
pub fn release_ablation(scale: &Scale) -> Ablation {
    let rows = [0.0, 0.35, 0.7, 1.0]
        .into_iter()
        .map(|p| {
            let (samples, w15, w60) = measure(scale, |spec| {
                spec.clean_release_prob = p;
            });
            AblationRow {
                value: p,
                samples,
                within_15m: w15,
                within_60m: w60,
            }
        })
        .collect();
    Ablation {
        parameter: "P(RELEASE on leave)",
        rows,
    }
}

/// Sweep the DHCP lease time.
pub fn lease_ablation(scale: &Scale) -> Ablation {
    let rows = [1u64, 2, 4]
        .into_iter()
        .map(|hours| {
            let (samples, w15, w60) = measure(scale, |spec| {
                spec.lease_time = SimDuration::hours(hours);
            });
            AblationRow {
                value: hours as f64,
                samples,
                within_15m: w15,
                within_60m: w60,
            }
        })
        .collect();
    Ablation {
        parameter: "lease time (hours)",
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn releases_accelerate_removal() {
        let a = release_ablation(&Scale::tiny());
        assert_eq!(a.rows.len(), 4);
        for r in &a.rows {
            assert!(r.samples > 0, "row {:?} has no samples", r);
            assert!(r.within_15m <= r.within_60m + f64::EPSILON);
        }
        // Monotone-ish: all-release removes far faster than never-release.
        let never = &a.rows[0];
        let always = &a.rows[3];
        assert!(
            always.within_15m > never.within_15m + 0.3,
            "releases must accelerate removal: never={:.2} always={:.2}",
            never.within_15m,
            always.within_15m
        );
        // Silence as a defence: without releases, very few removals within
        // 15 minutes (only the T1/lease mechanics).
        assert!(never.within_15m < 0.4, "never={:.2}", never.within_15m);
        assert!(a.render().contains("RELEASE"));
    }

    #[test]
    fn longer_leases_linger_longer() {
        let a = lease_ablation(&Scale::tiny());
        assert_eq!(a.rows.len(), 3);
        let one_hour = &a.rows[0];
        let four_hours = &a.rows[2];
        assert!(
            one_hour.within_60m > four_hours.within_60m + 0.15,
            "1h lease {:.2} vs 4h lease {:.2}",
            one_hour.within_60m,
            four_hours.within_60m
        );
        assert!(a.render().contains("lease time"));
    }
}
