//! Synthetic background population for the §4/§5 scale experiments.
//!
//! The paper observes 6.15M /24s and identifies 197 leaking networks across
//! the whole IPv4 Internet; we generate a scaled-down population of
//! organisations with the same *structural* variety: announced prefixes of
//! different sizes, numbering plans mixing dynamic pools with static
//! infrastructure and fixed-form DHCP, different organisation types, and a
//! minority of networks that actually carry names into rDNS.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rand::SeedableRng;
use rdns_model::Ipv4Net;
use rdns_netsim::spec::DynDnsMode;
use rdns_netsim::{
    BuildingTag, HolidayCalendar, IcmpPolicy, NetworkSpec, NetworkType, PersonKind, SubnetRole,
    SubnetSpec,
};
use rdns_netsim::covid::OccupancyTimeline;
use rdns_model::SimDuration;
use std::net::Ipv4Addr;

/// Population generator settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopulationConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of organisations.
    pub orgs: usize,
    /// Average persons per dynamic /24.
    pub persons_per_block: usize,
}

impl PopulationConfig {
    /// Defaults matched to [`super::Scale`].
    pub fn new(seed: u64, orgs: usize) -> PopulationConfig {
        PopulationConfig {
            seed,
            orgs,
            persons_per_block: 18,
        }
    }
}

/// A handful of very large carriers whose announcements span /10–/15 — the
/// top rows of Fig. 1, where only a sliver of an enormous announcement is
/// dynamic. Their address space lives in `11.0.0.0/8`..`15.0.0.0/8`, clear
/// of the regular background population.
fn large_carriers(config: &PopulationConfig) -> Vec<NetworkSpec> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x1A26E);
    let plans: [(u8, u8); 5] = [(11, 10), (12, 12), (13, 13), (14, 14), (15, 15)];
    plans
        .iter()
        .enumerate()
        .map(|(i, (first_octet, announced_len))| {
            let announced =
                Ipv4Net::new(Ipv4Addr::new(*first_octet, 0, 0, 0), *announced_len)
                    .expect("aligned by construction");
            // A few dynamic pools plus core infrastructure, dwarfed by the
            // announcement.
            let n_pools = rng.gen_range(2..=5);
            let mut subnets = vec![SubnetSpec {
                prefix: Ipv4Net::new(Ipv4Addr::new(*first_octet, 0, 0, 0), 24)
                    .expect("/24 in range"),
                label: "core".into(),
                role: SubnetRole::StaticInfra {
                    hosts: rng.gen_range(20..80),
                },
                building: BuildingTag::None,
            }];
            for j in 0..n_pools {
                // Carriers split between leaky carry-over and fixed-form
                // pools so they don't dominate the Fig. 4 type mix.
                let dns = if i % 2 == 0 {
                    DynDnsMode::CarryOver
                } else {
                    DynDnsMode::NoUpdate
                };
                subnets.push(SubnetSpec {
                    prefix: Ipv4Net::new(Ipv4Addr::new(*first_octet, 0, 1 + j, 0), 24)
                        .expect("/24 in range"),
                    label: format!("pool{j}"),
                    role: SubnetRole::DynamicClients {
                        persons: config.persons_per_block.max(2),
                        person_kind: PersonKind::Resident,
                        dns,
                    },
                    building: BuildingTag::None,
                });
            }
            NetworkSpec {
                name: format!("carrier-{i}"),
                ntype: NetworkType::Isp,
                suffix: format!("megacarrier{i}.net"),
                announced: vec![announced],
                subnets,
                icmp: IcmpPolicy::Open,
                lease_time: SimDuration::hours(1),
                ptr_ttl: 300,
                clean_release_prob: 0.4,
                anonymity_fraction: 0.05,
                device_ping_rate: rng.gen_range(0.1..0.6),
                calendar: HolidayCalendar::None,
                occupancy_education: OccupancyTimeline::flat(),
                occupancy_housing: OccupancyTimeline::flat(),
                seed_persons: Vec::new(),
            }
        })
        .collect()
}

/// Generate the background organisations. Address space is carved from
/// `10.0.0.0/8` (we keep `100.0.0.0/8` for the Table 4 focus networks), one
/// announced prefix per organisation, plus five very large carriers in
/// `11.0.0.0/8`..`15.0.0.0/8` for Fig. 1's top rows.
pub fn generate_population(config: &PopulationConfig) -> Vec<NetworkSpec> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0xBAC6_0000);
    let mut specs = Vec::with_capacity(config.orgs);
    // Allocation cursor in /24 units inside 10.0.0.0/8, aligned per prefix.
    let mut cursor: u32 = 0;
    for i in 0..config.orgs {
        let announced_len: u8 = *[16u8, 18, 20, 21, 22, 23, 24]
            .get(rng.gen_range(0..7usize))
            .expect("index in range");
        let blocks_needed = 1u32 << (24 - announced_len as u32);
        cursor = cursor.div_ceil(blocks_needed) * blocks_needed;
        assert!(cursor + blocks_needed <= 1 << 16, "10/8 exhausted");
        let base = u32::from(Ipv4Addr::new(10, 0, 0, 0)) + (cursor << 8);
        let announced = Ipv4Net::new(Ipv4Addr::from(base), announced_len)
            .expect("aligned by construction");
        cursor += blocks_needed;

        let ntype = match rng.gen_range(0..100) {
            0..=34 => NetworkType::Academic,
            35..=59 => NetworkType::Isp,
            60..=79 => NetworkType::Enterprise,
            80..=87 => NetworkType::Government,
            _ => NetworkType::Other,
        };
        let suffix = match ntype {
            NetworkType::Academic => format!("u{i}.edu"),
            NetworkType::Isp => format!("isp{i}.net"),
            NetworkType::Enterprise => format!("corp{i}.com"),
            NetworkType::Government => format!("agency{i}.gov"),
            NetworkType::Other => format!("site{i}.org"),
        };

        // Numbering plan: a handful of /24s inside the announced prefix.
        let max_blocks = announced.slash24_count().min(8);
        let n_blocks = rng.gen_range(1..=max_blocks) as usize;
        // Does this org leak (dynamic + carry-over)? A minority, like the
        // 197-in-6.15M finding — boosted so scaled runs have signal, and
        // skewed toward academics, which dominate the paper's Fig. 4.
        let leaks = rng.gen_bool(match ntype {
            NetworkType::Academic => 0.45,
            NetworkType::Isp => 0.20,
            NetworkType::Enterprise => 0.15,
            NetworkType::Government => 0.10,
            NetworkType::Other => 0.15,
        });
        let person_kind = match ntype {
            NetworkType::Academic => PersonKind::Student,
            NetworkType::Isp => PersonKind::Resident,
            _ => PersonKind::Employee,
        };

        let blocks: Vec<Ipv4Net> = announced.slash24s().take(n_blocks).map(|s| {
            Ipv4Net::new(s.network(), 24).expect("/24 from slash24")
        }).collect();
        let mut subnets = Vec::new();
        for (j, block) in blocks.into_iter().enumerate() {
            let role = if j == 0 && rng.gen_bool(0.7) {
                SubnetRole::StaticInfra {
                    hosts: rng.gen_range(5..40),
                }
            } else if leaks {
                SubnetRole::DynamicClients {
                    persons: config.persons_per_block.max(2),
                    person_kind,
                    dns: DynDnsMode::CarryOver,
                }
            } else {
                match rng.gen_range(0..4) {
                    0 => SubnetRole::FixedFormDhcp {
                        persons: config.persons_per_block.max(2),
                        person_kind,
                    },
                    1 => SubnetRole::StaticInfra {
                        hosts: rng.gen_range(5..60),
                    },
                    // Statically assigned named workstations: given names in
                    // rDNS, but no dynamics — the paper's "all matches" mass
                    // that the filter correctly discards.
                    2 => SubnetRole::StaticNamed {
                        hosts: rng.gen_range(20..120),
                    },
                    _ => SubnetRole::Dark,
                }
            };
            subnets.push(SubnetSpec {
                prefix: block,
                label: if j == 0 { "net".into() } else { format!("dyn{j}") },
                role,
                building: BuildingTag::None,
            });
        }

        specs.push(NetworkSpec {
            name: format!("bg-{i}"),
            ntype,
            suffix,
            announced: vec![announced],
            subnets,
            icmp: if rng.gen_bool(0.7) {
                IcmpPolicy::Open
            } else {
                IcmpPolicy::Blocked
            },
            lease_time: SimDuration::hours(*[1u64, 1, 2, 4].get(rng.gen_range(0..4usize)).expect("in range")),
            ptr_ttl: 300,
            clean_release_prob: rng.gen_range(0.2..0.5),
            anonymity_fraction: 0.05,
            device_ping_rate: rng.gen_range(0.1..0.9),
            calendar: HolidayCalendar::None,
            occupancy_education: OccupancyTimeline::flat(),
            occupancy_housing: OccupancyTimeline::flat(),
            seed_persons: Vec::new(),
        });
    }
    specs.extend(large_carriers(config));
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_org_count_plus_carriers() {
        let specs = generate_population(&PopulationConfig::new(1, 25));
        assert_eq!(specs.len(), 25 + 5, "25 background orgs + 5 large carriers");
        let carriers = specs
            .iter()
            .filter(|s| s.name.starts_with("carrier-"))
            .count();
        assert_eq!(carriers, 5);
    }

    #[test]
    fn carriers_have_large_announcements() {
        let specs = generate_population(&PopulationConfig::new(1, 10));
        let lens: Vec<u8> = specs
            .iter()
            .filter(|s| s.name.starts_with("carrier-"))
            .map(|s| s.announced[0].len())
            .collect();
        assert_eq!(lens, vec![10, 12, 13, 14, 15]);
        // Their pools are a vanishing share of the announcement (Fig. 1's
        // top-row shape).
        for s in specs.iter().filter(|s| s.name.starts_with("carrier-")) {
            let pool_24s: u32 = s.subnets.iter().map(|sn| sn.prefix.slash24_count()).sum();
            assert!(pool_24s * 100 < s.announced[0].slash24_count());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_population(&PopulationConfig::new(7, 10));
        let b = generate_population(&PopulationConfig::new(7, 10));
        assert_eq!(a, b);
        let c = generate_population(&PopulationConfig::new(8, 10));
        assert_ne!(a, c);
    }

    #[test]
    fn subnets_inside_announced() {
        for spec in generate_population(&PopulationConfig::new(3, 40)) {
            for sn in &spec.subnets {
                assert!(
                    spec.announced.iter().any(|a| a.covers(&sn.prefix)),
                    "{}: {} outside {:?}",
                    spec.name,
                    sn.prefix,
                    spec.announced
                );
            }
        }
    }

    #[test]
    fn mixes_leaky_and_quiet_orgs() {
        let specs = generate_population(&PopulationConfig::new(5, 60));
        let leaky = specs
            .iter()
            .filter(|s| {
                s.subnets.iter().any(|sn| {
                    matches!(
                        sn.role,
                        SubnetRole::DynamicClients {
                            dns: DynDnsMode::CarryOver,
                            ..
                        }
                    )
                })
            })
            .count();
        assert!(leaky > 3, "some orgs must leak ({leaky})");
        assert!(leaky < 40, "most orgs must not leak ({leaky})");
    }

    #[test]
    fn announced_prefix_sizes_vary() {
        let specs = generate_population(&PopulationConfig::new(11, 80));
        let lens: std::collections::HashSet<u8> = specs
            .iter()
            .map(|s| s.announced[0].len())
            .collect();
        assert!(lens.len() >= 4, "need variety for Fig. 1: {lens:?}");
    }

    #[test]
    fn distinct_address_space_per_org() {
        let specs = generate_population(&PopulationConfig::new(13, 50));
        let mut seen = std::collections::HashSet::new();
        for s in &specs {
            for sn in &s.subnets {
                assert!(seen.insert(sn.prefix), "overlap at {}", sn.prefix);
            }
        }
    }
}
