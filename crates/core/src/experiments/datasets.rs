//! Table 1: dataset statistics for the two snapshot series.

use crate::experiments::section5::LeakStudy;
use crate::report::TextTable;
use rdns_data::SnapshotDatasetStats;

/// Table 1 contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1 {
    /// Weekly (Rapid7-like) dataset row.
    pub weekly: SnapshotDatasetStats,
    /// Daily (OpenINTEL-like) dataset row.
    pub daily: SnapshotDatasetStats,
}

impl Table1 {
    /// Render like the paper's Table 1.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "dataset",
            "start",
            "end",
            "total responses",
            "unique PTRs",
        ]);
        for s in [&self.weekly, &self.daily] {
            t.row([
                s.label.clone(),
                s.start.map_or("-".into(), |d| d.to_string()),
                s.end.map_or("-".into(), |d| d.to_string()),
                s.total_responses.to_string(),
                s.unique_ptrs.to_string(),
            ]);
        }
        t.render()
    }
}

/// Compute Table 1 from a leak study's series.
pub fn table1(study: &LeakStudy) -> Table1 {
    Table1 {
        weekly: SnapshotDatasetStats::from_series("Rapid7-like weekly", &study.weekly),
        daily: SnapshotDatasetStats::from_columnar("OpenINTEL-like daily", &study.columnar),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn table1_shapes() {
        let study = LeakStudy::run(&Scale::tiny());
        let t1 = table1(&study);
        assert!(t1.daily.total_responses > t1.weekly.total_responses);
        assert!(t1.daily.unique_ptrs > 0);
        assert_eq!(t1.daily.start, study.daily.start_date());
        let rendered = t1.render();
        assert!(rendered.contains("OpenINTEL-like daily"));
        assert!(rendered.contains("Rapid7-like weekly"));
    }
}
