//! The paper's contribution checklist (§1), verified programmatically.
//!
//! The paper claims five contributions. [`check_claims`] re-derives each
//! one from freshly simulated data and reports pass/fail — the reproduction
//! equivalent of an artifact-evaluation checklist.

use crate::casestudies::brian::track_devices;
use crate::classify::NetworkClass;
use crate::experiments::harness::{run_supplemental, FaultMix};
use crate::experiments::section5::{fig4, LeakStudy};
use crate::experiments::section6::SupplementalStudy;
use crate::experiments::Scale;
use crate::names::match_given_names;
use crate::report::TextTable;
use crate::terms::{extract_terms, DEVICE_TERMS};
use crate::timing::RemovalDelays;
use rdns_model::Date;
use rdns_netsim::{spec::presets, World, WorldConfig};

/// One verified claim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClaimCheck {
    /// Claim number from §1.
    pub id: u8,
    /// The claim, paraphrased.
    pub claim: &'static str,
    /// Whether the reproduction supports it.
    pub passed: bool,
    /// Supporting numbers.
    pub evidence: String,
}

/// The full checklist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClaimsReport {
    /// One entry per §1 contribution.
    pub checks: Vec<ClaimCheck>,
}

impl ClaimsReport {
    /// Whether every claim passed.
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Render as a table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["#", "claim", "verdict", "evidence"]);
        for c in &self.checks {
            t.row([
                c.id.to_string(),
                c.claim.to_string(),
                if c.passed { "PASS" } else { "FAIL" }.to_string(),
                c.evidence.clone(),
            ]);
        }
        t.render()
    }
}

/// Re-derive the paper's five §1 contributions at the given scale.
pub fn check_claims(scale: &Scale) -> ClaimsReport {
    let mut checks = Vec::new();

    // Shared studies.
    let leak = LeakStudy::run(scale);
    let supplemental = SupplementalStudy::run(scale);

    // Claim 1: DNS records contain unique identifiers in practice —
    // including device types and owner names.
    {
        let mut named = 0usize;
        let mut named_with_device_term = 0usize;
        for (_, host) in leak.observations() {
            if match_given_names(host).is_empty() {
                continue;
            }
            named += 1;
            let terms = extract_terms(host);
            if terms.iter().any(|t| DEVICE_TERMS.contains(&t.as_str())) {
                named_with_device_term += 1;
            }
        }
        checks.push(ClaimCheck {
            id: 1,
            claim: "records carry owner names and device models",
            passed: named > 0 && named_with_device_term > 0,
            evidence: format!(
                "{named} name-bearing records, {named_with_device_term} also naming a device model"
            ),
        });
    }

    // Claim 2: networks of varying types expose such information.
    {
        let breakdown = fig4(&leak);
        let classes_with_hits = [
            NetworkClass::Academic,
            NetworkClass::Isp,
            NetworkClass::Enterprise,
            NetworkClass::Government,
            NetworkClass::Other,
        ]
        .iter()
        .filter(|c| breakdown.count(**c) > 0)
        .count();
        checks.push(ClaimCheck {
            id: 2,
            claim: "academic, enterprise and ISP networks all expose it",
            passed: classes_with_hits >= 3,
            evidence: format!(
                "{} identified networks across {classes_with_hits} classes",
                breakdown.total()
            ),
        });
    }

    // Claim 3: record presence tracks client presence (≈1 h lingering).
    {
        let delays = RemovalDelays::from_groups(&supplemental.groups);
        let within = delays.cdf_at(65.0);
        checks.push(ClaimCheck {
            id: 3,
            claim: "records linger at most ~an hour after departure",
            passed: delays.len() > 10 && within > 0.75,
            evidence: format!(
                "{} reliable groups, {:.1}% removed within ~an hour",
                delays.len(),
                within * 100.0
            ),
        });
    }

    // Claim 4: outsiders can track specific clients and learn dynamics.
    {
        let from = Date::from_ymd(2021, 11, 15);
        let mut world = World::new(WorldConfig {
            seed: scale.seed,
            shards: 0,
            start: from,
            networks: vec![presets::academic_a(scale.focus_scale)],
        });
        let run = run_supplemental(
            &mut world,
            &["Academic-A"],
            from,
            7,
            FaultMix::realistic(),
            scale.seed,
        );
        let timeline = track_devices(&run.log, "brian");
        let tracked_days: usize = timeline
            .hosts
            .iter()
            .map(|h| timeline.active_days(h).len())
            .sum();
        checks.push(ClaimCheck {
            id: 4,
            claim: "specific clients are trackable from outside",
            passed: !timeline.hosts.is_empty() && tracked_days >= 5,
            evidence: format!(
                "{} brian-named devices tracked over {tracked_days} device-days",
                timeline.hosts.len()
            ),
        });
    }

    // Claim 5: causes identified and mitigations available — hashed labels
    // defeat name matching on otherwise identical infrastructure.
    {
        let hashed = rdns_ipam::hashed_label(rdns_dhcp::MacAddr::from_seed(1), scale.seed);
        let sanitized = rdns_ipam::sanitize_label("Brian's iPhone");
        let leak_defeated = !hashed.contains("brian")
            && sanitized.as_deref() == Some("brians-iphone");
        checks.push(ClaimCheck {
            id: 5,
            claim: "cause is Host-Name carry-over; hashing mitigates",
            passed: leak_defeated,
            evidence: format!(
                "carry-over yields {:?}, hashed policy yields {hashed:?}",
                sanitized.unwrap_or_default()
            ),
        });
    }

    ClaimsReport { checks }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_claims_hold_at_tiny_scale() {
        let report = check_claims(&Scale::tiny());
        assert_eq!(report.checks.len(), 5);
        for c in &report.checks {
            assert!(c.passed, "claim {} failed: {}", c.id, c.evidence);
        }
        assert!(report.all_passed());
        let rendered = report.render();
        assert!(rendered.contains("PASS"));
        assert!(!rendered.contains("FAIL"));
    }
}
