//! §7 experiments: the case studies (Figs. 8–11).

use crate::casestudies::brian::{track_devices, DeviceTimeline};
use crate::casestudies::heist::{hourly_activity, quietest_hour, HourlyActivity};
use crate::casestudies::wfh::{percent_of_max_columnar, NormalizedSeries};
use crate::experiments::harness::{collect_dual_series, run_supplemental, FaultMix};
use crate::experiments::Scale;
use rdns_model::{Date, Ipv4Net};
use rdns_netsim::spec::presets;
use rdns_netsim::{BuildingTag, World, WorldConfig};

/// Fig. 8 output: six weeks of Brian devices on Academic-A.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8 {
    /// The tracked timeline.
    pub timeline: DeviceTimeline,
    /// First calendar day of the rendering window (a Monday).
    pub from: Date,
    /// Last day (a Sunday, six weeks later).
    pub to: Date,
    /// First sighting of the Galaxy Note 9, if observed.
    pub galaxy_first_seen: Option<Date>,
}

impl Fig8 {
    /// Render the presence matrix.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Six weeks in the Life of Brian(s), {} .. {}\n",
            self.from, self.to
        );
        out.push_str(&self.timeline.render(self.from, self.to));
        if let Some(d) = self.galaxy_first_seen {
            out.push_str(&format!("galaxy first observed: {d}\n"));
        }
        out
    }
}

/// Run Fig. 8: supplemental measurement on Academic-A across the six weeks
/// around Thanksgiving 2021 (weeks of 2021-10-25 through 2021-12-05, as in
/// the paper's Fig. 8 window).
pub fn fig8(scale: &Scale) -> Fig8 {
    let from = Date::from_ymd(2021, 10, 25); // Monday of week 1
    let weeks = 6u32;
    let to = from.plus_days((weeks * 7 - 1) as i64);
    let mut world = World::new(WorldConfig {
        seed: scale.seed,
        shards: 0,
        start: from,
        networks: vec![presets::academic_a(scale.focus_scale)],
    });
    let run = run_supplemental(
        &mut world,
        &["Academic-A"],
        from,
        weeks * 7,
        FaultMix::realistic(),
        scale.seed,
    );
    let timeline = track_devices(&run.log, "brian");
    // The case-study device: the seeded Note 9 bought on Cyber Monday.
    let galaxy_first_seen = timeline
        .hosts
        .iter()
        .find(|h| h.contains("galaxy-note9"))
        .map(|h| timeline.active_days(h))
        .and_then(|days| days.first().copied());
    Fig8 {
        timeline,
        from,
        to,
        galaxy_first_seen,
    }
}

/// Fig. 9 output: longitudinal percent-of-max series for five networks.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9 {
    /// One series per selected network.
    pub series: Vec<NormalizedSeries>,
}

impl Fig9 {
    /// The series for one network.
    pub fn series_for(&self, label: &str) -> Option<&NormalizedSeries> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render monthly means per network.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.series {
            out.push_str(&format!("{}:\n", s.label));
            let mut month = None;
            let mut acc: (f64, u32) = (0.0, 0);
            for (d, p) in &s.points {
                let key = (d.year(), d.month());
                if month != Some(key) {
                    if let Some((y, m)) = month {
                        out.push_str(&format!(
                            "  {y:04}-{m:02}  {:>5.1}%  {}\n",
                            acc.0 / acc.1 as f64,
                            crate::report::bar(acc.0 / acc.1 as f64, 100.0, 40)
                        ));
                    }
                    month = Some(key);
                    acc = (0.0, 0);
                }
                acc.0 += p;
                acc.1 += 1;
            }
            if let (Some((y, m)), true) = (month, acc.1 > 0) {
                out.push_str(&format!(
                    "  {y:04}-{m:02}  {:>5.1}%  {}\n",
                    acc.0 / acc.1 as f64,
                    crate::report::bar(acc.0 / acc.1 as f64, 100.0, 40)
                ));
            }
        }
        out
    }
}

/// Run Fig. 9 over `[from, to]` (paper: 2020-02 .. 2021-12): the three
/// academic networks plus Enterprises B and C.
pub fn fig9(scale: &Scale, from: Date, to: Date) -> Fig9 {
    let specs = vec![
        presets::academic_a(scale.focus_scale),
        presets::academic_b(scale.focus_scale),
        presets::academic_c(scale.focus_scale),
        presets::enterprise_b(scale.focus_scale),
        presets::enterprise_c(scale.focus_scale),
    ];
    let meta: Vec<(String, Vec<Ipv4Net>)> = specs
        .iter()
        .map(|s| (s.name.clone(), s.announced.clone()))
        .collect();
    let mut world = World::new(WorldConfig {
        seed: scale.seed,
        shards: 0,
        start: from,
        networks: specs,
    });
    let (daily, _) = collect_dual_series(&mut world, from, to);
    // One shared columnar view serves all five per-network scans.
    let columnar = rdns_data::ColumnarSeries::from_series(&daily);
    Fig9 {
        series: meta
            .iter()
            .map(|(name, prefixes)| percent_of_max_columnar(name, &columnar, prefixes))
            .collect(),
    }
}

/// Fig. 10 output: Academic-C education vs housing, daily and weekly.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10 {
    /// Education buildings, daily (OpenINTEL-like).
    pub education_daily: NormalizedSeries,
    /// Student housing, daily.
    pub housing_daily: NormalizedSeries,
    /// Education buildings, weekly (Rapid7-like, longer window).
    pub education_weekly: NormalizedSeries,
    /// Student housing, weekly.
    pub housing_weekly: NormalizedSeries,
}

impl Fig10 {
    /// The crossover check: housing above education at `date`?
    pub fn housing_leads_on(&self, date: Date) -> Option<bool> {
        let h = self.housing_daily.at(date)?;
        let e = self.education_daily.at(date)?;
        Some(h > e)
    }

    /// Render monthly means of both daily series (single days would land on
    /// weekends and mislead).
    pub fn render(&self) -> String {
        let mut out = String::from("Fig 10 — Academic-C education vs housing (monthly mean, % of max):\n");
        let monthly = |s: &NormalizedSeries| -> Vec<((i32, u8), f64)> {
            let mut acc: Vec<((i32, u8), (f64, u32))> = Vec::new();
            for (d, p) in &s.points {
                let key = (d.year(), d.month());
                match acc.last_mut() {
                    Some((k, (sum, n))) if *k == key => {
                        *sum += p;
                        *n += 1;
                    }
                    _ => acc.push((key, (*p, 1))),
                }
            }
            acc.into_iter()
                .map(|(k, (sum, n))| (k, sum / n as f64))
                .collect()
        };
        let edu = monthly(&self.education_daily);
        let housing = monthly(&self.housing_daily);
        for ((y, m), e) in &edu {
            let h = housing
                .iter()
                .find(|((hy, hm), _)| hy == y && hm == m)
                .map(|(_, v)| *v)
                .unwrap_or(0.0);
            out.push_str(&format!("  {y:04}-{m:02}  edu {e:>5.1}%  housing {h:>5.1}%\n"));
        }
        out
    }
}

/// Run Fig. 10: weekly data from `weekly_from` (paper: 2019-10-01, Rapid7's
/// start) and daily data from `daily_from` (paper: 2020-02-17, OpenINTEL's
/// start), both until `to`.
pub fn fig10(scale: &Scale, weekly_from: Date, daily_from: Date, to: Date) -> Fig10 {
    let spec = presets::academic_c(scale.focus_scale);
    let education: Vec<Ipv4Net> = spec
        .subnets
        .iter()
        .filter(|s| s.building == BuildingTag::Education)
        .map(|s| s.prefix)
        .collect();
    let housing: Vec<Ipv4Net> = spec
        .subnets
        .iter()
        .filter(|s| s.building == BuildingTag::Housing)
        .map(|s| s.prefix)
        .collect();
    let mut world = World::new(WorldConfig {
        seed: scale.seed,
        shards: 0,
        start: weekly_from,
        networks: vec![spec],
    });
    let (all_daily, weekly) = collect_dual_series(&mut world, weekly_from, to);
    // The daily (OpenINTEL-like) view only exists from `daily_from`.
    let mut daily = rdns_data::SnapshotSeries::new(rdns_data::Cadence::Daily);
    for s in &all_daily.snapshots {
        if s.date >= daily_from {
            daily.push(s.clone());
        }
    }
    let daily_col = rdns_data::ColumnarSeries::from_series(&daily);
    let weekly_col = rdns_data::ColumnarSeries::from_series(&weekly);
    Fig10 {
        education_daily: percent_of_max_columnar("education (daily)", &daily_col, &education),
        housing_daily: percent_of_max_columnar("housing (daily)", &daily_col, &housing),
        education_weekly: percent_of_max_columnar("education (weekly)", &weekly_col, &education),
        housing_weekly: percent_of_max_columnar("housing (weekly)", &weekly_col, &housing),
    }
}

/// Fig. 11 output: one week of hourly activity on Academic-A.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11 {
    /// Hourly counts.
    pub activity: HourlyActivity,
    /// The recommended (quietest) hour of day, from rDNS data alone.
    pub quietest_hour: u8,
}

impl Fig11 {
    /// Render the aggregate hour-of-day profile.
    pub fn render(&self) -> String {
        let by_hour = self.activity.by_hour_of_day();
        let max = by_hour.iter().map(|(_, r)| *r).max().unwrap_or(1);
        let mut out = String::from("Fig 11 — hour-of-day activity (ICMP / rDNS):\n");
        for (h, (icmp, rdns)) in by_hour.iter().enumerate() {
            out.push_str(&format!(
                "  {h:02}:00  icmp {icmp:>6}  rdns {rdns:>6}  {}\n",
                crate::report::bar(*rdns as f64, max as f64, 40)
            ));
        }
        out.push_str(&format!(
            "\nquietest hour (heist recommendation): {:02}:00\n",
            self.quietest_hour
        ));
        out
    }
}

/// Run Fig. 11: one week of supplemental data from Academic-A (paper:
/// 2021-11-01 through 2021-11-07).
pub fn fig11(scale: &Scale) -> Fig11 {
    let from = Date::from_ymd(2021, 11, 1);
    let days = 7u32;
    let mut world = World::new(WorldConfig {
        seed: scale.seed,
        shards: 0,
        start: from,
        networks: vec![presets::academic_a(scale.focus_scale)],
    });
    let run = run_supplemental(
        &mut world,
        &["Academic-A"],
        from,
        days,
        FaultMix::realistic(),
        scale.seed,
    );
    let activity = hourly_activity(&run.log, from, days);
    Fig11 {
        quietest_hour: quietest_hour(&activity),
        activity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_finds_nighttime_quiet() {
        let f = fig11(&Scale::tiny());
        assert_eq!(f.activity.hours.len(), 7 * 24);
        // Night / early morning must be the quiet zone on a campus (the
        // paper's data hinted at ~06:00; at tiny scale any overnight hour
        // can win).
        assert!(
            f.quietest_hour <= 9,
            "quietest hour {} not at night / early morning",
            f.quietest_hour
        );
        // Midday rDNS activity must exceed the quiet hour's.
        let by_hour = f.activity.by_hour_of_day();
        assert!(by_hour[13].1 > by_hour[f.quietest_hour as usize].1);
        assert!(f.render().contains("quietest hour"));
    }

    #[test]
    fn fig10_shows_crossover_during_lockdown() {
        let scale = Scale::tiny();
        // Window spanning the March 2020 lockdown.
        let f = fig10(
            &scale,
            Date::from_ymd(2020, 1, 6),
            Date::from_ymd(2020, 2, 17),
            Date::from_ymd(2020, 4, 30),
        );
        // Before lockdown: education at/above its max relative level...
        let before = f
            .education_daily
            .mean_over(Date::from_ymd(2020, 2, 17), Date::from_ymd(2020, 3, 8))
            .unwrap();
        let during = f
            .education_daily
            .mean_over(Date::from_ymd(2020, 3, 23), Date::from_ymd(2020, 4, 26))
            .unwrap();
        assert!(
            during < before - 5.0,
            "education must drop: before={before:.1} during={during:.1}"
        );
        // Housing holds or rises relative to its own max.
        let h_during = f
            .housing_daily
            .mean_over(Date::from_ymd(2020, 3, 23), Date::from_ymd(2020, 4, 26))
            .unwrap();
        assert!(h_during > during, "housing must lead education during lockdown");
        // Weekly series exists from before the daily series.
        assert!(f.education_weekly.points.first().unwrap().0 < f.education_daily.points.first().unwrap().0);
        assert!(f.render().contains("Academic-C"));
    }
}
