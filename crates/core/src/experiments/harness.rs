//! Shared drivers: building worlds, collecting snapshot series, and running
//! the supplemental measurement against a live world.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rdns_data::{Cadence, DeltaSeries, Snapshotter, SnapshotSeries};
use rdns_model::{Date, SimDuration, SimTime, Weekday};
use rdns_netsim::World;
use rdns_scan::{Prober, RdnsOutcome, ReactiveConfig, ReactiveScanner, ScanLog};
use std::net::Ipv4Addr;

/// Snapshot local time of day — mid-afternoon, when office/campus
/// populations peak, matching how daytime measurement reflects occupancy.
pub const SNAPSHOT_HOUR: u8 = 14;

/// Run the world through `[from, to]`, taking one snapshot per cadence step
/// at [`SNAPSHOT_HOUR`].
pub fn collect_series(
    world: &mut World,
    from: Date,
    to: Date,
    cadence: Cadence,
) -> SnapshotSeries {
    let snapper = Snapshotter::new(world.store().clone());
    let mut series = SnapshotSeries::new(cadence);
    let mut day = from;
    while day <= to {
        world.step_until(SimTime::from_date_hms(day, SNAPSHOT_HOUR, 0, 0));
        series.push(snapper.take(day));
        day = day.plus_days(cadence.interval_days());
    }
    series
}

/// Like [`collect_series`], but delta-encoded: each day is pushed straight
/// into a [`DeltaSeries`], so the collection never holds more than one full
/// day plus the churn — the memory shape long windows over large worlds
/// need.
pub fn collect_delta_series(
    world: &mut World,
    from: Date,
    to: Date,
    cadence: Cadence,
) -> DeltaSeries {
    let snapper = Snapshotter::new(world.store().clone());
    let mut series = DeltaSeries::new(cadence);
    let mut day = from;
    while day <= to {
        world.step_until(SimTime::from_date_hms(day, SNAPSHOT_HOUR, 0, 0));
        series.push(snapper.take(day));
        day = day.plus_days(cadence.interval_days());
    }
    series
}

/// Collect daily and weekly series simultaneously (OpenINTEL + Rapid7 over
/// the same world, like §3's two datasets). The weekly series samples
/// Tuesdays, "a single weekday every week".
pub fn collect_dual_series(
    world: &mut World,
    from: Date,
    to: Date,
) -> (SnapshotSeries, SnapshotSeries) {
    let snapper = Snapshotter::new(world.store().clone());
    let mut daily = SnapshotSeries::new(Cadence::Daily);
    let mut weekly = SnapshotSeries::new(Cadence::Weekly);
    let mut day = from;
    while day <= to {
        world.step_until(SimTime::from_date_hms(day, SNAPSHOT_HOUR, 0, 0));
        let snap = snapper.take(day);
        if day.weekday() == Weekday::Tuesday {
            // lint:allow(snapshot-clone) -- the weekly provider (Rapid7 vs OpenINTEL) owns an independent copy of its sample days
            weekly.push(snap.clone());
        }
        daily.push(snap);
        day = day.succ();
    }
    (daily, weekly)
}

/// Fault probabilities for fast-mode supplemental runs (Fig. 6's error mix).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultMix {
    /// P(rDNS lookup → name-server failure).
    pub servfail: f64,
    /// P(rDNS lookup → timeout).
    pub timeout: f64,
    /// P(echo reply lost).
    pub ping_loss: f64,
}

impl FaultMix {
    /// The low error rates the paper reports ("the number of errors is low
    /// relative to the number of queries").
    pub fn realistic() -> FaultMix {
        FaultMix {
            servfail: 0.002,
            timeout: 0.004,
            ping_loss: 0.005,
        }
    }

    /// No faults.
    pub fn none() -> FaultMix {
        FaultMix {
            servfail: 0.0,
            timeout: 0.0,
            ping_loss: 0.0,
        }
    }
}

/// A prober over a borrowed world snapshot plus persistent fault state.
struct WorldProber<'a> {
    world: &'a World,
    rng: &'a mut SmallRng,
    faults: FaultMix,
}

impl Prober for WorldProber<'_> {
    fn ping(&mut self, addr: Ipv4Addr) -> bool {
        let alive = self.world.ping(addr);
        if alive && self.rng.gen::<f64>() < self.faults.ping_loss {
            return false;
        }
        alive
    }

    fn rdns(&mut self, addr: Ipv4Addr) -> RdnsOutcome {
        let roll: f64 = self.rng.gen();
        if roll < self.faults.servfail {
            return RdnsOutcome::NameserverFailure;
        }
        if roll < self.faults.servfail + self.faults.timeout {
            return RdnsOutcome::Timeout;
        }
        match self.world.store().get_ptr(addr) {
            Some(name) => RdnsOutcome::Ptr(name.to_hostname()),
            None => RdnsOutcome::NxDomain,
        }
    }
}

/// Result of a supplemental campaign.
#[derive(Debug)]
pub struct SupplementalRun {
    /// The measurement log.
    pub log: ScanLog,
    /// Scanner counters.
    pub stats: rdns_scan::reactive::ReactiveStats,
    /// First day of the campaign.
    pub from: Date,
    /// Days measured.
    pub days: u32,
}

/// Drive a reactive scanner against the world for `days` days, interleaving
/// world events and scheduled probes at 5-minute resolution.
pub fn run_supplemental(
    world: &mut World,
    networks: &[&str],
    from: Date,
    days: u32,
    faults: FaultMix,
    seed: u64,
) -> SupplementalRun {
    let targets: Vec<rdns_model::Ipv4Net> = networks
        .iter()
        .flat_map(|n| world.scan_targets(n))
        .collect();
    let start = SimTime::from_date(from);
    let end = start + SimDuration::days(days as u64);
    let mut scanner = ReactiveScanner::new(ReactiveConfig::standard(targets), start);
    let mut fault_rng = SmallRng::seed_from_u64(seed ^ 0xFA17);

    let mut t = start;
    while t < end {
        world.step_until(t);
        let mut prober = WorldProber {
            world,
            rng: &mut fault_rng,
            faults,
        };
        scanner.run_due(t, &mut prober);
        t += SimDuration::mins(5);
    }
    SupplementalRun {
        stats: scanner.stats(),
        log: scanner.into_log(),
        from,
        days,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdns_netsim::spec::presets;
    use rdns_netsim::WorldConfig;

    fn small_world(start: Date) -> World {
        World::new(WorldConfig {
            seed: 3,
            shards: 0,
            start,
            networks: vec![presets::academic_a(0.05)],
        })
    }

    #[test]
    fn daily_series_collection() {
        let from = Date::from_ymd(2021, 11, 1);
        let mut world = small_world(from);
        let series = collect_series(&mut world, from, from.plus_days(4), Cadence::Daily);
        assert_eq!(series.len(), 5);
        // Afternoon snapshots of a campus should contain client PTRs.
        assert!(series.total_responses() > 0);
    }

    #[test]
    fn dual_series_weekly_subset() {
        let from = Date::from_ymd(2021, 11, 1); // Monday
        let mut world = small_world(from);
        let (daily, weekly) = collect_dual_series(&mut world, from, from.plus_days(13));
        assert_eq!(daily.len(), 14);
        assert_eq!(weekly.len(), 2); // two Tuesdays
        assert_eq!(weekly.snapshots[0].date.weekday(), Weekday::Tuesday);
        // Weekly snapshots must be exact copies of the matching daily ones.
        let tue = weekly.snapshots[0].date;
        let matching = daily.snapshots.iter().find(|s| s.date == tue).unwrap();
        assert_eq!(matching, &weekly.snapshots[0]);
    }

    #[test]
    fn supplemental_run_produces_groups_material() {
        let from = Date::from_ymd(2021, 11, 1);
        let mut world = small_world(from);
        let run = run_supplemental(
            &mut world,
            &["Academic-A"],
            from,
            1,
            FaultMix::none(),
            7,
        );
        assert!(run.stats.sweeps >= 24);
        assert!(run.stats.triggers > 0, "campus clients must be discovered");
        assert!(!run.log.icmp.is_empty());
        assert!(!run.log.rdns.is_empty());
        assert!(run.log.unique_ptrs() > 0);
    }

    #[test]
    fn faults_show_up_in_log() {
        let from = Date::from_ymd(2021, 11, 1);
        let mut world = small_world(from);
        let faults = FaultMix {
            servfail: 0.3,
            timeout: 0.3,
            ping_loss: 0.0,
        };
        let run = run_supplemental(&mut world, &["Academic-A"], from, 1, faults, 7);
        let servfails = run
            .log
            .rdns
            .iter()
            .filter(|r| r.outcome == RdnsOutcome::NameserverFailure)
            .count();
        let timeouts = run
            .log
            .rdns
            .iter()
            .filter(|r| r.outcome == RdnsOutcome::Timeout)
            .count();
        assert!(servfails > 0);
        assert!(timeouts > 0);
    }

    #[test]
    fn determinism() {
        let from = Date::from_ymd(2021, 11, 1);
        let run = |seed| {
            let mut world = World::new(WorldConfig {
                seed,
                shards: 0,
                start: from,
                networks: vec![presets::academic_a(0.05)],
            });
            let r = run_supplemental(
                &mut world,
                &["Academic-A"],
                from,
                1,
                FaultMix::realistic(),
                seed,
            );
            (r.log.icmp.len(), r.log.rdns.len(), r.stats.triggers)
        };
        assert_eq!(run(5), run(5));
    }
}
