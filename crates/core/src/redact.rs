//! PII redaction boundary.
//!
//! The paper's central hazard is that device-owner names flow out of rDNS
//! into logs, reports, and figures because *stringifying a hostname is the
//! path of least resistance*. This module inverts that default: a value
//! wrapped in [`Pii`] formats as a stable redacted fingerprint, and getting
//! the raw text back requires the explicit — and greppable — [`Pii::reveal`]
//! call. The workspace lint (`rdns-lint`, rule `pii-escape`) taint-tracks
//! owner-derived values from source fns to formatting sinks and enforces
//! that they only get there through this type.
//!
//! `reveal()` is not a loophole; it is the audit trail. Legitimate call
//! sites are the paper's own case-study renderings (§7 "Life of Brian(s)"
//! publishes the device matrix with names because that disclosure *is* the
//! finding) and tests. Everywhere else the redacted form is the default,
//! mirroring how Privacy-Preserving Passive DNS blinds stored names while
//! keeping them joinable.

/// Wrapper marking a value as personally identifying.
///
/// `Display` and `Debug` both emit `[pii:xxxxxxxx]`, where the tag is a
/// deterministic FNV-1a fingerprint of the inner `Display` text: the same
/// name always redacts to the same tag, so redacted output stays joinable
/// (you can still count distinct devices, correlate rows across snapshots)
/// without exposing the name itself.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pii<T>(T);

impl<T> Pii<T> {
    /// Mark a value as PII.
    pub fn new(value: T) -> Self {
        Pii(value)
    }

    /// Deliberately disclose the inner value.
    ///
    /// Call sites are policy-audited (grep for `.reveal()`): they must be
    /// case-study/report code where disclosure is the point, or tests.
    // lint:taint(unwrap)
    pub fn reveal(&self) -> &T {
        &self.0
    }

    /// Unwrap, dropping the PII marking. Prefer [`Pii::reveal`] at format
    /// sites so the disclosure stays visible at the point of use.
    // lint:taint(unwrap)
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> From<T> for Pii<T> {
    fn from(value: T) -> Self {
        Pii(value)
    }
}

impl<T: std::fmt::Display> Pii<T> {
    /// The redacted tag (`pii:xxxxxxxx`) without brackets, for callers
    /// building their own labels.
    pub fn fingerprint(&self) -> String {
        format!("pii:{:08x}", fnv1a(&self.0.to_string()) as u32)
    }
}

impl<T: std::fmt::Display> std::fmt::Display for Pii<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Route through `pad` so width/alignment specs apply to the
        // redacted token — tables keep their shape either way.
        f.pad(&format!("[{}]", self.fingerprint()))
    }
}

impl<T: std::fmt::Display> std::fmt::Debug for Pii<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Pii([{}])", self.fingerprint())
    }
}

fn fnv1a(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0100_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_redacts() {
        let p = Pii::new("brians-mbp");
        let shown = format!("{p}");
        assert!(!shown.contains("brian"), "leaked: {shown}");
        assert!(shown.starts_with("[pii:") && shown.ends_with(']'));
    }

    #[test]
    fn debug_redacts() {
        let p = Pii::new("brians-mbp".to_string());
        let shown = format!("{p:?}");
        assert!(!shown.contains("brian"), "leaked: {shown}");
        assert!(shown.starts_with("Pii(["));
    }

    #[test]
    fn fingerprint_is_stable_and_joinable() {
        let a = Pii::new("brians-mbp");
        let b = Pii::new("brians-mbp".to_string());
        assert_eq!(format!("{a}"), format!("{b}"));
        let c = Pii::new("emmas-ipad");
        assert_ne!(format!("{a}"), format!("{c}"));
    }

    #[test]
    fn reveal_is_the_explicit_opt_out() {
        let p = Pii::new("brians-mbp");
        assert_eq!(*p.reveal(), "brians-mbp");
        assert_eq!(p.into_inner(), "brians-mbp");
    }

    #[test]
    fn padding_applies_to_the_redacted_form() {
        let p = Pii::new("x");
        let shown = format!("{p:>20}");
        assert_eq!(shown.len(), 20);
    }
}
