//! Plain-text rendering of tables and figures.
//!
//! The bench harness regenerates every table and figure of the paper as
//! text; these helpers keep the formatting consistent.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create with column headers.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(headers: I) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (short rows are padded).
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<width$}  "));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        if !self.headers.is_empty() {
            out.push_str(&render_row(&self.headers));
            out.push('\n');
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1)));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// A proportional bar for text figures.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

/// A log-scaled proportional bar (for Fig. 2/3's logarithmic axes).
pub fn log_bar(value: f64, max: f64, width: usize) -> String {
    if value < 1.0 || max < 1.0 {
        return String::new();
    }
    let n = ((value.ln_1p() / max.ln_1p()) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(["name", "count"]);
        t.row(["a", "1"]);
        t.row(["longer-name", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header + rule + 2 rows
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        // Columns aligned: "count" header starts at same offset as values.
        let header_off = lines[0].find("count").unwrap();
        let value_off = lines[3].find("12345").unwrap();
        assert_eq!(header_off, value_off);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["x"]);
        let s = t.render();
        assert!(s.contains('x'));
    }

    #[test]
    fn bars() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(10.0, 10.0, 10), "##########");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(5.0, 0.0, 10), "");
        assert_eq!(bar(100.0, 10.0, 10), "##########", "clamped to width");
    }

    #[test]
    fn log_bars_compress() {
        let lin = bar(10.0, 10_000.0, 40);
        let log = log_bar(10.0, 10_000.0, 40);
        assert!(log.len() > lin.len(), "log scale lifts small values");
        assert_eq!(log_bar(10_000.0, 10_000.0, 40).len(), 40);
        assert_eq!(log_bar(0.5, 100.0, 40), "");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.619), "61.9%");
        assert_eq!(pct(1.0), "100.0%");
        assert_eq!(pct(0.0), "0.0%");
    }
}
