//! Cross-network client tracking (§1, §2.2).
//!
//! The DHCP-privacy literature worried about tracking clients *between*
//! networks via stable identifiers; RFC 7844 exists precisely because
//! device names survive MAC randomization. When two networks both carry the
//! Host Name into rDNS, the same device label (`brians-galaxy-note9`)
//! surfaces under two suffixes — an outside observer can follow the device
//! from a campus to a home ISP. [`cross_network_appearances`] finds such
//! labels in supplemental measurement data.

use rdns_model::Date;
use rdns_scan::ScanLog;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One device label seen under multiple network suffixes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossNetworkAppearance {
    /// The host-specific label (the carried-over device name).
    pub host_label: String,
    /// Per-suffix days of appearance, sorted by suffix.
    pub networks: Vec<(String, Vec<Date>)>,
}

impl CrossNetworkAppearance {
    /// Number of distinct networks the label appeared in.
    pub fn network_count(&self) -> usize {
        self.networks.len()
    }

    /// Days on which the label was visible in more than one network —
    /// e.g. phone on campus by day, home ISP by night.
    pub fn overlapping_days(&self) -> Vec<Date> {
        let mut counts: BTreeMap<Date, usize> = BTreeMap::new();
        for (_, days) in &self.networks {
            for d in days {
                *counts.entry(*d).or_insert(0) += 1;
            }
        }
        counts
            .into_iter()
            .filter(|(_, n)| *n > 1)
            .map(|(d, _)| d)
            .collect()
    }
}

/// Find host labels appearing under at least `min_networks` distinct
/// suffixes (TLD+1). Labels shorter than 6 characters are skipped — short
/// generic labels (`host1`, `pc2`) collide across unrelated networks.
pub fn cross_network_appearances(
    log: &ScanLog,
    min_networks: usize,
) -> Vec<CrossNetworkAppearance> {
    // label → suffix → days
    let mut seen: BTreeMap<String, BTreeMap<String, BTreeSet<Date>>> = BTreeMap::new();
    for r in &log.rdns {
        let Some(host) = r.outcome.hostname() else {
            continue;
        };
        let Some(label) = host.host_label() else {
            continue;
        };
        if label.len() < 6 {
            continue;
        }
        let Some(suffix) = host.tld_plus_one() else {
            continue;
        };
        seen.entry(label.to_string())
            .or_default()
            .entry(suffix)
            .or_default()
            .insert(r.ts.date());
    }
    seen.into_iter()
        .filter(|(_, nets)| nets.len() >= min_networks)
        .map(|(host_label, nets)| CrossNetworkAppearance {
            host_label,
            networks: nets
                .into_iter()
                .map(|(suffix, days)| (suffix, days.into_iter().collect()))
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdns_model::{Hostname, SimTime};
    use rdns_scan::RdnsOutcome;
    use std::net::Ipv4Addr;

    fn push(log: &mut ScanLog, date: Date, hour: u8, addr: &str, host: &str) {
        log.push_rdns(
            SimTime::from_date_hms(date, hour, 0, 0),
            addr.parse::<Ipv4Addr>().unwrap(),
            RdnsOutcome::Ptr(Hostname::new(host)),
        );
    }

    fn sample_log() -> ScanLog {
        let mut log = ScanLog::new();
        let mon = Date::from_ymd(2021, 11, 22);
        let tue = Date::from_ymd(2021, 11, 23);
        // The phone follows its owner: campus by day, home ISP by night.
        push(&mut log, mon, 13, "100.64.10.5", "brians-galaxy-note9.campus.midwest-state.edu");
        push(&mut log, mon, 20, "100.128.10.9", "brians-galaxy-note9.pool.fastpipe.net");
        push(&mut log, tue, 12, "100.64.10.5", "brians-galaxy-note9.campus.midwest-state.edu");
        // Single-network devices are not cross-network hits.
        push(&mut log, mon, 12, "100.64.10.6", "emmas-ipad.campus.midwest-state.edu");
        // Short generic labels are excluded even when they collide.
        push(&mut log, mon, 12, "100.64.10.7", "host1.campus.midwest-state.edu");
        push(&mut log, mon, 12, "100.128.10.8", "host1.pool.fastpipe.net");
        log
    }

    #[test]
    fn finds_the_phone_across_networks() {
        let hits = cross_network_appearances(&sample_log(), 2);
        assert_eq!(hits.len(), 1);
        let hit = &hits[0];
        assert_eq!(hit.host_label, "brians-galaxy-note9");
        assert_eq!(hit.network_count(), 2);
        let suffixes: Vec<&str> = hit.networks.iter().map(|(s, _)| s.as_str()).collect();
        assert_eq!(suffixes, vec!["fastpipe.net", "midwest-state.edu"]);
    }

    #[test]
    fn overlap_days_show_same_day_movement() {
        let hits = cross_network_appearances(&sample_log(), 2);
        // Monday: campus at 13:00 AND home ISP at 20:00.
        assert_eq!(
            hits[0].overlapping_days(),
            vec![Date::from_ymd(2021, 11, 22)]
        );
    }

    #[test]
    fn min_networks_threshold() {
        let hits = cross_network_appearances(&sample_log(), 1);
        // With threshold 1, single-network devices appear too (but not the
        // short generic label).
        let labels: Vec<&str> = hits.iter().map(|h| h.host_label.as_str()).collect();
        assert!(labels.contains(&"emmas-ipad"));
        assert!(!labels.contains(&"host1"));
        let hits3 = cross_network_appearances(&sample_log(), 3);
        assert!(hits3.is_empty());
    }

    #[test]
    fn errors_and_empty_logs_ignored() {
        let mut log = ScanLog::new();
        log.push_rdns(
            SimTime::from_date_hms(Date::from_ymd(2021, 11, 22), 12, 0, 0),
            "10.0.0.1".parse().unwrap(),
            RdnsOutcome::NxDomain,
        );
        assert!(cross_network_appearances(&log, 2).is_empty());
        assert!(cross_network_appearances(&ScanLog::new(), 1).is_empty());
    }
}
