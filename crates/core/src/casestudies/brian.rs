//! §7.1 — Life of Brian(s).
//!
//! From supplemental rDNS data, select PTR observations whose *host label*
//! contains a target given name, and lay them out as a device × day presence
//! matrix like Fig. 8. The paper's insight: anyone able to issue frequent
//! PTR lookups can build this picture; no ICMP needed.

use crate::redact::Pii;
use rdns_model::{Date, SimTime};
use rdns_scan::ScanLog;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Presence matrix for the devices of one (or more) name-sharing persons.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceTimeline {
    /// Host labels observed (e.g. `brians-air`), sorted.
    pub hosts: Vec<String>,
    /// `(host, date) → hours of day with at least one sighting`.
    presence: BTreeMap<(String, Date), BTreeSet<u8>>,
    /// `(host, date) → addresses used` (Fig. 8 colour-codes addresses).
    addresses: BTreeMap<(String, Date), BTreeSet<Ipv4Addr>>,
}

impl DeviceTimeline {
    /// Whether `host` was seen on `date`.
    pub fn present(&self, host: &str, date: Date) -> bool {
        self.presence.contains_key(&(host.to_string(), date))
    }

    /// Hours of day `host` was seen on `date`.
    pub fn hours(&self, host: &str, date: Date) -> Vec<u8> {
        self.presence
            .get(&(host.to_string(), date))
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Addresses `host` used on `date`.
    pub fn addresses(&self, host: &str, date: Date) -> Vec<Ipv4Addr> {
        self.addresses
            .get(&(host.to_string(), date))
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Days on which `host` appeared at all.
    pub fn active_days(&self, host: &str) -> Vec<Date> {
        self.presence
            .keys()
            .filter(|(h, _)| h == host)
            .map(|(_, d)| *d)
            .collect()
    }

    /// All distinct addresses a host used — device↔address stability is what
    /// makes longitudinal tracking easy.
    pub fn all_addresses(&self, host: &str) -> BTreeSet<Ipv4Addr> {
        self.addresses
            .iter()
            .filter(|((h, _), _)| h == host)
            .flat_map(|(_, set)| set.iter().copied())
            .collect()
    }

    /// Render a Fig. 8-style matrix: one row per host, one column per day
    /// in `[from, to]`; `#` marks presence, `.` absence, weekend columns are
    /// marked in the header.
    ///
    /// Row labels disclose the real host labels via [`Pii::reveal`]: this is
    /// the paper's §7.1 case-study figure, where showing that the names *are*
    /// recoverable is the finding. Use [`DeviceTimeline::render_redacted`]
    /// anywhere the matrix is wanted without the names.
    pub fn render(&self, from: Date, to: Date) -> String {
        self.render_rows(from, to, |host| Pii::new(host).reveal().to_string())
    }

    /// [`DeviceTimeline::render`] with redacted row labels: each host shows
    /// as its stable `[pii:…]` fingerprint, so rows remain distinguishable
    /// and joinable across renders without exposing the names.
    pub fn render_redacted(&self, from: Date, to: Date) -> String {
        self.render_rows(from, to, |host| Pii::new(host).to_string())
    }

    fn render_rows(&self, from: Date, to: Date, label: impl Fn(&str) -> String) -> String {
        let width = self
            .hosts
            .iter()
            .map(|h| label(h).len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = String::new();
        // Header: weekday initials.
        out.push_str(&format!("{:width$}  ", "", width = width));
        for d in from.iter_to(to) {
            out.push(match d.weekday() {
                w if w.is_weekend() => 'w',
                _ => d.weekday().short().chars().next().unwrap_or('?'),
            });
        }
        out.push('\n');
        for host in &self.hosts {
            // `row` has been through the caller's redact-or-reveal decision.
            let row = label(host);
            out.push_str(&format!("{row:width$}  "));
            for d in from.iter_to(to) {
                out.push(if self.present(host, d) { '#' } else { '.' });
            }
            out.push('\n');
        }
        out
    }
}

/// Build a timeline from supplemental rDNS data: keep PTR observations whose
/// host label contains `needle` (case-insensitive).
pub fn track_devices(log: &ScanLog, needle: &str) -> DeviceTimeline {
    let needle = needle.to_ascii_lowercase();
    let mut timeline = DeviceTimeline::default();
    let mut hosts: BTreeSet<String> = BTreeSet::new();
    for r in &log.rdns {
        let Some(hostname) = r.outcome.hostname() else {
            continue;
        };
        let Some(label) = hostname.host_label() else {
            continue;
        };
        if !label.contains(&needle) {
            continue;
        }
        hosts.insert(label.to_string());
        let date = r.ts.date();
        let hour = SimTime::hour(&r.ts);
        timeline
            .presence
            .entry((label.to_string(), date))
            .or_default()
            .insert(hour);
        timeline
            .addresses
            .entry((label.to_string(), date))
            .or_default()
            .insert(r.addr);
    }
    timeline.hosts = hosts.into_iter().collect();
    timeline
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdns_model::{Hostname, SimDuration};
    use rdns_scan::RdnsOutcome;

    fn t(date: Date, h: u8) -> SimTime {
        SimTime::from_date_hms(date, h, 7, 0)
    }

    fn log_with_brians() -> ScanLog {
        let mut log = ScanLog::new();
        let monday = Date::from_ymd(2021, 11, 22);
        let addr: Ipv4Addr = "10.1.1.5".parse().unwrap();
        for h in [11, 12, 13] {
            log.push_rdns(
                t(monday, h),
                addr,
                RdnsOutcome::Ptr(Hostname::new("brians-mbp.campus.example.edu")),
            );
        }
        log.push_rdns(
            t(monday, 19),
            "10.1.2.9".parse().unwrap(),
            RdnsOutcome::Ptr(Hostname::new("brians-phone.resnet.example.edu")),
        );
        // An unrelated device must not appear.
        log.push_rdns(
            t(monday, 12),
            "10.1.1.6".parse().unwrap(),
            RdnsOutcome::Ptr(Hostname::new("emmas-ipad.campus.example.edu")),
        );
        // Errors never contribute.
        log.push_rdns(t(monday, 12), addr, RdnsOutcome::NxDomain);
        log
    }

    #[test]
    fn tracks_only_matching_hosts() {
        let tl = track_devices(&log_with_brians(), "brian");
        assert_eq!(tl.hosts, vec!["brians-mbp", "brians-phone"]);
        let monday = Date::from_ymd(2021, 11, 22);
        assert!(tl.present("brians-mbp", monday));
        assert!(!tl.present("emmas-ipad", monday));
        assert_eq!(tl.hours("brians-mbp", monday), vec![11, 12, 13]);
        assert_eq!(tl.hours("brians-phone", monday), vec![19]);
    }

    #[test]
    fn addresses_recorded() {
        let tl = track_devices(&log_with_brians(), "brian");
        let monday = Date::from_ymd(2021, 11, 22);
        assert_eq!(
            tl.addresses("brians-mbp", monday),
            vec!["10.1.1.5".parse::<Ipv4Addr>().unwrap()]
        );
        assert_eq!(tl.all_addresses("brians-phone").len(), 1);
    }

    #[test]
    fn multi_day_presence() {
        let mut log = log_with_brians();
        let tuesday = Date::from_ymd(2021, 11, 23);
        log.push_rdns(
            t(tuesday, 12),
            "10.1.1.5".parse().unwrap(),
            RdnsOutcome::Ptr(Hostname::new("brians-mbp.campus.example.edu")),
        );
        let tl = track_devices(&log, "brian");
        assert_eq!(tl.active_days("brians-mbp").len(), 2);
    }

    #[test]
    fn render_grid_shape() {
        let tl = track_devices(&log_with_brians(), "brian");
        let from = Date::from_ymd(2021, 11, 22);
        let to = Date::from_ymd(2021, 11, 28);
        let grid = tl.render(from, to);
        let lines: Vec<&str> = grid.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 hosts
        // Monday present for mbp: first day column is '#'.
        let mbp_line = lines.iter().find(|l| l.contains("brians-mbp")).unwrap();
        assert!(mbp_line.trim_end().ends_with("#......"));
        // Header marks the weekend.
        assert!(lines[0].contains('w'));
    }

    #[test]
    fn redacted_render_hides_names_but_keeps_shape() {
        let tl = track_devices(&log_with_brians(), "brian");
        let from = Date::from_ymd(2021, 11, 22);
        let to = Date::from_ymd(2021, 11, 28);
        let grid = tl.render_redacted(from, to);
        assert!(!grid.contains("brian"), "names leaked: {grid}");
        assert_eq!(grid.lines().count(), tl.render(from, to).lines().count());
        // Same presence cells as the revealed render.
        let cells = |s: &str| -> Vec<String> {
            s.lines()
                .skip(1)
                .map(|l| l.chars().filter(|&c| c == '#' || c == '.').collect())
                .collect()
        };
        assert_eq!(cells(&grid), cells(&tl.render(from, to)));
        // Fingerprints are stable run to run.
        assert_eq!(grid, tl.render_redacted(from, to));
    }

    proptest::proptest! {
        /// The pii-escape satellite regression: for any owner name and any
        /// device mix, the redacted matrix never contains a raw owner name
        /// (neither as a row label nor smuggled through width padding).
        #[test]
        fn prop_render_redacted_never_leaks_owner_names(
            // `[g-z]` is disjoint from hex digits, so a short random name
            // can never coincide with a substring of a `[pii:xxxxxxxx]`
            // fingerprint.
            name in "[g-z]{3,12}",
            devices in proptest::collection::vec("[g-z]{2,8}", 1..4),
            day_offsets in proptest::collection::vec(0u32..14, 1..8),
        ) {
            let mut log = ScanLog::new();
            let base = Date::from_ymd(2021, 11, 15);
            for (i, (dev, off)) in
                devices.iter().zip(day_offsets.iter().cycle()).enumerate()
            {
                let host = format!("{name}s-{dev}.campus.example.edu");
                let addr = Ipv4Addr::from(u32::from(Ipv4Addr::new(10, 1, 1, 1)) + i as u32);
                log.push_rdns(
                    t(base.plus_days(*off as i64), (i % 24) as u8),
                    addr,
                    RdnsOutcome::Ptr(Hostname::new(&host)),
                );
            }
            let tl = track_devices(&log, &name);
            proptest::prop_assert!(!tl.hosts.is_empty());
            let grid = tl.render_redacted(base, base.plus_days(14));
            proptest::prop_assert!(
                !grid.contains(&name),
                "raw owner name `{name}` leaked into the redacted render:\n{grid}"
            );
            for host in &tl.hosts {
                proptest::prop_assert!(!grid.contains(host.as_str()));
            }
            // The revealed render, by contrast, does show the names — the
            // disclosure is the difference between the two surfaces.
            proptest::prop_assert!(tl.render(base, base.plus_days(14)).contains(&name));
        }
    }

    #[test]
    fn case_insensitive_needle() {
        let tl = track_devices(&log_with_brians(), "BRIAN");
        assert_eq!(tl.hosts.len(), 2);
    }

    #[test]
    fn empty_log() {
        let tl = track_devices(&ScanLog::new(), "brian");
        assert!(tl.hosts.is_empty());
        let grid = tl.render(Date::from_ymd(2021, 11, 1), Date::from_ymd(2021, 11, 7));
        assert_eq!(grid.lines().count(), 1); // header only
        let _ = SimDuration::secs(0);
    }
}
