//! §7.2 — Working from Home.
//!
//! Daily PTR totals per network, normalized to the maximum observed (the
//! y-axis of Figs. 9–10). Even day-granularity snapshots expose lockdowns,
//! recoveries, holidays and the education-vs-housing crossover.

use rdns_data::{ColumnarSeries, SnapshotSeries};
use rdns_model::{Date, Ipv4Net};
use serde::{Deserialize, Serialize};

/// A labelled percent-of-max series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NormalizedSeries {
    /// Display label (network or building set).
    pub label: String,
    /// `(date, percent of maximum)` points in date order.
    pub points: Vec<(Date, f64)>,
}

impl NormalizedSeries {
    /// The percentage on a given date, if sampled.
    pub fn at(&self, date: Date) -> Option<f64> {
        self.points
            .iter()
            .find(|(d, _)| *d == date)
            .map(|(_, p)| *p)
    }

    /// Mean percentage over an inclusive date range.
    pub fn mean_over(&self, from: Date, to: Date) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|(d, _)| *d >= from && *d <= to)
            .map(|(_, p)| *p)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// The minimum point (date of the deepest dip).
    pub fn min_point(&self) -> Option<(Date, f64)> {
        self.points
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("percentages are finite"))
    }
}

/// Build a percent-of-max series from snapshot totals restricted to a set of
/// prefixes.
pub fn percent_of_max(
    label: &str,
    series: &SnapshotSeries,
    prefixes: &[Ipv4Net],
) -> NormalizedSeries {
    let totals = series.daily_totals_where(|addr| prefixes.iter().any(|p| p.contains(addr)));
    normalize(label, totals)
}

/// Like [`percent_of_max`], but over the columnar analysis view, whose
/// per-day address columns are scanned with rayon fan-out.
pub fn percent_of_max_columnar(
    label: &str,
    series: &ColumnarSeries,
    prefixes: &[Ipv4Net],
) -> NormalizedSeries {
    let totals = series.daily_totals_where(|addr| prefixes.iter().any(|p| p.contains(addr)));
    normalize(label, totals)
}

fn normalize(label: &str, totals: Vec<(Date, usize)>) -> NormalizedSeries {
    let max = totals.iter().map(|(_, n)| *n).max().unwrap_or(0);
    let points = totals
        .into_iter()
        .map(|(d, n)| {
            let pct = if max == 0 {
                0.0
            } else {
                n as f64 / max as f64 * 100.0
            };
            (d, pct)
        })
        .collect();
    NormalizedSeries {
        label: label.to_string(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdns_data::{Cadence, DailySnapshot};
    use rdns_model::Hostname;
    use std::collections::BTreeMap;
    use std::net::Ipv4Addr;

    fn snapshot(date: Date, count: u8) -> DailySnapshot {
        let mut records = BTreeMap::new();
        for i in 0..count {
            records.insert(
                Ipv4Addr::new(10, 0, 0, i + 1),
                Hostname::new(&format!("h{i}.example.edu")),
            );
        }
        DailySnapshot { date, records }
    }

    fn series() -> SnapshotSeries {
        let mut s = SnapshotSeries::new(Cadence::Daily);
        s.push(snapshot(Date::from_ymd(2020, 3, 1), 100));
        s.push(snapshot(Date::from_ymd(2020, 3, 2), 80));
        s.push(snapshot(Date::from_ymd(2020, 3, 3), 40));
        s
    }

    #[test]
    fn normalization_to_max() {
        let ns = percent_of_max("edu", &series(), &["10.0.0.0/24".parse().unwrap()]);
        assert_eq!(ns.points.len(), 3);
        assert_eq!(ns.at(Date::from_ymd(2020, 3, 1)), Some(100.0));
        assert_eq!(ns.at(Date::from_ymd(2020, 3, 2)), Some(80.0));
        assert_eq!(ns.at(Date::from_ymd(2020, 3, 3)), Some(40.0));
        assert_eq!(ns.at(Date::from_ymd(2020, 4, 1)), None);
    }

    #[test]
    fn prefix_restriction() {
        let ns = percent_of_max("other", &series(), &["192.0.2.0/24".parse().unwrap()]);
        assert!(ns.points.iter().all(|(_, p)| *p == 0.0));
    }

    #[test]
    fn min_point_finds_dip() {
        let ns = percent_of_max("edu", &series(), &["10.0.0.0/24".parse().unwrap()]);
        let (date, pct) = ns.min_point().unwrap();
        assert_eq!(date, Date::from_ymd(2020, 3, 3));
        assert_eq!(pct, 40.0);
    }

    #[test]
    fn mean_over_range() {
        let ns = percent_of_max("edu", &series(), &["10.0.0.0/24".parse().unwrap()]);
        let m = ns
            .mean_over(Date::from_ymd(2020, 3, 2), Date::from_ymd(2020, 3, 3))
            .unwrap();
        assert!((m - 60.0).abs() < 1e-9);
        assert!(ns
            .mean_over(Date::from_ymd(2021, 1, 1), Date::from_ymd(2021, 1, 2))
            .is_none());
    }

    #[test]
    fn empty_series_is_all_zero() {
        let s = SnapshotSeries::new(Cadence::Daily);
        let ns = percent_of_max("x", &s, &["10.0.0.0/24".parse().unwrap()]);
        assert!(ns.points.is_empty());
        assert!(ns.min_point().is_none());
    }
}
