//! The §7 case studies.
//!
//! * [`brian`] — §7.1 *Life of Brian(s)*: track devices whose hostnames
//!   carry a given name across weeks of supplemental data (Fig. 8),
//! * [`wfh`] — §7.2 *Working from Home*: longitudinal percent-of-max PTR
//!   counts revealing COVID-19 work patterns (Figs. 9–10),
//! * [`heist`] — §7.3 *When to stage a heist?*: diurnal activity profiles
//!   from rDNS alone (Fig. 11),
//! * [`buildings`] — the §8 escalation: with a subnet→building map, presence
//!   tracking becomes geotemporal movement tracking,
//! * [`crossnet`] — the §1 escalation: stable device names let an observer
//!   follow one client across different networks.

pub mod brian;
pub mod buildings;
pub mod crossnet;
pub mod heist;
pub mod wfh;

pub use brian::{track_devices, DeviceTimeline};
pub use buildings::{movement_traces, BuildingMap, MovementTrace};
pub use crossnet::{cross_network_appearances, CrossNetworkAppearance};
pub use heist::{hourly_activity, quietest_hour, HourlyActivity};
pub use wfh::{percent_of_max, NormalizedSeries};
