//! Building-level geotemporal tracking (§8 discussion).
//!
//! The paper observes that if one knows (or infers, per Zhang et al.) which
//! IP subnets map to which buildings, rDNS-based presence becomes *location*
//! tracking: "one could track, from virtually anywhere on the Internet, a
//! Brian around campus as he goes from lecture to lecture." Given a subnet →
//! building map, [`movement_traces`] turns supplemental rDNS observations of
//! one device into a movement trace across buildings.

use crate::redact::Pii;
use rdns_model::{Ipv4Net, SimTime};
use rdns_scan::ScanLog;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// A subnet → building association, the a-posteriori knowledge of §7.1/§8.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BuildingMap {
    entries: Vec<(Ipv4Net, String)>,
}

impl BuildingMap {
    /// Build from `(prefix, building)` pairs.
    pub fn new<I, S>(entries: I) -> BuildingMap
    where
        I: IntoIterator<Item = (Ipv4Net, S)>,
        S: Into<String>,
    {
        BuildingMap {
            entries: entries.into_iter().map(|(p, b)| (p, b.into())).collect(),
        }
    }

    /// The building an address belongs to (most-specific match).
    pub fn building_of(&self, addr: Ipv4Addr) -> Option<&str> {
        self.entries
            .iter()
            .filter(|(p, _)| p.contains(addr))
            .max_by_key(|(p, _)| p.len())
            .map(|(_, b)| b.as_str())
    }

    /// Number of mapped prefixes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One sighting of a device in a building.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sighting {
    /// First observation in this building (for this visit).
    pub from: SimTime,
    /// Last observation of the visit.
    pub to: SimTime,
    /// Building label.
    pub building: String,
}

/// The movement trace of one device host label.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MovementTrace {
    /// The device's host label (e.g. `brians-mbp`).
    pub host: String,
    /// Chronological visits; consecutive sightings in the same building are
    /// merged into one visit.
    pub visits: Vec<Sighting>,
}

impl MovementTrace {
    /// Number of building-to-building transitions.
    pub fn transitions(&self) -> usize {
        self.visits
            .windows(2)
            .filter(|w| w[0].building != w[1].building)
            .count()
    }

    /// Distinct buildings visited.
    pub fn buildings(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.visits.iter().map(|v| v.building.as_str()).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Render the trace as one line per visit.
    ///
    /// The heading discloses the host label via [`Pii::reveal`]: this is the
    /// §8 case-study output, where naming the tracked device is the point.
    pub fn render(&self) -> String {
        let heading = Pii::new(self.host.as_str()).reveal().to_string();
        let mut out = format!("{heading}:\n");
        for v in &self.visits {
            out.push_str(&format!("  {} .. {}  {}\n", v.from, v.to, v.building));
        }
        out
    }
}

/// Extract movement traces for every device whose host label contains
/// `needle`, using the given building map.
pub fn movement_traces(log: &ScanLog, needle: &str, map: &BuildingMap) -> Vec<MovementTrace> {
    let needle = needle.to_ascii_lowercase();
    // host label → chronological (ts, building).
    let mut sightings: BTreeMap<String, Vec<(SimTime, String)>> = BTreeMap::new();
    for r in &log.rdns {
        let Some(host) = r.outcome.hostname() else {
            continue;
        };
        let Some(label) = host.host_label() else {
            continue;
        };
        if !label.contains(&needle) {
            continue;
        }
        let Some(building) = map.building_of(r.addr) else {
            continue;
        };
        sightings
            .entry(label.to_string())
            .or_default()
            .push((r.ts, building.to_string()));
    }

    sightings
        .into_iter()
        .map(|(host, mut obs)| {
            obs.sort_by_key(|(ts, _)| *ts);
            let mut visits: Vec<Sighting> = Vec::new();
            for (ts, building) in obs {
                match visits.last_mut() {
                    Some(last) if last.building == building => last.to = ts,
                    _ => visits.push(Sighting {
                        from: ts,
                        to: ts,
                        building,
                    }),
                }
            }
            MovementTrace { host, visits }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdns_model::{Date, Hostname, SimDuration};
    use rdns_scan::RdnsOutcome;

    fn map() -> BuildingMap {
        BuildingMap::new([
            ("10.0.1.0/24".parse::<Ipv4Net>().unwrap(), "library"),
            ("10.0.2.0/24".parse().unwrap(), "physics-hall"),
            ("10.0.3.0/24".parse().unwrap(), "dorm-west"),
        ])
    }

    fn t(h: u8, m: u8) -> SimTime {
        SimTime::from_date_hms(Date::from_ymd(2021, 11, 22), h, m, 0)
    }

    fn sample_log() -> ScanLog {
        let mut log = ScanLog::new();
        let host = RdnsOutcome::Ptr(Hostname::new("brians-mbp.campus.example.edu"));
        // Morning in the library (two sightings merge into one visit)...
        log.push_rdns(t(9, 0), "10.0.1.50".parse().unwrap(), host.clone());
        log.push_rdns(t(9, 30), "10.0.1.50".parse().unwrap(), host.clone());
        // ...lecture in physics hall...
        log.push_rdns(t(11, 0), "10.0.2.17".parse().unwrap(), host.clone());
        // ...evening in the dorm.
        log.push_rdns(t(19, 0), "10.0.3.9".parse().unwrap(), host.clone());
        // An unrelated device never appears in brian traces.
        log.push_rdns(
            t(12, 0),
            "10.0.1.51".parse().unwrap(),
            RdnsOutcome::Ptr(Hostname::new("emmas-ipad.campus.example.edu")),
        );
        log
    }

    #[test]
    fn building_map_lookup() {
        let m = map();
        assert_eq!(m.building_of("10.0.2.200".parse().unwrap()), Some("physics-hall"));
        assert_eq!(m.building_of("192.0.2.1".parse().unwrap()), None);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    fn most_specific_prefix_wins() {
        let m = BuildingMap::new([
            ("10.0.0.0/16".parse::<Ipv4Net>().unwrap(), "campus"),
            ("10.0.2.0/24".parse().unwrap(), "physics-hall"),
        ]);
        assert_eq!(m.building_of("10.0.2.1".parse().unwrap()), Some("physics-hall"));
        assert_eq!(m.building_of("10.0.9.1".parse().unwrap()), Some("campus"));
    }

    #[test]
    fn trace_follows_brian_across_campus() {
        let traces = movement_traces(&sample_log(), "brian", &map());
        assert_eq!(traces.len(), 1);
        let trace = &traces[0];
        assert_eq!(trace.host, "brians-mbp");
        assert_eq!(trace.visits.len(), 3);
        assert_eq!(
            trace.buildings(),
            vec!["dorm-west", "library", "physics-hall"]
        );
        assert_eq!(trace.transitions(), 2);
        // Consecutive library sightings merged.
        assert_eq!(trace.visits[0].building, "library");
        assert_eq!(trace.visits[0].to.since_sat(trace.visits[0].from), SimDuration::mins(30));
        assert!(trace.render().contains("physics-hall"));
    }

    #[test]
    fn unmapped_addresses_ignored() {
        let mut log = sample_log();
        log.push_rdns(
            t(20, 0),
            "172.16.0.1".parse().unwrap(),
            RdnsOutcome::Ptr(Hostname::new("brians-mbp.campus.example.edu")),
        );
        let traces = movement_traces(&log, "brian", &map());
        assert_eq!(traces[0].visits.len(), 3, "unmapped sighting must not appear");
    }

    #[test]
    fn empty_inputs() {
        assert!(movement_traces(&ScanLog::new(), "brian", &map()).is_empty());
        let traces = movement_traces(&sample_log(), "zebediah", &map());
        assert!(traces.is_empty());
    }
}
