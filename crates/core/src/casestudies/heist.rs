//! §7.3 — When to stage a heist?
//!
//! Hourly activity profiles from supplemental data: the number of rDNS
//! measurements seeing a PTR and the number of ICMP responses per hour
//! (Fig. 11). The diurnal low — early morning — is "a good time".

use rdns_model::{Date, SimDuration, SimTime};
use rdns_scan::ScanLog;
use serde::{Deserialize, Serialize};

/// Hourly activity counts over a date range.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HourlyActivity {
    /// `(hour start, ICMP-alive samples, rDNS PTR samples)` per hour.
    pub hours: Vec<(SimTime, usize, usize)>,
}

impl HourlyActivity {
    /// Aggregate by hour of day across all days: `[ (icmp, rdns); 24 ]`.
    pub fn by_hour_of_day(&self) -> [(usize, usize); 24] {
        let mut out = [(0usize, 0usize); 24];
        for (ts, icmp, rdns) in &self.hours {
            let h = ts.hour() as usize;
            out[h].0 += icmp;
            out[h].1 += rdns;
        }
        out
    }

    /// Peak combined activity in any hour (for plotting scales).
    pub fn max_counts(&self) -> (usize, usize) {
        (
            self.hours.iter().map(|(_, i, _)| *i).max().unwrap_or(0),
            self.hours.iter().map(|(_, _, r)| *r).max().unwrap_or(0),
        )
    }
}

/// Count per-hour activity in `[from, from + days)`.
pub fn hourly_activity(log: &ScanLog, from: Date, days: u32) -> HourlyActivity {
    let start = SimTime::from_date(from);
    let end = start + SimDuration::days(days as u64);
    let n_hours = (days * 24) as usize;
    let mut icmp = vec![0usize; n_hours];
    let mut rdns = vec![0usize; n_hours];
    let idx = |ts: SimTime| -> Option<usize> {
        if ts >= start && ts < end {
            Some((ts.since_sat(start).as_secs() / 3600) as usize)
        } else {
            None
        }
    };
    for r in &log.icmp {
        if r.alive {
            if let Some(i) = idx(r.ts) {
                icmp[i] += 1;
            }
        }
    }
    for r in &log.rdns {
        if r.outcome.hostname().is_some() {
            if let Some(i) = idx(r.ts) {
                rdns[i] += 1;
            }
        }
    }
    HourlyActivity {
        hours: (0..n_hours)
            .map(|i| {
                (
                    start + SimDuration::hours(i as u64),
                    icmp[i],
                    rdns[i],
                )
            })
            .collect(),
    }
}

/// The robber's answer: the hour of day with the least rDNS-observed
/// activity (ties broken toward the earliest hour), computed from rDNS data
/// alone — no ICMP required.
pub fn quietest_hour(activity: &HourlyActivity) -> u8 {
    let by_hour = activity.by_hour_of_day();
    by_hour
        .iter()
        .enumerate()
        .min_by_key(|(h, (_, rdns))| (*rdns, *h))
        .map(|(h, _)| h as u8)
        .expect("24 hours always present")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdns_model::Hostname;
    use rdns_scan::RdnsOutcome;
    use std::net::Ipv4Addr;

    fn log_with_diurnal_pattern(days: u32) -> ScanLog {
        let mut log = ScanLog::new();
        let from = Date::from_ymd(2021, 11, 1);
        let addr: Ipv4Addr = "10.0.0.1".parse().unwrap();
        for day in 0..days {
            let base = SimTime::from_date(from.plus_days(day as i64));
            for hour in 0..24u64 {
                // Busy 9-22, quiet at night, dead quiet at 6.
                let samples = match hour {
                    6 => 0,
                    0..=8 => 2,
                    9..=21 => 10,
                    _ => 4,
                };
                for s in 0..samples {
                    let ts = base + SimDuration::hours(hour) + SimDuration::mins(s * 5);
                    log.push_icmp(ts, addr, true);
                    log.push_rdns(ts, addr, RdnsOutcome::Ptr(Hostname::new("x.example.edu")));
                }
            }
        }
        log
    }

    #[test]
    fn hourly_counting() {
        let log = log_with_diurnal_pattern(1);
        let act = hourly_activity(&log, Date::from_ymd(2021, 11, 1), 1);
        assert_eq!(act.hours.len(), 24);
        let (_, icmp_noon, rdns_noon) = act.hours[12];
        assert_eq!(icmp_noon, 10);
        assert_eq!(rdns_noon, 10);
        let (_, icmp_6, rdns_6) = act.hours[6];
        assert_eq!(icmp_6, 0);
        assert_eq!(rdns_6, 0);
    }

    #[test]
    fn quietest_hour_is_six_am() {
        let log = log_with_diurnal_pattern(7);
        let act = hourly_activity(&log, Date::from_ymd(2021, 11, 1), 7);
        assert_eq!(quietest_hour(&act), 6);
    }

    #[test]
    fn out_of_range_samples_ignored() {
        let mut log = log_with_diurnal_pattern(1);
        // Sample a week later must not land anywhere.
        log.push_icmp(
            SimTime::from_date(Date::from_ymd(2021, 11, 20)),
            "10.0.0.1".parse().unwrap(),
            true,
        );
        let act = hourly_activity(&log, Date::from_ymd(2021, 11, 1), 1);
        let total: usize = act.hours.iter().map(|(_, i, _)| i).sum();
        let expected: usize = (0..24)
            .map(|h| match h {
                6 => 0,
                0..=8 => 2,
                9..=21 => 10,
                _ => 4,
            })
            .sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn dead_probes_and_errors_not_counted() {
        let mut log = ScanLog::new();
        let ts = SimTime::from_date_hms(Date::from_ymd(2021, 11, 1), 12, 0, 0);
        log.push_icmp(ts, "10.0.0.1".parse().unwrap(), false);
        log.push_rdns(ts, "10.0.0.1".parse().unwrap(), RdnsOutcome::NxDomain);
        let act = hourly_activity(&log, Date::from_ymd(2021, 11, 1), 1);
        assert_eq!(act.hours[12], (ts.truncate(3600), 0, 0));
    }

    #[test]
    fn aggregation_by_hour_of_day() {
        let log = log_with_diurnal_pattern(3);
        let act = hourly_activity(&log, Date::from_ymd(2021, 11, 1), 3);
        let by_hour = act.by_hour_of_day();
        assert_eq!(by_hour[12].0, 30); // 10 per day × 3 days
        assert_eq!(by_hour[6].1, 0);
        let (icmp_max, rdns_max) = act.max_counts();
        assert_eq!(icmp_max, 10);
        assert_eq!(rdns_max, 10);
    }
}
