//! Term extraction and filtering (§5.1).
//!
//! The paper extracts alphabetic words from PTR records, identifies suffix
//! keywords and generic router-level terms, and tracks the device-indicating
//! terms of Fig. 3 that co-appear with given names.

use rdns_model::Hostname;
use std::collections::HashMap;

/// Generic terms that convey location or router-level information (§5.1);
/// records containing them are excluded from the client-leak pipeline.
pub const GENERIC_TERMS: [&str; 20] = [
    "north", "south", "east", "west", "core", "edge", "border", "uplink", "transit", "peer",
    "gateway", "router", "switch", "vlan", "static", "mgmt", "infra", "dsl", "pon", "pop",
];

/// The device-indicating terms of Fig. 3.
pub const DEVICE_TERMS: [&str; 14] = [
    "ipad", "air", "laptop", "phone", "dell", "desktop", "iphone", "mbp", "android", "macbook",
    "galaxy", "lenovo", "chrome", "roku",
];

/// Extract lower-case alphabetic words of three or more characters from a
/// hostname (§5.2 notes that shorter terms add too much noise).
pub fn extract_terms(hostname: &Hostname) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    for ch in hostname.as_str().chars() {
        if ch.is_ascii_alphabetic() {
            current.push(ch.to_ascii_lowercase());
        } else if !current.is_empty() {
            if current.len() >= 3 {
                out.push(std::mem::take(&mut current));
            } else {
                current.clear();
            }
        }
    }
    if current.len() >= 3 {
        out.push(current);
    }
    out
}

/// Whether a record looks router-level: its *host-specific* labels (i.e.
/// everything left of the TLD+1 suffix) contain a generic term.
pub fn is_router_level(hostname: &Hostname) -> bool {
    let labels: Vec<&str> = hostname.labels().collect();
    if labels.len() <= 2 {
        return false;
    }
    let host_part = &labels[..labels.len() - 2];
    host_part.iter().any(|label| {
        let label_terms = extract_terms(&Hostname::new(label));
        label_terms.iter().any(|t| GENERIC_TERMS.contains(&t.as_str()))
    })
}

/// Frequency table of terms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TermCounts {
    counts: HashMap<String, u64>,
}

impl TermCounts {
    /// An empty table.
    pub fn new() -> TermCounts {
        TermCounts::default()
    }

    /// Count every term of `hostname` once per record occurrence.
    pub fn observe(&mut self, hostname: &Hostname) {
        for term in extract_terms(hostname) {
            *self.counts.entry(term).or_insert(0) += 1;
        }
    }

    /// Occurrences of one term.
    pub fn count(&self, term: &str) -> u64 {
        self.counts.get(term).copied().unwrap_or(0)
    }

    /// Total distinct terms.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The Fig. 3 rows: counts for each device term, plus the total.
    pub fn device_term_counts(&self) -> Vec<(&'static str, u64)> {
        let mut rows: Vec<(&'static str, u64)> = DEVICE_TERMS
            .iter()
            .map(|t| (*t, self.count(t)))
            .collect();
        rows.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
        rows
    }

    /// Sum over device terms (the `total` column of Fig. 3).
    pub fn device_term_total(&self) -> u64 {
        DEVICE_TERMS.iter().map(|t| self.count(t)).sum()
    }

    /// Terms occurring at least `n` times, most frequent first.
    pub fn frequent(&self, n: u64) -> Vec<(&str, u64)> {
        let mut rows: Vec<(&str, u64)> = self
            .counts
            .iter()
            .filter(|(_, c)| **c >= n)
            .map(|(t, c)| (t.as_str(), *c))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn extracts_words_of_three_plus() {
        let h = Hostname::new("brians-iphone.resnet.example.edu");
        let terms = extract_terms(&h);
        assert!(terms.contains(&"brians".to_string()));
        assert!(terms.contains(&"iphone".to_string()));
        assert!(terms.contains(&"resnet".to_string()));
        assert!(terms.contains(&"edu".to_string()));
    }

    #[test]
    fn short_fragments_dropped() {
        // The paper's `hp` example: two-character terms are noise.
        let h = Hostname::new("hp-12.gw1.example.com");
        let terms = extract_terms(&h);
        assert!(!terms.contains(&"hp".to_string()));
        assert!(!terms.contains(&"gw".to_string()));
        assert!(terms.contains(&"example".to_string()));
    }

    #[test]
    fn digits_split_terms() {
        let h = Hostname::new("host123name.example.org");
        let terms = extract_terms(&h);
        assert!(terms.contains(&"host".to_string()));
        assert!(terms.contains(&"name".to_string()));
        assert!(!terms.contains(&"host123name".to_string()));
    }

    #[test]
    fn router_level_detection() {
        assert!(is_router_level(&Hostname::new("core-north1.net.someisp.com")));
        assert!(is_router_level(&Hostname::new("gi0-1.edge.someisp.com")));
        assert!(!is_router_level(&Hostname::new(
            "brians-iphone.resnet.example.edu"
        )));
        // Generic term inside the suffix itself does not count.
        assert!(!is_router_level(&Hostname::new("brians-ipad.static.example")));
        // Too-short names can't be router-level.
        assert!(!is_router_level(&Hostname::new("example.com")));
    }

    #[test]
    fn term_counting_and_device_rows() {
        let mut tc = TermCounts::new();
        tc.observe(&Hostname::new("brians-iphone.example.edu"));
        tc.observe(&Hostname::new("emmas-iphone.example.edu"));
        tc.observe(&Hostname::new("emmas-ipad.example.edu"));
        assert_eq!(tc.count("iphone"), 2);
        assert_eq!(tc.count("ipad"), 1);
        assert_eq!(tc.count("galaxy"), 0);
        assert_eq!(tc.device_term_total(), 3);
        let rows = tc.device_term_counts();
        assert_eq!(rows[0], ("iphone", 2));
        assert_eq!(rows.len(), DEVICE_TERMS.len());
    }

    #[test]
    fn frequent_terms_sorted() {
        let mut tc = TermCounts::new();
        for _ in 0..5 {
            tc.observe(&Hostname::new("alpha.example.org"));
        }
        tc.observe(&Hostname::new("beta.example.org"));
        let rows = tc.frequent(2);
        // "example" and "org" appear 6x (both hostnames), "alpha" 5x.
        assert_eq!(rows[0].0, "example");
        assert_eq!(rows[0].1, 6);
        assert!(rows.iter().any(|(t, c)| *t == "alpha" && *c == 5));
        assert!(!rows.iter().any(|(t, _)| *t == "beta"));
    }

    #[test]
    fn device_terms_match_figure3() {
        assert_eq!(DEVICE_TERMS.len(), 14);
        for t in ["iphone", "galaxy", "mbp", "roku", "chrome"] {
            assert!(DEVICE_TERMS.contains(&t));
        }
    }

    proptest! {
        #[test]
        fn prop_terms_are_lowercase_alpha(s in "[A-Za-z0-9.-]{0,40}") {
            for t in extract_terms(&Hostname::new(&s)) {
                prop_assert!(t.len() >= 3);
                prop_assert!(t.chars().all(|c| c.is_ascii_lowercase()));
            }
        }

        #[test]
        fn prop_observe_never_decreases(s in "[a-z.-]{0,30}") {
            let mut tc = TermCounts::new();
            tc.observe(&Hostname::new("fixed-term.example.org"));
            let before = tc.count("fixed");
            tc.observe(&Hostname::new(&s));
            prop_assert!(tc.count("fixed") >= before);
        }
    }
}
