//! Activity groups and PTR-removal timing (§6.1–§6.2).
//!
//! Supplemental-measurement data points are merged per IP address on
//! 5-minute truncated timestamps; each contiguous activity period of an
//! address becomes an [`ActivityGroup`]. Groups flow through the Table 5
//! funnel (all → successful responses → PTR reverted → reliable timing) and
//! reliable groups yield the removal-delay distribution of Fig. 7.

use rayon::prelude::*;
use rdns_model::{GroupId, Hostname, SimDuration, SimTime};
use rdns_scan::{RdnsOutcome, ScanLog};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// The paper's merge bin: five minutes.
pub const MERGE_BIN_SECS: u64 = 300;

/// One contiguous activity period of one address.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityGroup {
    /// Group identifier.
    pub id: GroupId,
    /// The address.
    pub addr: Ipv4Addr,
    /// First alive ICMP sample (5-minute truncated).
    pub first_alive: SimTime,
    /// Last alive ICMP sample.
    pub last_alive: SimTime,
    /// The first unanswered ICMP probe after `last_alive`, when observed.
    pub death_ts: Option<SimTime>,
    /// First successful PTR observation within the group window.
    pub first_ptr: Option<(SimTime, Hostname)>,
    /// First NXDOMAIN at/after client disappearance — the observed record
    /// removal.
    pub removal_ts: Option<SimTime>,
    /// Whether any lookup in the window failed (SERVFAIL/timeout).
    pub had_error: bool,
}

impl ActivityGroup {
    /// Phase 3 observed: the client was seen leaving.
    pub fn terminated(&self) -> bool {
        self.death_ts.is_some()
    }

    /// Table 5 "Successful responses": ICMP and rDNS succeeded for both the
    /// join and the leave phases, with no resolution errors in between.
    pub fn successful(&self) -> bool {
        self.terminated() && self.first_ptr.is_some() && !self.had_error
    }

    /// Table 5 "PTR reverted": the record demonstrably disappeared after the
    /// client left.
    pub fn ptr_reverted(&self) -> bool {
        self.successful() && self.removal_ts.is_some()
    }

    /// Table 5 "Reliable timing alignment": the leave moment is pinned
    /// tightly enough by the ICMP probes. Departures caught while the
    /// back-off was still probing every 5–10 minutes qualify; later stages
    /// probe too sparsely to date the departure (§6.2's exclusion of groups
    /// whose "timing mechanics of the ICMP probes … make the results less
    /// reliable").
    pub fn reliable(&self) -> bool {
        match self.death_ts {
            Some(death) if self.ptr_reverted() => {
                death.since_sat(self.last_alive) <= SimDuration::secs(3 * MERGE_BIN_SECS)
            }
            _ => false,
        }
    }

    /// Minutes between the last alive ICMP sample and the observed PTR
    /// removal — the x-axis of Fig. 7.
    pub fn removal_delay(&self) -> Option<SimDuration> {
        let removal = self.removal_ts?;
        Some(removal.since_sat(self.last_alive))
    }
}

/// One address's ICMP samples and rDNS lookups, truncated to merge bins.
type AddrStreams = (Vec<(SimTime, bool)>, Vec<(SimTime, RdnsOutcome)>);

/// Per-address event streams, merged on truncated timestamps — the unit of
/// work shared by the sequential and parallel group builders.
fn collect_per_addr(log: &ScanLog) -> BTreeMap<Ipv4Addr, AddrStreams> {
    let mut per_addr: BTreeMap<Ipv4Addr, AddrStreams> = BTreeMap::new();
    for r in &log.icmp {
        per_addr
            .entry(r.addr)
            .or_default()
            .0
            .push((r.ts.truncate(MERGE_BIN_SECS), r.alive));
    }
    for r in &log.rdns {
        per_addr
            .entry(r.addr)
            .or_default()
            .1
            .push((r.ts.truncate(MERGE_BIN_SECS), r.outcome.clone()));
    }
    per_addr
}

/// Build groups from a scan log (both record streams merged per address on
/// truncated timestamps).
pub fn build_groups(log: &ScanLog) -> Vec<ActivityGroup> {
    let mut groups = Vec::new();
    for (addr, (samples, lookups)) in collect_per_addr(log) {
        groups.extend(groups_for_addr(addr, samples, &lookups));
    }
    renumber(&mut groups);
    groups
}

/// Like [`build_groups`], reporting the number of groups built to
/// `registry` as `rdns_core_groups_built_total`. Grouping is a pure
/// function of the scan log, hence seed-stable.
pub fn build_groups_metered(
    log: &ScanLog,
    registry: &rdns_telemetry::Registry,
) -> Vec<ActivityGroup> {
    let groups = build_groups(log);
    registry
        .counter(
            "rdns_core_groups_built_total",
            "Activity groups built from merged scan-log streams.",
            rdns_telemetry::Determinism::SeedStable,
        )
        .add(groups.len() as u64);
    groups
}

/// [`build_groups`] with the per-address work fanned out across the rayon
/// pool. Addresses are independent; results are flattened in ascending
/// address order and renumbered exactly like the sequential path, so the
/// output is identical at any thread count.
pub fn par_build_groups(log: &ScanLog) -> Vec<ActivityGroup> {
    let per_addr: Vec<(Ipv4Addr, AddrStreams)> = collect_per_addr(log).into_iter().collect();
    let mut groups: Vec<ActivityGroup> = per_addr
        .into_par_iter()
        .flat_map(|(addr, (samples, lookups))| groups_for_addr(addr, samples, &lookups))
        .collect();
    renumber(&mut groups);
    groups
}

/// Assign sequential ids in the (already address-ordered) group order.
fn renumber(groups: &mut [ActivityGroup]) {
    for (i, g) in groups.iter_mut().enumerate() {
        g.id = GroupId(i as u64);
    }
}

/// All activity groups of one address. Ids are placeholders; the caller
/// renumbers after flattening.
fn groups_for_addr(
    addr: Ipv4Addr,
    mut samples: Vec<(SimTime, bool)>,
    lookups: &[(SimTime, RdnsOutcome)],
) -> Vec<ActivityGroup> {
    samples.sort_by_key(|(ts, _)| *ts);

    // Split into alive runs terminated by dead probes.
    let mut runs: Vec<(SimTime, SimTime, Option<SimTime>)> = Vec::new();
    let mut current: Option<(SimTime, SimTime)> = None;
    for (ts, alive) in samples {
        match (&mut current, alive) {
            (None, true) => current = Some((ts, ts)),
            (None, false) => {} // dead probe without preceding run
            (Some((_, last)), true) => *last = ts,
            (Some((first, last)), false) => {
                runs.push((*first, *last, Some(ts)));
                current = None;
            }
        }
    }
    if let Some((first, last)) = current {
        runs.push((first, last, None)); // unterminated at log end
    }

    let next_starts: Vec<Option<SimTime>> = (0..runs.len())
        .map(|i| runs.get(i + 1).map(|(first, _, _)| *first))
        .collect();
    let mut groups = Vec::with_capacity(runs.len());
    for (i, (first_alive, last_alive, death_ts)) in runs.into_iter().enumerate() {
            // Window: from just before this run's start until the next run
            // begins (the rDNS watch after a departure may span hours).
            let window_end = next_starts[i];
            let in_window = |ts: SimTime| -> bool {
                if ts < first_alive - SimDuration::secs(MERGE_BIN_SECS) {
                    return false;
                }
                match (death_ts, window_end) {
                    (Some(_), Some(end)) => ts < end,
                    (Some(_), None) => true,
                    (None, _) => ts <= last_alive,
                }
            };

            let mut first_ptr: Option<(SimTime, Hostname)> = None;
            let mut removal_ts: Option<SimTime> = None;
            let mut had_error = false;
            for (ts, outcome) in lookups {
                if !in_window(*ts) {
                    continue;
                }
                // Stop scanning once the post-death removal was found.
                if let Some(removal) = removal_ts {
                    if *ts > removal {
                        continue;
                    }
                }
                match outcome {
                    RdnsOutcome::Ptr(h) => {
                        if first_ptr.is_none() && *ts <= death_ts.unwrap_or(*ts) {
                            first_ptr = Some((*ts, h.clone()));
                        }
                    }
                    RdnsOutcome::NxDomain => {
                        if let Some(death) = death_ts {
                            if *ts >= death && removal_ts.is_none() {
                                removal_ts = Some(*ts);
                            }
                        }
                    }
                    RdnsOutcome::NameserverFailure | RdnsOutcome::Timeout => {
                        had_error = true;
                    }
                }
            }

            groups.push(ActivityGroup {
                id: GroupId(0), // placeholder; renumbered by the caller
                addr,
                first_alive,
                last_alive,
                death_ts,
                first_ptr,
                removal_ts,
                had_error,
            });
        }
    groups
}

/// The Table 5 funnel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GroupFunnel {
    /// All groups.
    pub all: usize,
    /// Successful responses.
    pub successful: usize,
    /// PTR reverted.
    pub ptr_reverted: usize,
    /// Reliable timing alignment.
    pub reliable: usize,
}

impl GroupFunnel {
    /// Compute from groups.
    pub fn compute(groups: &[ActivityGroup]) -> GroupFunnel {
        GroupFunnel {
            all: groups.len(),
            successful: groups.iter().filter(|g| g.successful()).count(),
            ptr_reverted: groups.iter().filter(|g| g.ptr_reverted()).count(),
            reliable: groups.iter().filter(|g| g.reliable()).count(),
        }
    }

    /// Rows as `(label, count, fraction of parent)` — Table 5's shape.
    pub fn rows(&self) -> Vec<(&'static str, usize, f64)> {
        let frac = |num: usize, den: usize| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64 * 100.0
            }
        };
        vec![
            ("All groups", self.all, 100.0),
            ("Successful responses", self.successful, frac(self.successful, self.all)),
            ("PTR reverted", self.ptr_reverted, frac(self.ptr_reverted, self.successful)),
            (
                "Reliable timing alignment",
                self.reliable,
                frac(self.reliable, self.ptr_reverted),
            ),
        ]
    }
}

/// The removal-delay distribution of Fig. 7.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RemovalDelays {
    /// Delays in minutes, unsorted.
    pub minutes: Vec<f64>,
}

impl RemovalDelays {
    /// Extract delays from the *reliable* groups.
    pub fn from_groups(groups: &[ActivityGroup]) -> RemovalDelays {
        RemovalDelays {
            minutes: groups
                .iter()
                .filter(|g| g.reliable())
                .filter_map(|g| g.removal_delay())
                .map(|d| d.as_mins_f64())
                .collect(),
        }
    }

    /// Number of delays.
    pub fn len(&self) -> usize {
        self.minutes.len()
    }

    /// Whether there are no delays.
    pub fn is_empty(&self) -> bool {
        self.minutes.is_empty()
    }

    /// Histogram with `bin_mins`-minute bins up to `max_mins` (Fig. 7a).
    pub fn histogram(&self, bin_mins: f64, max_mins: f64) -> Vec<(f64, usize)> {
        let bins = (max_mins / bin_mins).ceil() as usize;
        let mut counts = vec![0usize; bins];
        for &m in &self.minutes {
            if m < max_mins {
                counts[(m / bin_mins) as usize] += 1;
            }
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| (i as f64 * bin_mins, c))
            .collect()
    }

    /// Empirical CDF value at `mins` (Fig. 7b).
    pub fn cdf_at(&self, mins: f64) -> f64 {
        if self.minutes.is_empty() {
            return 0.0;
        }
        let within = self.minutes.iter().filter(|&&m| m <= mins).count();
        within as f64 / self.minutes.len() as f64
    }

    /// The headline number: fraction of removals within one hour.
    pub fn fraction_within_hour(&self) -> f64 {
        self.cdf_at(60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdns_model::Date;

    fn t(mins: u64) -> SimTime {
        SimTime::from_date(Date::from_ymd(2021, 11, 1)) + SimDuration::mins(mins)
    }

    fn a(i: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, i)
    }

    /// A canonical lifecycle log: discover at 60, alive until 100, dead at
    /// 105, PTR present from discovery, removed at 145.
    fn lifecycle_log() -> ScanLog {
        let mut log = ScanLog::new();
        log.push_rdns(t(60), a(1), RdnsOutcome::Ptr(Hostname::new("brians-air.example.edu")));
        for m in [60, 65, 70, 75, 80, 85, 90, 95, 100] {
            log.push_icmp(t(m), a(1), true);
        }
        log.push_icmp(t(105), a(1), false);
        for m in [105, 110, 115, 120, 125, 130, 135, 140] {
            log.push_rdns(t(m), a(1), RdnsOutcome::Ptr(Hostname::new("brians-air.example.edu")));
        }
        log.push_rdns(t(145), a(1), RdnsOutcome::NxDomain);
        log
    }

    #[test]
    fn lifecycle_group_construction() {
        let groups = build_groups(&lifecycle_log());
        assert_eq!(groups.len(), 1);
        let g = &groups[0];
        assert_eq!(g.addr, a(1));
        assert_eq!(g.first_alive, t(60));
        assert_eq!(g.last_alive, t(100));
        assert_eq!(g.death_ts, Some(t(105)));
        assert_eq!(g.removal_ts, Some(t(145)));
        assert_eq!(
            g.first_ptr.as_ref().unwrap().1,
            Hostname::new("brians-air.example.edu")
        );
        assert!(!g.had_error);
        assert!(g.successful());
        assert!(g.ptr_reverted());
        assert!(g.reliable());
        // Delay: 145 - 100 = 45 minutes.
        assert_eq!(g.removal_delay(), Some(SimDuration::mins(45)));
    }

    #[test]
    fn funnel_counts() {
        let groups = build_groups(&lifecycle_log());
        let funnel = GroupFunnel::compute(&groups);
        assert_eq!(funnel.all, 1);
        assert_eq!(funnel.successful, 1);
        assert_eq!(funnel.ptr_reverted, 1);
        assert_eq!(funnel.reliable, 1);
        let rows = funnel.rows();
        assert_eq!(rows[0].0, "All groups");
        assert!((rows[1].2 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn unterminated_run_is_unsuccessful() {
        let mut log = ScanLog::new();
        log.push_rdns(t(0), a(1), RdnsOutcome::Ptr(Hostname::new("x.example")));
        log.push_icmp(t(0), a(1), true);
        log.push_icmp(t(5), a(1), true);
        let groups = build_groups(&log);
        assert_eq!(groups.len(), 1);
        assert!(!groups[0].terminated());
        assert!(!groups[0].successful());
        let funnel = GroupFunnel::compute(&groups);
        assert_eq!(funnel.all, 1);
        assert_eq!(funnel.successful, 0);
    }

    #[test]
    fn errors_disqualify_from_successful() {
        let mut log = lifecycle_log();
        log.push_rdns(t(120), a(1), RdnsOutcome::Timeout);
        let groups = build_groups(&log);
        assert!(groups[0].had_error);
        assert!(!groups[0].successful());
        assert!(!groups[0].reliable());
    }

    #[test]
    fn missing_first_ptr_disqualifies() {
        let mut log = ScanLog::new();
        // Device alive but NXDOMAIN at discovery (no PTR published).
        log.push_rdns(t(60), a(1), RdnsOutcome::NxDomain);
        for m in [60, 65, 70] {
            log.push_icmp(t(m), a(1), true);
        }
        log.push_icmp(t(75), a(1), false);
        log.push_rdns(t(75), a(1), RdnsOutcome::NxDomain);
        let groups = build_groups(&log);
        assert_eq!(groups.len(), 1);
        assert!(!groups[0].successful());
    }

    #[test]
    fn two_sessions_two_groups() {
        let mut log = lifecycle_log();
        // Second session later the same day.
        log.push_rdns(t(300), a(1), RdnsOutcome::Ptr(Hostname::new("x.example")));
        log.push_icmp(t(300), a(1), true);
        log.push_icmp(t(305), a(1), true);
        log.push_icmp(t(310), a(1), false);
        log.push_rdns(t(315), a(1), RdnsOutcome::NxDomain);
        let groups = build_groups(&log);
        assert_eq!(groups.len(), 2);
        assert_ne!(groups[0].id, groups[1].id);
        assert!(groups.iter().all(|g| g.ptr_reverted()));
        // Second group's removal is its own NXDOMAIN, not the first's.
        assert_eq!(groups[1].removal_ts, Some(t(315)));
    }

    #[test]
    fn late_backoff_departure_is_unreliable() {
        let mut log = ScanLog::new();
        log.push_rdns(t(0), a(1), RdnsOutcome::Ptr(Hostname::new("x.example")));
        // Alive at 0 and 60 (hourly tail), dead at 120: 60-minute gap.
        log.push_icmp(t(0), a(1), true);
        log.push_icmp(t(60), a(1), true);
        log.push_icmp(t(120), a(1), false);
        log.push_rdns(t(125), a(1), RdnsOutcome::NxDomain);
        let groups = build_groups(&log);
        assert!(groups[0].ptr_reverted());
        assert!(!groups[0].reliable(), "60-minute death gap is unreliable");
    }

    #[test]
    fn delays_histogram_and_cdf() {
        let d = RemovalDelays {
            minutes: vec![5.0, 5.0, 45.0, 55.0, 60.0, 125.0],
        };
        let hist = d.histogram(5.0, 180.0);
        assert_eq!(hist.len(), 36);
        assert_eq!(hist[1], (5.0, 2)); // [5,10)
        assert_eq!(hist[9], (45.0, 1));
        assert_eq!(hist[25], (125.0, 1));
        assert!((d.cdf_at(60.0) - 5.0 / 6.0).abs() < 1e-9);
        assert!((d.fraction_within_hour() - 5.0 / 6.0).abs() < 1e-9);
        assert_eq!(d.cdf_at(1000.0), 1.0);
    }

    #[test]
    fn delays_extracted_only_from_reliable_groups() {
        let mut log = lifecycle_log();
        // Add an unreliable group on another address.
        log.push_rdns(t(0), a(2), RdnsOutcome::Ptr(Hostname::new("y.example")));
        log.push_icmp(t(0), a(2), true);
        log.push_icmp(t(90), a(2), false);
        log.push_rdns(t(95), a(2), RdnsOutcome::NxDomain);
        let groups = build_groups(&log);
        let delays = RemovalDelays::from_groups(&groups);
        assert_eq!(delays.len(), 1);
        assert!((delays.minutes[0] - 45.0).abs() < 1e-9);
    }

    #[test]
    fn empty_log_yields_nothing() {
        let groups = build_groups(&ScanLog::new());
        assert!(groups.is_empty());
        let funnel = GroupFunnel::compute(&groups);
        assert_eq!(funnel.all, 0);
        let delays = RemovalDelays::from_groups(&groups);
        assert!(delays.is_empty());
        assert_eq!(delays.cdf_at(60.0), 0.0);
    }

    #[test]
    fn timestamps_are_truncated_to_bins() {
        let mut log = ScanLog::new();
        log.push_icmp(t(60) + SimDuration::secs(42), a(1), true);
        log.push_icmp(t(65) + SimDuration::secs(7), a(1), false);
        let groups = build_groups(&log);
        assert_eq!(groups[0].first_alive, t(60));
        assert_eq!(groups[0].death_ts, Some(t(65)));
    }
}
