//! Suffix statistics and leaking-network identification (§5.1.1).
//!
//! The pipeline over records from *dynamic* /24s:
//!
//! 1. exclude records with generic router-level terms,
//! 2. match the remainder against the given-name list,
//! 3. index by hostname suffix (TLD+1) and compute per suffix the record
//!    count, the number of uniquely matched names, and their ratio,
//! 4. keep suffixes with ≥ `min_unique_names` unique matches (paper: 50)
//!    and a ratio of at least `min_ratio` (paper: 0.1).

use crate::names::match_given_names;
use crate::terms::is_router_level;
use rdns_model::{Hostname, Slash24};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use std::net::Ipv4Addr;

/// Selection thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakParams {
    /// Minimum number of uniquely matched given names per suffix.
    pub min_unique_names: usize,
    /// Minimum ratio of unique names to records.
    pub min_ratio: f64,
}

impl Default for LeakParams {
    fn default() -> Self {
        LeakParams {
            min_unique_names: 50,
            min_ratio: 0.1,
        }
    }
}

impl LeakParams {
    /// Thresholds scaled for reduced-population simulations; the ratio test
    /// is kept at the paper's value.
    pub fn scaled(min_unique_names: usize) -> LeakParams {
        LeakParams {
            min_unique_names,
            min_ratio: 0.1,
        }
    }
}

/// Per-suffix aggregation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SuffixStats {
    /// The TLD+1 suffix identifying the network.
    pub suffix: String,
    /// Records observed under this suffix (within dynamic blocks, after
    /// router-level exclusion).
    pub records: usize,
    /// Records that matched at least one given name.
    pub name_matched_records: usize,
    /// The distinct given names matched.
    pub unique_names: Vec<&'static str>,
}

impl SuffixStats {
    /// Unique-names-to-records ratio (the §5.1.1 criterion 6).
    pub fn ratio(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.unique_names.len() as f64 / self.records as f64
        }
    }

    /// Whether this suffix passes the thresholds.
    pub fn passes(&self, params: &LeakParams) -> bool {
        self.unique_names.len() >= params.min_unique_names && self.ratio() >= params.min_ratio
    }
}

/// Run the suffix pipeline over `(address, hostname)` observations,
/// restricted to the given dynamic blocks. Returns per-suffix statistics
/// for *all* suffixes (callers can inspect near-misses) plus the selected
/// ("identified") suffixes.
pub fn identify_leaking_suffixes<'a, I>(
    observations: I,
    dynamic: &HashSet<Slash24>,
    params: &LeakParams,
) -> (Vec<SuffixStats>, Vec<String>)
where
    I: IntoIterator<Item = (Ipv4Addr, &'a Hostname)>,
{
    struct Acc {
        records: usize,
        matched: usize,
        names: HashSet<&'static str>,
    }
    let mut by_suffix: BTreeMap<String, Acc> = BTreeMap::new();
    let mut seen: HashSet<(Ipv4Addr, &Hostname)> = HashSet::new();

    for (addr, hostname) in observations {
        // Step 0: only dynamic blocks can expose temporal client patterns.
        if !dynamic.contains(&Slash24::containing(addr)) {
            continue;
        }
        // Deduplicate repeated sightings of the same record.
        if !seen.insert((addr, hostname)) {
            continue;
        }
        // Step 2 of §5.1.1: drop router-level records.
        if is_router_level(hostname) {
            continue;
        }
        let Some(suffix) = hostname.tld_plus_one() else {
            continue;
        };
        let acc = by_suffix.entry(suffix).or_insert(Acc {
            records: 0,
            matched: 0,
            names: HashSet::new(),
        });
        acc.records += 1;
        let names = match_given_names(hostname);
        if !names.is_empty() {
            acc.matched += 1;
            acc.names.extend(names);
        }
    }

    let stats: Vec<SuffixStats> = by_suffix
        .into_iter()
        .map(|(suffix, acc)| {
            let mut unique_names: Vec<&'static str> = acc.names.into_iter().collect();
            unique_names.sort();
            SuffixStats {
                suffix,
                records: acc.records,
                name_matched_records: acc.matched,
                unique_names,
            }
        })
        .collect();
    let identified = stats
        .iter()
        .filter(|s| s.passes(params))
        .map(|s| s.suffix.clone())
        .collect();
    (stats, identified)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dynamic_blocks(blocks: &[(u8, u8, u8)]) -> HashSet<Slash24> {
        blocks
            .iter()
            .map(|(a, b, c)| Slash24::from_octets(*a, *b, *c))
            .collect()
    }

    fn obs(entries: &[(&str, &str)]) -> Vec<(Ipv4Addr, Hostname)> {
        entries
            .iter()
            .map(|(a, h)| (a.parse().unwrap(), Hostname::new(h)))
            .collect()
    }

    fn run(
        entries: &[(&str, &str)],
        dynamic: &HashSet<Slash24>,
        params: &LeakParams,
    ) -> (Vec<SuffixStats>, Vec<String>) {
        let observations = obs(entries);
        identify_leaking_suffixes(
            observations.iter().map(|(a, h)| (*a, h)),
            dynamic,
            params,
        )
    }

    #[test]
    fn identifies_leaky_campus() {
        let dynamic = dynamic_blocks(&[(10, 0, 1)]);
        let entries = [
            ("10.0.1.1", "jacobs-iphone.resnet.campus.edu"),
            ("10.0.1.2", "emmas-ipad.resnet.campus.edu"),
            ("10.0.1.3", "noahs-mbp.resnet.campus.edu"),
            ("10.0.1.4", "olivias-dell.resnet.campus.edu"),
            ("10.0.1.5", "desktop-4f2a.resnet.campus.edu"),
        ];
        let (stats, identified) = run(&entries, &dynamic, &LeakParams::scaled(4));
        assert_eq!(identified, vec!["campus.edu".to_string()]);
        let s = &stats[0];
        assert_eq!(s.records, 5);
        assert_eq!(s.name_matched_records, 4);
        assert_eq!(s.unique_names, vec!["emma", "jacob", "noah", "olivia"]);
        assert!((s.ratio() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn static_blocks_excluded() {
        let dynamic = dynamic_blocks(&[]); // nothing dynamic
        let entries = [("10.0.1.1", "jacobs-iphone.resnet.campus.edu")];
        let (stats, identified) = run(&entries, &dynamic, &LeakParams::scaled(1));
        assert!(stats.is_empty());
        assert!(identified.is_empty());
    }

    #[test]
    fn router_records_excluded() {
        let dynamic = dynamic_blocks(&[(10, 0, 1)]);
        let entries = [
            ("10.0.1.1", "jackson.core.someisp.net"),
            ("10.0.1.2", "madison.edge.someisp.net"),
        ];
        let (stats, _) = run(&entries, &dynamic, &LeakParams::scaled(1));
        assert!(stats.is_empty(), "router-level records must be dropped");
    }

    #[test]
    fn city_name_isp_fails_ratio() {
        // An ISP whose *pool* hostnames embed one city name across hundreds
        // of records: passes substring matching, fails ratio/unique tests.
        let dynamic = dynamic_blocks(&[(10, 0, 1)]);
        let mut entries: Vec<(String, String)> = Vec::new();
        for i in 1..=200u32 {
            entries.push((
                format!("10.0.1.{}", (i % 250) + 1),
                format!("cust{i}.jacksonville.someisp.net"),
            ));
        }
        let owned: Vec<(&str, &str)> = entries
            .iter()
            .map(|(a, h)| (a.as_str(), h.as_str()))
            .collect();
        let (stats, identified) = run(&owned, &dynamic, &LeakParams::scaled(5));
        assert!(identified.is_empty());
        // Only one unique name (jackson) despite many records.
        let s = stats.iter().find(|s| s.suffix == "someisp.net").unwrap();
        assert_eq!(s.unique_names, vec!["jackson"]);
        assert!(s.ratio() < 0.1);
    }

    #[test]
    fn duplicate_observations_counted_once() {
        let dynamic = dynamic_blocks(&[(10, 0, 1)]);
        let entries = [
            ("10.0.1.1", "emmas-iphone.campus.edu"),
            ("10.0.1.1", "emmas-iphone.campus.edu"),
            ("10.0.1.1", "emmas-iphone.campus.edu"),
        ];
        let (stats, _) = run(&entries, &dynamic, &LeakParams::default());
        assert_eq!(stats[0].records, 1);
    }

    #[test]
    fn same_hostname_on_new_address_is_a_new_record() {
        let dynamic = dynamic_blocks(&[(10, 0, 1)]);
        let entries = [
            ("10.0.1.1", "emmas-iphone.campus.edu"),
            ("10.0.1.2", "emmas-iphone.campus.edu"),
        ];
        let (stats, _) = run(&entries, &dynamic, &LeakParams::default());
        assert_eq!(stats[0].records, 2);
    }

    #[test]
    fn paper_default_thresholds() {
        let p = LeakParams::default();
        assert_eq!(p.min_unique_names, 50);
        assert!((p.min_ratio - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ratio_threshold_enforced() {
        let dynamic = dynamic_blocks(&[(10, 0, 1)]);
        // 3 unique names across 40 records: ratio 0.075 < 0.1.
        let mut entries: Vec<(String, String)> = Vec::new();
        for i in 0..37u32 {
            entries.push((
                format!("10.0.1.{}", i + 1),
                format!("host-{i}.pool.bigisp.net"),
            ));
        }
        entries.push(("10.0.1.240".into(), "emmas-phone.pool.bigisp.net".into()));
        entries.push(("10.0.1.241".into(), "noahs-phone.pool.bigisp.net".into()));
        entries.push(("10.0.1.242".into(), "liams-phone.pool.bigisp.net".into()));
        let owned: Vec<(&str, &str)> = entries
            .iter()
            .map(|(a, h)| (a.as_str(), h.as_str()))
            .collect();
        let (stats, identified) = run(&owned, &dynamic, &LeakParams::scaled(3));
        let s = stats.iter().find(|s| s.suffix == "bigisp.net").unwrap();
        assert_eq!(s.unique_names.len(), 3);
        assert!(s.ratio() < 0.1);
        assert!(identified.is_empty());
    }
}
