//! A sequence-based tracker: re-identify devices across an epoch boundary
//! from PTR churn patterns alone.
//!
//! This is the adversary the mitigation lab (`rdns-lab`) evaluates policies
//! against. It is deliberately *content-blind*: it never parses what a
//! hostname says, only whether the opaque token at an address stayed equal
//! ([`rdns_data::NameId`] comparison) and how records appeared and
//! disappeared —
//! appearance/disappearance weekday profile, lease-renewal cadence, and
//! `/24` adjacency. That framing makes the lab's central result meaningful:
//! a policy that merely *obscures* names (static salted hashes) leaves the
//! token-equality channel wide open, while rotating the salt pushes the
//! tracker down to behavioural features only.
//!
//! The window is split into two epochs at `split_day`. Track fragments from
//! epoch A are greedily matched to fragments from epoch B by an
//! integer-valued score (floats never enter the matching, so results are
//! byte-stable across platforms and thread counts), and the matching is
//! scored against simulator ground truth (`address → device` per day).

use rdns_data::features::{PresenceTrack, TrackSet};
use std::collections::{BTreeMap, BTreeSet};

/// Score for two fragments carrying the same hostname token. Dominates all
/// behavioural evidence: a persistent token is a perfect cookie.
pub const SCORE_TOKEN: u32 = 1000;
/// Score for fragments in the same `/24`.
pub const SCORE_SAME_SLASH24: u32 = 40;
/// Score for fragments in adjacent `/24`s (same pool spilling over).
pub const SCORE_ADJACENT_SLASH24: u32 = 16;
/// Maximum score from the weekday-presence profile.
pub const SCORE_WEEKDAY_MAX: u32 = 32;
/// Maximum score from lease-renewal cadence similarity.
pub const SCORE_CADENCE_MAX: u32 = 16;

/// Tracker parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackerConfig {
    /// First day (0-based) of epoch B; epoch A is `[0, split_day)`.
    pub split_day: u16,
    /// Minimum score for a candidate link. The default (48) requires either
    /// a token match or same-`/24` co-location plus behavioural agreement —
    /// behavioural evidence alone, across unrelated `/24`s, maxes out at
    /// `SCORE_WEEKDAY_MAX + SCORE_CADENCE_MAX = 48`.
    pub min_score: u32,
}

impl TrackerConfig {
    /// Default thresholds with the given epoch boundary.
    pub fn at_split(split_day: u16) -> TrackerConfig {
        TrackerConfig {
            split_day,
            min_score: 48,
        }
    }
}

/// One epoch-restricted view of a track.
#[derive(Debug, Clone, Copy)]
struct Fragment {
    addr: u32,
    token: rdns_data::NameId,
    /// Weekday-presence bitmask (bit `w` = present on ≥1 ISO weekday `w`).
    weekdays: u8,
    /// Days present within the epoch.
    days_present: u32,
    /// Majority ground-truth device over present days, if any.
    label: Option<u64>,
}

/// The tracker's verdict over one window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TrackerReport {
    /// Fragments observed in epoch A (after the static filter).
    pub fragments_a: usize,
    /// Fragments observed in epoch B.
    pub fragments_b: usize,
    /// Cross-epoch links the tracker asserted.
    pub links: usize,
    /// Links whose two fragments belong to the same ground-truth device.
    pub correct_links: usize,
    /// Devices visible (labelling ≥1 fragment) in *both* epochs — the
    /// recall denominator.
    pub linkable_devices: usize,
    /// Distinct devices correctly re-identified across the boundary.
    pub reidentified_devices: usize,
}

impl TrackerReport {
    /// Fraction of asserted links that were correct (vacuously 1 when the
    /// tracker asserted nothing).
    pub fn precision(&self) -> f64 {
        if self.links == 0 {
            1.0
        } else {
            self.correct_links as f64 / self.links as f64
        }
    }

    /// Fraction of linkable devices re-identified (0 when no device was
    /// observable in both epochs).
    pub fn recall(&self) -> f64 {
        if self.linkable_devices == 0 {
            0.0
        } else {
            self.reidentified_devices as f64 / self.linkable_devices as f64
        }
    }
}

/// Pairwise fragment score — integers only.
fn score(a: &Fragment, b: &Fragment) -> u32 {
    let mut s = 0u32;
    if a.token == b.token {
        s += SCORE_TOKEN;
    }
    let (p24a, p24b) = (a.addr >> 8, b.addr >> 8);
    if p24a == p24b {
        s += SCORE_SAME_SLASH24;
    } else if p24a.abs_diff(p24b) == 1 {
        s += SCORE_ADJACENT_SLASH24;
    }
    let weekday_matches = 7u32.saturating_sub((a.weekdays ^ b.weekdays).count_ones());
    s += weekday_matches * SCORE_WEEKDAY_MAX / 7;
    let cadence_gap = a.days_present.abs_diff(b.days_present);
    s += SCORE_CADENCE_MAX.saturating_sub(2 * cadence_gap);
    s
}

/// Majority ground-truth device over a fragment's present days; ties break
/// to the lowest device id.
fn majority_label(
    addr: u32,
    presence: u64,
    truth: &[BTreeMap<u32, u64>],
) -> Option<u64> {
    let mut votes: BTreeMap<u64, u32> = BTreeMap::new();
    for (d, day) in truth.iter().enumerate() {
        if d < 64 && presence & (1u64 << d) != 0 {
            if let Some(dev) = day.get(&addr) {
                *votes.entry(*dev).or_default() += 1;
            }
        }
    }
    // BTreeMap iteration is ascending by id, and `>` keeps the first
    // (lowest-id) device on equal votes.
    let mut best: Option<(u64, u32)> = None;
    for (dev, n) in votes {
        if best.is_none_or(|(_, bn)| n > bn) {
            best = Some((dev, n));
        }
    }
    best.map(|(dev, _)| dev)
}

fn fragment(
    track: &PresenceTrack,
    set: &TrackSet,
    from: u16,
    to: u16,
    truth: &[BTreeMap<u32, u64>],
) -> Option<Fragment> {
    let lo = from.min(64) as u32;
    let hi = to.min(64) as u32;
    if hi <= lo {
        return None;
    }
    let span_mask = if hi - lo >= 64 {
        u64::MAX
    } else {
        ((1u64 << (hi - lo)) - 1) << lo
    };
    let presence = track.presence & span_mask;
    if presence == 0 {
        return None;
    }
    let mut weekdays = 0u8;
    for d in from..to.min(set.days) {
        if presence & (1u64 << d) != 0 {
            weekdays |= 1 << set.weekday_index(d);
        }
    }
    Some(Fragment {
        addr: track.addr,
        token: track.token,
        weekdays,
        days_present: presence.count_ones(),
        label: majority_label(track.addr, presence, truth),
    })
}

/// Addresses whose single track is present on every day of the window:
/// static records (infrastructure, fixed-form DHCP pools) that carry no
/// churn signal. The tracker excludes them — and so does the paper's §4
/// dynamicity filter, which is the same observation from the other side.
fn static_addrs(set: &TrackSet) -> BTreeSet<u32> {
    if set.days == 0 {
        return BTreeSet::new();
    }
    let full = if set.days >= 64 {
        u64::MAX
    } else {
        (1u64 << set.days) - 1
    };
    let mut tracks_per_addr: BTreeMap<u32, u32> = BTreeMap::new();
    for t in &set.tracks {
        *tracks_per_addr.entry(t.addr).or_default() += 1;
    }
    set.tracks
        .iter()
        .filter(|t| t.presence == full && tracks_per_addr.get(&t.addr) == Some(&1))
        .map(|t| t.addr)
        .collect()
}

/// Run the tracker over one window and score it against ground truth.
///
/// `truth` holds one `address → device` map per window day, captured at the
/// same instants as the observed snapshots.
pub fn link_epochs(
    set: &TrackSet,
    truth: &[BTreeMap<u32, u64>],
    cfg: &TrackerConfig,
) -> TrackerReport {
    let statics = static_addrs(set);
    let mut frags_a = Vec::new();
    let mut frags_b = Vec::new();
    for t in &set.tracks {
        if statics.contains(&t.addr) {
            continue;
        }
        if let Some(f) = fragment(t, set, 0, cfg.split_day, truth) {
            frags_a.push(f);
        }
        if let Some(f) = fragment(t, set, cfg.split_day, set.days, truth) {
            frags_b.push(f);
        }
    }

    // All candidate pairs above threshold, then greedy one-to-one matching
    // in (score desc, a, b) order — fully deterministic.
    let mut candidates: Vec<(u32, usize, usize)> = Vec::new();
    for (i, a) in frags_a.iter().enumerate() {
        for (j, b) in frags_b.iter().enumerate() {
            let s = score(a, b);
            if s >= cfg.min_score {
                candidates.push((s, i, j));
            }
        }
    }
    candidates.sort_unstable_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)).then(x.2.cmp(&y.2)));

    let mut used_a = vec![false; frags_a.len()];
    let mut used_b = vec![false; frags_b.len()];
    let mut links = 0usize;
    let mut correct = 0usize;
    let mut reidentified: BTreeSet<u64> = BTreeSet::new();
    for (_, i, j) in candidates {
        if used_a[i] || used_b[j] {
            continue;
        }
        used_a[i] = true;
        used_b[j] = true;
        links += 1;
        if let (Some(da), Some(db)) = (frags_a[i].label, frags_b[j].label) {
            if da == db {
                correct += 1;
                reidentified.insert(da);
            }
        }
    }

    let devices_a: BTreeSet<u64> = frags_a.iter().filter_map(|f| f.label).collect();
    let devices_b: BTreeSet<u64> = frags_b.iter().filter_map(|f| f.label).collect();
    TrackerReport {
        fragments_a: frags_a.len(),
        fragments_b: frags_b.len(),
        links,
        correct_links: correct,
        linkable_devices: devices_a.intersection(&devices_b).count(),
        reidentified_devices: reidentified.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdns_data::features::TrackExtractor;
    use rdns_model::{Date, Hostname};
    use std::net::Ipv4Addr;

    const START: (i32, u8, u8) = (2021, 11, 1); // a Monday

    /// Build a TrackSet + truth from per-day `(addr, name, device)` rows.
    fn window(days: &[&[(&str, &str, u64)]]) -> (TrackSet, Vec<BTreeMap<u32, u64>>) {
        let start = Date::from_ymd(START.0, START.1, START.2);
        let mut ex = TrackExtractor::new();
        let mut truth = Vec::new();
        for (i, rows) in days.iter().enumerate() {
            let mut records = BTreeMap::new();
            let mut t = BTreeMap::new();
            for (addr, name, dev) in rows.iter() {
                let a: Ipv4Addr = addr.parse().unwrap();
                records.insert(a, Hostname::new(name));
                t.insert(u32::from(a), *dev);
            }
            ex.push_day(start.plus_days(i as i64), &records);
            truth.push(t);
        }
        (ex.finish(), truth)
    }

    #[test]
    fn persistent_token_links_across_epochs() {
        // Device 1 keeps its name across the boundary but moves address.
        let (set, truth) = window(&[
            &[("10.0.1.5", "brians-mbp.resnet.example.edu", 1)],
            &[("10.0.1.5", "brians-mbp.resnet.example.edu", 1)],
            &[("10.0.1.9", "brians-mbp.resnet.example.edu", 1)],
            &[("10.0.1.9", "brians-mbp.resnet.example.edu", 1)],
        ]);
        let r = link_epochs(&set, &truth, &TrackerConfig::at_split(2));
        assert_eq!(r.links, 1);
        assert_eq!(r.correct_links, 1);
        assert_eq!(r.linkable_devices, 1);
        assert_eq!(r.reidentified_devices, 1);
        assert_eq!(r.precision(), 1.0);
        assert_eq!(r.recall(), 1.0);
    }

    #[test]
    fn rotated_token_still_links_behaviourally_in_same_pool() {
        // Token changes at the boundary (salt rotation) but the device keeps
        // its /24 and its every-day cadence.
        let (set, truth) = window(&[
            &[("10.0.1.5", "h-aaaaaaaaaaaa.pool.example.net", 1)],
            &[("10.0.1.5", "h-aaaaaaaaaaaa.pool.example.net", 1)],
            &[("10.0.1.7", "h-bbbbbbbbbbbb.pool.example.net", 1)],
            &[("10.0.1.7", "h-bbbbbbbbbbbb.pool.example.net", 1)],
        ]);
        let r = link_epochs(&set, &truth, &TrackerConfig::at_split(2));
        assert_eq!(r.links, 1, "{r:?}");
        assert_eq!(r.reidentified_devices, 1);
    }

    #[test]
    fn empty_window_is_vacuous() {
        let (set, truth) = window(&[&[], &[], &[], &[]]);
        let r = link_epochs(&set, &truth, &TrackerConfig::at_split(2));
        assert_eq!(r.links, 0);
        assert_eq!(r.precision(), 1.0);
        assert_eq!(r.recall(), 0.0);
        assert_eq!(r.linkable_devices, 0);
    }

    #[test]
    fn static_records_are_filtered() {
        // A record present every single day with one token (fixed-form or
        // infrastructure) must not produce fragments at all.
        let (set, truth) = window(&[
            &[("10.0.9.1", "host-10-0-9-1.dynamic.example.edu", 1)],
            &[("10.0.9.1", "host-10-0-9-1.dynamic.example.edu", 2)],
            &[("10.0.9.1", "host-10-0-9-1.dynamic.example.edu", 1)],
            &[("10.0.9.1", "host-10-0-9-1.dynamic.example.edu", 3)],
        ]);
        let r = link_epochs(&set, &truth, &TrackerConfig::at_split(2));
        assert_eq!(r.fragments_a + r.fragments_b, 0);
        assert_eq!(r.links, 0);
        assert_eq!(r.recall(), 0.0);
    }

    #[test]
    fn wrong_link_hurts_precision() {
        // Two devices swap names across the boundary: the token channel
        // links them crosswise, so both links exist but both are wrong.
        let (set, truth) = window(&[
            &[("10.0.1.5", "x.example.edu", 1), ("10.0.2.5", "y.example.edu", 2)],
            &[("10.0.1.5", "x.example.edu", 1), ("10.0.2.5", "y.example.edu", 2)],
            &[("10.0.1.6", "y.example.edu", 1), ("10.0.2.6", "x.example.edu", 2)],
            &[("10.0.1.6", "y.example.edu", 1), ("10.0.2.6", "x.example.edu", 2)],
        ]);
        let r = link_epochs(&set, &truth, &TrackerConfig::at_split(2));
        assert_eq!(r.links, 2);
        assert_eq!(r.correct_links, 0);
        assert_eq!(r.precision(), 0.0);
        assert_eq!(r.reidentified_devices, 0);
        assert_eq!(r.linkable_devices, 2);
    }

    #[test]
    fn greedy_matching_is_one_to_one() {
        // One epoch-A fragment, two token-identical epoch-B fragments: only
        // one link may be asserted.
        let (set, truth) = window(&[
            &[("10.0.1.5", "x.example.edu", 1)],
            &[],
            &[("10.0.1.6", "x.example.edu", 1), ("10.0.1.7", "x.example.edu", 2)],
            &[],
        ]);
        let r = link_epochs(&set, &truth, &TrackerConfig::at_split(2));
        assert_eq!(r.links, 1);
    }

    #[test]
    fn scores_are_integers_and_bounded() {
        let f = |addr: u32, token: u32, weekdays: u8, days: u32| Fragment {
            addr,
            token: rdns_data::NameId(token),
            weekdays,
            days_present: days,
            label: None,
        };
        let a = f(0x0A000105, 0, 0b0011111, 5);
        let same = score(&a, &f(0x0A000107, 0, 0b0011111, 5));
        assert_eq!(
            same,
            SCORE_TOKEN + SCORE_SAME_SLASH24 + SCORE_WEEKDAY_MAX + SCORE_CADENCE_MAX
        );
        let adjacent = score(&a, &f(0x0A000207, 1, 0b1100000, 0));
        // Adjacent /24; weekday masks fully disjoint (0b0011111 ^ 0b1100000
        // = 0b1111111, all 7 bits differ → weekday score 0); cadence gap 5
        // → 16 − 2·5 = 6.
        assert_eq!(adjacent, SCORE_ADJACENT_SLASH24 + 6);
    }
}
