//! Network-type classification (§5.2, Fig. 4).
//!
//! The paper classifies identified networks by hostname suffix: regular
//! expressions for `.edu` / `.ac.*` (academic) and `.gov` (government), plus
//! manual inspection for ISPs and enterprises. The manual step is encoded
//! here as keyword heuristics so the whole pipeline runs unattended.

use rayon::prelude::*;
use rdns_telemetry::{Determinism, Registry};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The Fig. 4 categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NetworkClass {
    /// Schools, universities, research institutes.
    Academic,
    /// Internet service providers.
    Isp,
    /// Companies.
    Enterprise,
    /// Government bodies.
    Government,
    /// Everything else.
    Other,
}

impl NetworkClass {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            NetworkClass::Academic => "Academic",
            NetworkClass::Isp => "ISP",
            NetworkClass::Enterprise => "Enterprise",
            NetworkClass::Government => "Government",
            NetworkClass::Other => "Other",
        }
    }
}

/// Tokens strongly indicating ISP suffixes (stand-in for the paper's manual
/// inspection).
const ISP_HINTS: [&str; 12] = [
    "isp", "telecom", "broadband", "cable", "dsl", "fiber", "fibre", "net", "pipe", "surf",
    "wireless", "telco",
];

/// Tokens indicating academic use beyond the TLD rules.
const ACADEMIC_HINTS: [&str; 6] = ["university", "college", "school", "campus", "institute", "acad"];

/// Classify a network suffix (TLD+1 or deeper).
pub fn classify_suffix(suffix: &str) -> NetworkClass {
    let s = suffix.to_ascii_lowercase();
    let labels: Vec<&str> = s.split('.').filter(|l| !l.is_empty()).collect();
    let tld = labels.last().copied().unwrap_or("");
    if labels.len() < 2 {
        return NetworkClass::Other; // a bare TLD names no network
    }

    // Regex-equivalent rules from the paper: `.edu` / `.ac.*`, `.gov`.
    if tld == "edu" || labels.iter().rev().take(2).any(|l| *l == "ac") {
        return NetworkClass::Academic;
    }
    if tld == "gov" {
        return NetworkClass::Government;
    }
    let body = labels[..labels.len().saturating_sub(1)].join(".");
    if ACADEMIC_HINTS.iter().any(|h| body.contains(h)) {
        return NetworkClass::Academic;
    }
    if tld == "net" || ISP_HINTS.iter().any(|h| body.contains(h)) {
        return NetworkClass::Isp;
    }
    if tld == "com" || tld == "io" || body.contains("corp") {
        return NetworkClass::Enterprise;
    }
    NetworkClass::Other
}

/// A Fig. 4-shaped breakdown.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TypeBreakdown {
    counts: BTreeMap<NetworkClass, usize>,
    total: usize,
}

impl TypeBreakdown {
    /// Classify a set of suffixes.
    pub fn from_suffixes<'a, I: IntoIterator<Item = &'a str>>(suffixes: I) -> TypeBreakdown {
        let mut b = TypeBreakdown::default();
        for s in suffixes {
            *b.counts.entry(classify_suffix(s)).or_insert(0) += 1;
            b.total += 1;
        }
        b
    }

    /// Like [`TypeBreakdown::from_suffixes`], reporting the number of rows
    /// classified to `registry` as `rdns_core_rows_classified_total`. The
    /// count is a pure function of the input, hence seed-stable.
    pub fn from_suffixes_metered<'a, I: IntoIterator<Item = &'a str>>(
        suffixes: I,
        registry: &Registry,
    ) -> TypeBreakdown {
        let b = TypeBreakdown::from_suffixes(suffixes);
        registry
            .counter(
                "rdns_core_rows_classified_total",
                "Suffix rows classified into the Fig. 4 network taxonomy.",
                Determinism::SeedStable,
            )
            .add(b.total as u64);
        b
    }

    /// Classify a set of suffixes with rayon fan-out.
    ///
    /// Classification is a pure per-suffix function, so each shard builds its
    /// own `BTreeMap` and the shards are merged by summed counts; the result
    /// is identical to [`TypeBreakdown::from_suffixes`] at any thread count.
    pub fn from_suffixes_par<S: AsRef<str> + Sync>(suffixes: &[S]) -> TypeBreakdown {
        let classes: Vec<NetworkClass> = suffixes
            .par_iter()
            .map(|s| classify_suffix(s.as_ref()))
            .collect();
        let mut b = TypeBreakdown::default();
        for class in classes {
            *b.counts.entry(class).or_insert(0) += 1;
            b.total += 1;
        }
        b
    }

    /// Total networks.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Count for one class.
    pub fn count(&self, class: NetworkClass) -> usize {
        self.counts.get(&class).copied().unwrap_or(0)
    }

    /// Percentage for one class.
    pub fn percentage(&self, class: NetworkClass) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(class) as f64 / self.total as f64 * 100.0
        }
    }

    /// `(class, count, percentage)` rows, largest first.
    pub fn rows(&self) -> Vec<(NetworkClass, usize, f64)> {
        let mut rows: Vec<(NetworkClass, usize, f64)> = self
            .counts
            .iter()
            .map(|(c, n)| (*c, *n, self.percentage(*c)))
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_regex_rules() {
        assert_eq!(classify_suffix("midwest-state.edu"), NetworkClass::Academic);
        assert_eq!(classify_suffix("cam.ac.uk"), NetworkClass::Academic);
        assert_eq!(classify_suffix("ox.ac.uk"), NetworkClass::Academic);
        assert_eq!(classify_suffix("treasury.gov"), NetworkClass::Government);
    }

    #[test]
    fn heuristic_rules() {
        assert_eq!(classify_suffix("fastpipe.net"), NetworkClass::Isp);
        assert_eq!(classify_suffix("maxicable.net"), NetworkClass::Isp);
        assert_eq!(classify_suffix("acme-corp.com"), NetworkClass::Enterprise);
        assert_eq!(classify_suffix("globex.com"), NetworkClass::Enterprise);
        assert_eq!(classify_suffix("university-of-somewhere.org"), NetworkClass::Academic);
        assert_eq!(classify_suffix("random-site.org"), NetworkClass::Other);
        assert_eq!(classify_suffix("polder-tech.nl"), NetworkClass::Other);
    }

    #[test]
    fn edge_inputs() {
        assert_eq!(classify_suffix(""), NetworkClass::Other);
        assert_eq!(classify_suffix("EDU"), NetworkClass::Other); // bare TLD, no body
        assert_eq!(classify_suffix("X.EDU"), NetworkClass::Academic); // case-insensitive
    }

    #[test]
    fn breakdown_percentages() {
        let suffixes = [
            "a.edu", "b.edu", "c.edu", "d.ac.jp", "isp1.net", "corp.com", "thing.org",
        ];
        let b = TypeBreakdown::from_suffixes(suffixes.iter().copied());
        assert_eq!(b.total(), 7);
        assert_eq!(b.count(NetworkClass::Academic), 4);
        assert_eq!(b.count(NetworkClass::Isp), 1);
        assert_eq!(b.count(NetworkClass::Enterprise), 1);
        assert_eq!(b.count(NetworkClass::Other), 1);
        assert!((b.percentage(NetworkClass::Academic) - 400.0 / 7.0).abs() < 1e-9);
        // Rows sorted by count, academic first.
        assert_eq!(b.rows()[0].0, NetworkClass::Academic);
    }

    #[test]
    fn par_breakdown_matches_sequential() {
        let suffixes = [
            "a.edu", "b.edu", "c.edu", "d.ac.jp", "isp1.net", "corp.com", "thing.org",
            "treasury.gov", "fastpipe.net", "polder-tech.nl",
        ];
        let seq = TypeBreakdown::from_suffixes(suffixes.iter().copied());
        let par = TypeBreakdown::from_suffixes_par(&suffixes);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_breakdown() {
        let b = TypeBreakdown::from_suffixes(std::iter::empty());
        assert_eq!(b.total(), 0);
        assert_eq!(b.percentage(NetworkClass::Academic), 0.0);
        assert!(b.rows().is_empty());
    }
}
