//! The §4.1 dynamicity heuristic.
//!
//! Three steps over a daily per-/24 PTR-count matrix:
//!
//! 1. discard /24s never exceeding `min_daily_addrs` addresses a day; record
//!    each survivor's maximum daily count,
//! 2. compute day-by-day absolute count differences and turn them into a
//!    *change percentage* of that maximum,
//! 3. label a /24 dynamic when the change percentage exceeds `change_pct` on
//!    at least `min_days` days.
//!
//! Defaults are the paper's: X = 10 %, Y = 7 days, 10-address floor.

use rayon::prelude::*;
use rdns_model::{Ipv4Net, Slash24};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Heuristic thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicityParams {
    /// Step 1: a /24 must exceed this many addresses on at least one day.
    pub min_daily_addrs: u32,
    /// Step 3: X — change percentage a day must exceed to count.
    pub change_pct: f64,
    /// Step 3: Y — number of qualifying days required.
    pub min_days: u32,
}

impl Default for DynamicityParams {
    fn default() -> Self {
        DynamicityParams {
            min_daily_addrs: 10,
            change_pct: 10.0,
            min_days: 7,
        }
    }
}

/// Outcome of the heuristic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DynamicityResult {
    /// /24s labelled dynamic.
    pub dynamic: HashSet<Slash24>,
    /// /24s that survived step 1 (the "considered" population).
    pub considered: usize,
    /// All /24s with any PTR in the window.
    pub total: usize,
}

impl DynamicityResult {
    /// Whether a block was labelled dynamic.
    pub fn is_dynamic(&self, block: Slash24) -> bool {
        self.dynamic.contains(&block)
    }
}

/// Run the heuristic over a `block → daily counts` matrix (aligned columns).
///
/// ```
/// use rdns_core::dynamicity::{identify_dynamic, DynamicityParams};
/// use rdns_model::Slash24;
/// use std::collections::BTreeMap;
///
/// let mut matrix = BTreeMap::new();
/// // Weekday/weekend churn: detected as dynamic.
/// let churny: Vec<u32> = (0..30).map(|d| if d % 7 < 5 { 60 } else { 20 }).collect();
/// matrix.insert(Slash24::from_octets(10, 0, 1), churny);
/// // A static server block: never flagged.
/// matrix.insert(Slash24::from_octets(10, 0, 2), vec![40; 30]);
///
/// let result = identify_dynamic(&matrix, &DynamicityParams::default());
/// assert!(result.is_dynamic(Slash24::from_octets(10, 0, 1)));
/// assert!(!result.is_dynamic(Slash24::from_octets(10, 0, 2)));
/// ```
pub fn identify_dynamic(
    matrix: &BTreeMap<Slash24, Vec<u32>>,
    params: &DynamicityParams,
) -> DynamicityResult {
    let mut result = DynamicityResult {
        total: matrix.len(),
        ..Default::default()
    };
    for (block, counts) in matrix {
        match block_verdict(counts, params) {
            Verdict::Dynamic => {
                result.considered += 1;
                result.dynamic.insert(*block);
            }
            Verdict::Static => result.considered += 1,
            Verdict::TooSmall => {}
        }
    }
    result
}

/// Per-/24 outcome of the heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    /// Discarded by the step-1 floor.
    TooSmall,
    /// Considered but below the change threshold.
    Static,
    /// Labelled dynamic.
    Dynamic,
}

/// Steps 1–3 for a single block's daily counts.
fn block_verdict(counts: &[u32], params: &DynamicityParams) -> Verdict {
    // Step 1: floor on the maximum daily address count.
    let max = counts.iter().copied().max().unwrap_or(0);
    if max <= params.min_daily_addrs {
        return Verdict::TooSmall;
    }
    // Steps 2–3: day-by-day change percentage against the maximum.
    let mut qualifying_days = 0u32;
    for w in counts.windows(2) {
        let diff = w[1].abs_diff(w[0]);
        let pct = diff as f64 / max as f64 * 100.0;
        if pct > params.change_pct {
            qualifying_days += 1;
        }
    }
    if qualifying_days >= params.min_days {
        Verdict::Dynamic
    } else {
        Verdict::Static
    }
}

/// [`identify_dynamic`] with the per-/24 verdicts fanned out across the
/// rayon pool. Blocks are independent and the reduction only counts and
/// collects set members, so the result equals the sequential path at any
/// thread count (`RAYON_NUM_THREADS=1` included).
pub fn identify_dynamic_par(
    matrix: &BTreeMap<Slash24, Vec<u32>>,
    params: &DynamicityParams,
) -> DynamicityResult {
    let entries: Vec<(&Slash24, &Vec<u32>)> = matrix.iter().collect();
    let verdicts: Vec<(Slash24, Verdict)> = entries
        .into_par_iter()
        .map(|(block, counts)| (*block, block_verdict(counts, params)))
        .collect();
    let mut result = DynamicityResult {
        total: matrix.len(),
        ..Default::default()
    };
    for (block, verdict) in verdicts {
        match verdict {
            Verdict::Dynamic => {
                result.considered += 1;
                result.dynamic.insert(block);
            }
            Verdict::Static => result.considered += 1,
            Verdict::TooSmall => {}
        }
    }
    result
}

/// Fig. 1 ingredient: for one announced prefix, the fraction of its /24s
/// labelled dynamic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefixDynamicity {
    /// The announced prefix.
    pub prefix: Ipv4Net,
    /// Number of /24 subprefixes labelled dynamic.
    pub dynamic_24s: u32,
    /// Total /24 subprefixes.
    pub total_24s: u32,
}

impl PrefixDynamicity {
    /// Fraction of the prefix's /24s that are dynamic, in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        if self.total_24s == 0 {
            0.0
        } else {
            self.dynamic_24s as f64 / self.total_24s as f64
        }
    }
}

/// Map dynamic /24s back to their most-specific covering announced prefix
/// (§4.2) and compute per-prefix dynamic fractions. Prefixes with no dynamic
/// /24 at all are omitted, mirroring the paper's Fig. 1 population.
pub fn prefix_dynamicity(
    dynamic: &HashSet<Slash24>,
    announced: &[Ipv4Net],
) -> Vec<PrefixDynamicity> {
    let mut per_prefix: HashMap<Ipv4Net, u32> = HashMap::new();
    for block in dynamic {
        // Most-specific announced prefix covering this /24.
        let candidate = announced
            .iter()
            .filter(|p| p.len() <= 24 && p.contains(block.network()))
            .max_by_key(|p| p.len());
        if let Some(p) = candidate {
            *per_prefix.entry(*p).or_insert(0) += 1;
        }
    }
    let mut out: Vec<PrefixDynamicity> = per_prefix
        .into_iter()
        .map(|(prefix, dynamic_24s)| PrefixDynamicity {
            prefix,
            dynamic_24s,
            total_24s: prefix.slash24_count(),
        })
        .collect();
    out.sort_by_key(|p| (p.prefix.len(), p.prefix.network()));
    out
}

/// Distribution summary per announced-prefix length (the ticks of Fig. 1:
/// min / median / max dynamic fraction).
#[derive(Debug, Clone, PartialEq)]
pub struct FractionSummary {
    /// Prefix length this row summarizes.
    pub prefix_len: u8,
    /// Number of prefixes of this length with dynamic /24s.
    pub prefixes: usize,
    /// Minimum dynamic fraction.
    pub min: f64,
    /// Median dynamic fraction.
    pub median: f64,
    /// Maximum dynamic fraction.
    pub max: f64,
}

/// Group [`PrefixDynamicity`] rows by announced-prefix length.
pub fn summarize_fractions(rows: &[PrefixDynamicity]) -> Vec<FractionSummary> {
    let mut by_len: HashMap<u8, Vec<f64>> = HashMap::new();
    for r in rows {
        by_len.entry(r.prefix.len()).or_default().push(r.fraction());
    }
    let mut out: Vec<FractionSummary> = by_len
        .into_iter()
        .map(|(len, mut fractions)| {
            fractions.sort_by(|a, b| a.partial_cmp(b).expect("fractions are finite"));
            let median = fractions[fractions.len() / 2];
            FractionSummary {
                prefix_len: len,
                prefixes: fractions.len(),
                min: fractions[0],
                median,
                max: *fractions.last().expect("non-empty by construction"),
            }
        })
        .collect();
    out.sort_by_key(|s| s.prefix_len);
    out
}

/// Validation against ground truth (§4.1's campus check).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// Predicted dynamic, truly dynamic-rDNS.
    pub true_positives: usize,
    /// Predicted dynamic, actually static.
    pub false_positives: usize,
    /// Predicted static, truly dynamic-rDNS.
    pub false_negatives: usize,
    /// Predicted static, actually static.
    pub true_negatives: usize,
}

impl ConfusionMatrix {
    /// Compare a prediction against truth over a universe of blocks.
    pub fn compute(
        universe: &HashSet<Slash24>,
        predicted: &HashSet<Slash24>,
        truth: &HashSet<Slash24>,
    ) -> ConfusionMatrix {
        let mut m = ConfusionMatrix::default();
        for b in universe {
            match (predicted.contains(b), truth.contains(b)) {
                (true, true) => m.true_positives += 1,
                (true, false) => m.false_positives += 1,
                (false, true) => m.false_negatives += 1,
                (false, false) => m.true_negatives += 1,
            }
        }
        m
    }

    /// Precision of the dynamic label.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall of the dynamic label.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn block(i: u8) -> Slash24 {
        Slash24::from_octets(10, 0, i)
    }

    fn matrix(entries: &[(u8, Vec<u32>)]) -> BTreeMap<Slash24, Vec<u32>> {
        entries
            .iter()
            .map(|(i, counts)| (block(*i), counts.clone()))
            .collect()
    }

    #[test]
    fn small_blocks_discarded_in_step1() {
        // Oscillates wildly but never above 10 addresses.
        let m = matrix(&[(1, vec![1, 9, 1, 9, 1, 9, 1, 9, 1, 9])]);
        let r = identify_dynamic(&m, &DynamicityParams::default());
        assert_eq!(r.total, 1);
        assert_eq!(r.considered, 0);
        assert!(r.dynamic.is_empty());
    }

    #[test]
    fn static_blocks_not_dynamic() {
        let m = matrix(&[(1, vec![50; 90])]);
        let r = identify_dynamic(&m, &DynamicityParams::default());
        assert_eq!(r.considered, 1);
        assert!(r.dynamic.is_empty());
    }

    #[test]
    fn churny_blocks_detected() {
        // Weekday/weekend churn: 60 on weekdays, 20 on weekends → many days
        // exceed 10% of max (60).
        let mut counts = Vec::new();
        for week in 0..4 {
            let _ = week;
            counts.extend([60, 58, 61, 59, 60]); // Mon-Fri
            counts.extend([20, 18]); // weekend
        }
        let m = matrix(&[(1, counts)]);
        let r = identify_dynamic(&m, &DynamicityParams::default());
        assert!(r.is_dynamic(block(1)));
    }

    #[test]
    fn threshold_y_days_boundary() {
        // Exactly 6 qualifying transitions: below Y=7 → static.
        let mut counts = vec![100; 30];
        for i in 0..6 {
            counts[2 * i + 1] = 50; // six dips, each creating TWO transitions
        }
        // each dip creates 2 qualifying transitions (down+up) = 12 → dynamic
        let m = matrix(&[(1, counts.clone())]);
        let r = identify_dynamic(&m, &DynamicityParams::default());
        assert!(r.is_dynamic(block(1)));

        // Three dips → 6 transitions → not dynamic at Y=7.
        let mut counts = vec![100; 30];
        for i in 0..3 {
            counts[2 * i + 1] = 50;
        }
        let m = matrix(&[(1, counts)]);
        let r = identify_dynamic(&m, &DynamicityParams::default());
        assert!(!r.is_dynamic(block(1)));
    }

    #[test]
    fn change_pct_is_relative_to_max() {
        // Max 200; daily swings of 15 are only 7.5% → static.
        let counts: Vec<u32> = (0..60).map(|i| if i % 2 == 0 { 200 } else { 185 }).collect();
        let m = matrix(&[(1, counts)]);
        let r = identify_dynamic(&m, &DynamicityParams::default());
        assert!(!r.is_dynamic(block(1)));
        // Same absolute swings on a max of 100 are 15% → dynamic.
        let counts: Vec<u32> = (0..60).map(|i| if i % 2 == 0 { 100 } else { 85 }).collect();
        let m = matrix(&[(1, counts)]);
        let r = identify_dynamic(&m, &DynamicityParams::default());
        assert!(r.is_dynamic(block(1)));
    }

    #[test]
    fn prefix_mapping_most_specific() {
        let announced: Vec<Ipv4Net> = vec![
            "10.0.0.0/8".parse().unwrap(),
            "10.0.0.0/16".parse().unwrap(),
        ];
        let mut dynamic = HashSet::new();
        dynamic.insert(block(1)); // 10.0.1.0/24 → covered by both; /16 wins
        dynamic.insert(Slash24::from_octets(10, 200, 1)); // only /8
        let rows = prefix_dynamicity(&dynamic, &announced);
        assert_eq!(rows.len(), 2);
        let by_len: HashMap<u8, u32> = rows.iter().map(|r| (r.prefix.len(), r.dynamic_24s)).collect();
        assert_eq!(by_len[&16], 1);
        assert_eq!(by_len[&8], 1);
    }

    #[test]
    fn fraction_summaries() {
        let rows = vec![
            PrefixDynamicity {
                prefix: "10.0.0.0/16".parse().unwrap(),
                dynamic_24s: 32,
                total_24s: 256,
            },
            PrefixDynamicity {
                prefix: "10.1.0.0/16".parse().unwrap(),
                dynamic_24s: 128,
                total_24s: 256,
            },
            PrefixDynamicity {
                prefix: "192.0.2.0/24".parse().unwrap(),
                dynamic_24s: 1,
                total_24s: 1,
            },
        ];
        let summary = summarize_fractions(&rows);
        assert_eq!(summary.len(), 2);
        let s16 = summary.iter().find(|s| s.prefix_len == 16).unwrap();
        assert_eq!(s16.prefixes, 2);
        assert!((s16.min - 0.125).abs() < 1e-9);
        assert!((s16.max - 0.5).abs() < 1e-9);
        let s24 = summary.iter().find(|s| s.prefix_len == 24).unwrap();
        assert!((s24.median - 1.0).abs() < 1e-9);
    }

    #[test]
    fn confusion_matrix_and_rates() {
        let universe: HashSet<Slash24> = (0..10).map(block).collect();
        let predicted: HashSet<Slash24> = (0..4).map(block).collect();
        let truth: HashSet<Slash24> = (2..6).map(block).collect();
        let m = ConfusionMatrix::compute(&universe, &predicted, &truth);
        assert_eq!(m.true_positives, 2);
        assert_eq!(m.false_positives, 2);
        assert_eq!(m.false_negatives, 2);
        assert_eq!(m.true_negatives, 4);
        assert!((m.precision() - 0.5).abs() < 1e-9);
        assert!((m.recall() - 0.5).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_dynamic_is_subset_of_considered(counts in proptest::collection::vec(
            proptest::collection::vec(0u32..100, 10..40), 1..10)) {
            let m: BTreeMap<Slash24, Vec<u32>> = counts
                .into_iter()
                .enumerate()
                .map(|(i, c)| (block(i as u8), c))
                .collect();
            let r = identify_dynamic(&m, &DynamicityParams::default());
            prop_assert!(r.dynamic.len() <= r.considered);
            prop_assert!(r.considered <= r.total);
        }

        #[test]
        fn prop_constant_series_never_dynamic(v in 0u32..1000, days in 2usize..60) {
            let m = matrix(&[(1, vec![v; days])]);
            let r = identify_dynamic(&m, &DynamicityParams::default());
            prop_assert!(r.dynamic.is_empty());
        }

        #[test]
        fn prop_stricter_params_find_fewer(counts in proptest::collection::vec(0u32..200, 20..60)) {
            let m = matrix(&[(1, counts)]);
            let lax = identify_dynamic(&m, &DynamicityParams { min_daily_addrs: 5, change_pct: 5.0, min_days: 3 });
            let strict = identify_dynamic(&m, &DynamicityParams { min_daily_addrs: 20, change_pct: 20.0, min_days: 10 });
            prop_assert!(strict.dynamic.len() <= lax.dynamic.len());
        }
    }
}
