//! # rdns-core
//!
//! The primary contribution of *"Saving Brian's Privacy"* (IMC 2022) as a
//! reusable library: given reverse-DNS observations — longitudinal snapshots
//! and/or fine-grained reactive measurements — detect networks that expose
//! client dynamics, identify privacy leaks in their records, quantify how
//! tightly PTR lifetime tracks client presence, and run the paper's case
//! studies.
//!
//! Pipeline map (paper section → module):
//!
//! * §4.1 dynamicity heuristic → [`dynamicity`]
//! * §5.1 common terms / given names / suffix statistics → [`terms`],
//!   [`names`], [`suffix`]
//! * §5.2 network-type classification → [`classify`]
//! * §6.1–6.2 activity groups and PTR-removal timing → [`timing`]
//! * §7 case studies → [`casestudies`]
//! * §8 mitigation analysis: the content-blind cross-epoch tracker the
//!   policy lab scores against → [`tracker`]
//! * every table & figure of the evaluation → [`experiments`]

pub mod casestudies;
pub mod classify;
pub mod dynamicity;
pub mod experiments;
pub mod names;
pub mod redact;
pub mod report;
pub mod suffix;
pub mod terms;
pub mod timing;
pub mod tracker;

pub use classify::{classify_suffix, NetworkClass, TypeBreakdown};
pub use dynamicity::{
    identify_dynamic, identify_dynamic_par, DynamicityParams, DynamicityResult, PrefixDynamicity,
};
pub use names::{match_given_names, MATCH_GIVEN_NAMES};
pub use redact::Pii;
pub use suffix::{identify_leaking_suffixes, LeakParams, SuffixStats};
pub use terms::{extract_terms, is_router_level, TermCounts, DEVICE_TERMS, GENERIC_TERMS};
pub use timing::{
    build_groups, build_groups_metered, par_build_groups, ActivityGroup, GroupFunnel, RemovalDelays,
};
pub use tracker::{link_epochs, TrackerConfig, TrackerReport};
