//! # rdns-model
//!
//! Shared substrate types for the `rdns-privacy` workspace, the Rust
//! reproduction of *"Saving Brian's Privacy: the Perils of Privacy Exposure
//! through Reverse DNS"* (IMC 2022).
//!
//! This crate intentionally has no I/O and no heavyweight dependencies. It
//! provides the vocabulary every other crate speaks:
//!
//! * [`ip`] — IPv4 prefixes, `/24` blocks and address iteration,
//! * [`time`] — simulation timestamps with civil-calendar conversions
//!   (implemented from first principles; no `chrono`),
//! * [`date`] — Gregorian dates, weekdays and US/Dutch holiday rules used by
//!   the behavioural simulator,
//! * [`hostname`] — normalized hostnames with label and suffix helpers,
//! * [`ids`] — strongly-typed identifiers for persons, devices, networks and
//!   measurement groups.

pub mod date;
pub mod hostname;
pub mod ids;
pub mod ip;
pub mod time;

pub use date::{Date, Month, Weekday};
pub use hostname::Hostname;
pub use ids::{DeviceId, GroupId, NetworkId, PersonId};
pub use ip::{Ipv4Net, Slash24};
pub use time::{SimDuration, SimTime};
