//! Normalized hostnames.
//!
//! A PTR record's RDATA is a domain name such as
//! `brians-iphone.resnet.institute.edu.`. The leak-identification pipeline
//! (§5.1) repeatedly needs the same decompositions: lower-cased label list,
//! the host-specific leading label, and the registrable suffix ("TLD+1") used
//! to index identified networks. [`Hostname`] caches the normalized text form
//! and offers those views.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A fully-qualified hostname, stored lower-case without the trailing dot.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Hostname(String);

impl Hostname {
    /// Normalize arbitrary text into a hostname: lower-case, strip trailing
    /// dots. Empty input yields the DNS root, represented as `""`.
    pub fn new(raw: &str) -> Hostname {
        let trimmed = raw.trim_end_matches('.');
        Hostname(trimmed.to_ascii_lowercase())
    }

    /// Build from labels, e.g. `["brians-iphone", "net", "example", "edu"]`.
    pub fn from_labels<I, S>(labels: I) -> Hostname
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let joined = labels
            .into_iter()
            .map(|l| l.as_ref().to_ascii_lowercase())
            .collect::<Vec<_>>()
            .join(".");
        Hostname(joined)
    }

    /// The normalized text form (no trailing dot). A hostname may embed a
    /// device-owner's name; `rdns-lint` tracks taint through the
    /// distinctively named accessors ([`Self::host_label`] and the scan/sim
    /// sources) because a bare `as_str` mark would also match every
    /// `String::as_str` call in the workspace.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The labels, left to right. The root name has no labels.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.0.split('.').filter(|l| !l.is_empty())
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// The leftmost (host-specific) label, if any. This is where owner names
    /// live (`brians-iphone`), so it is a PII source for `rdns-lint`.
    // lint:taint(source)
    pub fn host_label(&self) -> Option<&str> {
        self.labels().next()
    }

    /// The registrable suffix — the last `n` labels joined. `suffix(2)` is
    /// the paper's "TLD+1" index key (e.g. `institute.edu`).
    pub fn suffix(&self, n: usize) -> Option<String> {
        let labels: Vec<&str> = self.labels().collect();
        if labels.len() < n || n == 0 {
            return None;
        }
        Some(labels[labels.len() - n..].join("."))
    }

    /// Convenience for `suffix(2)`.
    pub fn tld_plus_one(&self) -> Option<String> {
        self.suffix(2)
    }

    /// The last label (TLD), if any.
    pub fn tld(&self) -> Option<&str> {
        self.labels().last()
    }

    /// Whether this name ends with the given suffix on a label boundary.
    /// `ends_with_suffix("institute.edu")` matches `a.institute.edu` and
    /// `institute.edu` but not `badinstitute.edu`.
    pub fn ends_with_suffix(&self, suffix: &str) -> bool {
        let suffix = suffix.trim_end_matches('.').to_ascii_lowercase();
        if suffix.is_empty() {
            return true;
        }
        if self.0 == suffix {
            return true;
        }
        self.0.ends_with(&suffix)
            && self.0.as_bytes()[self.0.len() - suffix.len() - 1] == b'.'
    }

    /// Whether the name is syntactically valid per RFC 1035 length limits
    /// (labels of 1..=63 octets, total presentation length <= 253).
    pub fn is_valid_dns(&self) -> bool {
        if self.0.is_empty() {
            return true; // root
        }
        if self.0.len() > 253 {
            return false;
        }
        self.0
            .split('.')
            .all(|l| !l.is_empty() && l.len() <= 63)
    }
}

impl fmt::Debug for Hostname {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hostname({})", self.0)
    }
}

impl fmt::Display for Hostname {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Hostname {
    fn from(s: &str) -> Hostname {
        Hostname::new(s)
    }
}

impl From<String> for Hostname {
    fn from(s: String) -> Hostname {
        Hostname::new(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn normalization() {
        let h = Hostname::new("Brians-iPhone.ResNet.Institute.EDU.");
        assert_eq!(h.as_str(), "brians-iphone.resnet.institute.edu");
        assert_eq!(h, Hostname::new("brians-iphone.resnet.institute.edu"));
    }

    #[test]
    fn labels_and_host_label() {
        let h = Hostname::new("brians-iphone.resnet.institute.edu");
        assert_eq!(
            h.labels().collect::<Vec<_>>(),
            vec!["brians-iphone", "resnet", "institute", "edu"]
        );
        assert_eq!(h.host_label(), Some("brians-iphone"));
        assert_eq!(h.label_count(), 4);
    }

    #[test]
    fn suffixes() {
        let h = Hostname::new("client1.someisp.com");
        assert_eq!(h.tld_plus_one().as_deref(), Some("someisp.com"));
        assert_eq!(h.tld(), Some("com"));
        assert_eq!(h.suffix(3).as_deref(), Some("client1.someisp.com"));
        assert_eq!(h.suffix(4), None);
        assert_eq!(h.suffix(0), None);
    }

    #[test]
    fn ends_with_suffix_boundaries() {
        let h = Hostname::new("a.institute.edu");
        assert!(h.ends_with_suffix("institute.edu"));
        assert!(h.ends_with_suffix("edu"));
        assert!(h.ends_with_suffix("a.institute.edu"));
        assert!(!h.ends_with_suffix("stitute.edu"));
        assert!(!Hostname::new("badinstitute.edu").ends_with_suffix("institute.edu"));
        assert!(h.ends_with_suffix("")); // root matches everything
        assert!(h.ends_with_suffix("EDU.")); // case + trailing dot insensitive
    }

    #[test]
    fn root_name() {
        let r = Hostname::new(".");
        assert_eq!(r.as_str(), "");
        assert_eq!(r.label_count(), 0);
        assert_eq!(r.host_label(), None);
        assert!(r.is_valid_dns());
    }

    #[test]
    fn from_labels_roundtrip() {
        let h = Hostname::from_labels(["Brians-MBP", "example", "ORG"]);
        assert_eq!(h.as_str(), "brians-mbp.example.org");
    }

    #[test]
    fn validity_limits() {
        assert!(Hostname::new("a.b.c").is_valid_dns());
        let long_label = "x".repeat(64);
        assert!(!Hostname::new(&format!("{long_label}.com")).is_valid_dns());
        let ok_label = "x".repeat(63);
        assert!(Hostname::new(&format!("{ok_label}.com")).is_valid_dns());
        let too_long = vec!["abcdefgh"; 32].join("."); // 8*32+31 = 287 > 253
        assert!(!Hostname::new(&too_long).is_valid_dns());
        assert!(!Hostname::new("a..b").is_valid_dns());
    }

    proptest! {
        #[test]
        fn prop_new_idempotent(s in "[A-Za-z0-9.-]{0,40}") {
            let once = Hostname::new(&s);
            let twice = Hostname::new(once.as_str());
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn prop_suffix_is_suffix(labels in proptest::collection::vec("[a-z0-9]{1,8}", 1..5), n in 1usize..5) {
            let h = Hostname::from_labels(&labels);
            if let Some(sfx) = h.suffix(n) {
                prop_assert!(h.ends_with_suffix(&sfx));
            }
        }
    }
}
