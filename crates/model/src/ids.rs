//! Strongly-typed identifiers.
//!
//! The simulator, scanner and analysis crates pass around persons, devices,
//! networks and measurement groups. Newtype IDs keep those from being mixed
//! up at compile time and serialize compactly.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// The raw numeric value.
            pub const fn raw(&self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// A person in the simulated world (owns devices).
    PersonId,
    "person-"
);
id_type!(
    /// A client device (phone, laptop, ...).
    DeviceId,
    "device-"
);
id_type!(
    /// A simulated network / organisation.
    NetworkId,
    "network-"
);
id_type!(
    /// A supplemental-measurement activity group (§6.1): one contiguous
    /// activity period of one IP address.
    GroupId,
    "group-"
);

/// A monotonically increasing ID allocator.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    /// A fresh allocator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate the next raw ID.
    pub fn next_raw(&mut self) -> u64 {
        let v = self.next;
        self.next += 1;
        v
    }

    /// Allocate a typed ID.
    pub fn allocate<T: From<u64>>(&mut self) -> T {
        T::from(self.next_raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(PersonId(3).to_string(), "person-3");
        assert_eq!(DeviceId(9).to_string(), "device-9");
        assert_eq!(NetworkId(0).to_string(), "network-0");
        assert_eq!(GroupId(42).to_string(), "group-42");
        assert_eq!(format!("{:?}", GroupId(42)), "group-42");
    }

    #[test]
    fn allocator_is_monotonic_and_typed() {
        let mut alloc = IdAllocator::new();
        let a: PersonId = alloc.allocate();
        let b: DeviceId = alloc.allocate();
        let c: PersonId = alloc.allocate();
        assert_eq!(a, PersonId(0));
        assert_eq!(b, DeviceId(1));
        assert_eq!(c, PersonId(2));
        assert!(a < c);
    }

    #[test]
    fn ordering_follows_raw() {
        let mut v = vec![GroupId(5), GroupId(1), GroupId(3)];
        v.sort();
        assert_eq!(v, vec![GroupId(1), GroupId(3), GroupId(5)]);
        assert_eq!(GroupId(7).raw(), 7);
    }
}
