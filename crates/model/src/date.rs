//! Gregorian calendar arithmetic, implemented from first principles.
//!
//! The behavioural simulator needs weekdays, month lengths and movable
//! holidays (Thanksgiving is "the fourth Thursday of November"); the analysis
//! needs stable date keys for daily snapshots. We use Howard Hinnant's
//! `days_from_civil` / `civil_from_days` algorithms, which are exact over the
//! whole proleptic Gregorian calendar.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Day of the week. Discriminants follow ISO-8601 (`Monday = 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Weekday {
    Monday = 1,
    Tuesday = 2,
    Wednesday = 3,
    Thursday = 4,
    Friday = 5,
    Saturday = 6,
    Sunday = 7,
}

impl Weekday {
    /// All weekdays in ISO order, Monday first.
    pub const ALL: [Weekday; 7] = [
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];

    /// True for Saturday and Sunday.
    pub fn is_weekend(&self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }

    /// Short English label (`Mon`, `Tue`, ...).
    pub fn short(&self) -> &'static str {
        match self {
            Weekday::Monday => "Mon",
            Weekday::Tuesday => "Tue",
            Weekday::Wednesday => "Wed",
            Weekday::Thursday => "Thu",
            Weekday::Friday => "Fri",
            Weekday::Saturday => "Sat",
            Weekday::Sunday => "Sun",
        }
    }
}

/// Month of the year (`January = 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Month {
    January = 1,
    February = 2,
    March = 3,
    April = 4,
    May = 5,
    June = 6,
    July = 7,
    August = 8,
    September = 9,
    October = 10,
    November = 11,
    December = 12,
}

impl Month {
    /// Month from its 1-based number.
    pub fn from_number(n: u8) -> Option<Month> {
        use Month::*;
        Some(match n {
            1 => January,
            2 => February,
            3 => March,
            4 => April,
            5 => May,
            6 => June,
            7 => July,
            8 => August,
            9 => September,
            10 => October,
            11 => November,
            12 => December,
            _ => return None,
        })
    }

    /// 1-based month number.
    pub fn number(&self) -> u8 {
        *self as u8
    }
}

/// A Gregorian calendar date.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Date {
    /// Days since the Unix epoch (1970-01-01); may be negative.
    days: i64,
}

impl Date {
    /// Construct from year, month (1-12) and day (1-31). Panics on invalid
    /// combinations — use [`Date::try_from_ymd`] for fallible construction.
    pub fn from_ymd(year: i32, month: u8, day: u8) -> Date {
        Self::try_from_ymd(year, month, day)
            .unwrap_or_else(|| panic!("invalid date {year:04}-{month:02}-{day:02}"))
    }

    /// Fallible construction from year/month/day.
    pub fn try_from_ymd(year: i32, month: u8, day: u8) -> Option<Date> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return None;
        }
        Some(Date {
            days: days_from_civil(year, month, day),
        })
    }

    /// Construct from days since the Unix epoch.
    pub fn from_epoch_days(days: i64) -> Date {
        Date { days }
    }

    /// Days since the Unix epoch.
    pub fn epoch_days(&self) -> i64 {
        self.days
    }

    /// `(year, month, day)` components.
    pub fn ymd(&self) -> (i32, u8, u8) {
        civil_from_days(self.days)
    }

    /// The year.
    pub fn year(&self) -> i32 {
        self.ymd().0
    }

    /// 1-based month number.
    pub fn month(&self) -> u8 {
        self.ymd().1
    }

    /// Day of month.
    pub fn day(&self) -> u8 {
        self.ymd().2
    }

    /// Weekday of this date.
    pub fn weekday(&self) -> Weekday {
        // 1970-01-01 was a Thursday (ISO weekday 4).
        let w = (self.days + 3).rem_euclid(7); // 0 = Monday
        match w {
            0 => Weekday::Monday,
            1 => Weekday::Tuesday,
            2 => Weekday::Wednesday,
            3 => Weekday::Thursday,
            4 => Weekday::Friday,
            5 => Weekday::Saturday,
            _ => Weekday::Sunday,
        }
    }

    /// Date `n` days later (or earlier for negative `n`).
    pub fn plus_days(&self, n: i64) -> Date {
        Date { days: self.days + n }
    }

    /// Next calendar day.
    pub fn succ(&self) -> Date {
        self.plus_days(1)
    }

    /// Signed number of days from `other` to `self`.
    pub fn days_since(&self, other: Date) -> i64 {
        self.days - other.days
    }

    /// Iterate dates from `self` to `end` inclusive.
    pub fn iter_to(self, end: Date) -> impl Iterator<Item = Date> {
        (self.days..=end.days).map(Date::from_epoch_days)
    }

    /// The `n`-th (1-based) given weekday of a month, e.g. the 4th Thursday
    /// of November (Thanksgiving).
    pub fn nth_weekday_of_month(year: i32, month: u8, weekday: Weekday, n: u8) -> Option<Date> {
        debug_assert!(n >= 1);
        let first = Date::try_from_ymd(year, month, 1)?;
        let first_w = first.weekday() as i64;
        let target = weekday as i64;
        let offset = (target - first_w).rem_euclid(7);
        let day = 1 + offset + 7 * (n as i64 - 1);
        Date::try_from_ymd(year, month, day as u8)
    }
}

impl fmt::Debug for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// Errors produced when parsing a [`Date`] from `YYYY-MM-DD` text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DateParseError(pub String);

impl fmt::Display for DateParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed date literal: {:?}", self.0)
    }
}

impl std::error::Error for DateParseError {}

impl FromStr for Date {
    type Err = DateParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || DateParseError(s.to_string());
        let mut it = s.split('-');
        let y: i32 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let m: u8 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let d: u8 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        if it.next().is_some() {
            return Err(err());
        }
        Date::try_from_ymd(y, m, d).ok_or_else(err)
    }
}

/// Whether `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Number of days in the given month.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Days since 1970-01-01 for a civil date (Hinnant's algorithm).
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = y as i64 - if m <= 2 { 1 } else { 0 };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = m as i64;
    let d = d as i64;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Civil date for days since 1970-01-01 (Hinnant's algorithm).
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    ((y + if m <= 2 { 1 } else { 0 }) as i32, m as u8, d as u8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_is_thursday() {
        let e = Date::from_ymd(1970, 1, 1);
        assert_eq!(e.epoch_days(), 0);
        assert_eq!(e.weekday(), Weekday::Thursday);
    }

    #[test]
    fn known_dates() {
        // Paper landmarks.
        assert_eq!(Date::from_ymd(2021, 11, 25).weekday(), Weekday::Thursday); // Thanksgiving '21
        assert_eq!(Date::from_ymd(2020, 2, 17).weekday(), Weekday::Monday); // OpenINTEL start
        assert_eq!(Date::from_ymd(2019, 10, 1).weekday(), Weekday::Tuesday); // Rapid7 start
    }

    #[test]
    fn thanksgiving_rule() {
        // Fourth Thursday of November.
        assert_eq!(
            Date::nth_weekday_of_month(2021, 11, Weekday::Thursday, 4).unwrap(),
            Date::from_ymd(2021, 11, 25)
        );
        assert_eq!(
            Date::nth_weekday_of_month(2020, 11, Weekday::Thursday, 4).unwrap(),
            Date::from_ymd(2020, 11, 26)
        );
        assert_eq!(
            Date::nth_weekday_of_month(2019, 11, Weekday::Thursday, 4).unwrap(),
            Date::from_ymd(2019, 11, 28)
        );
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2020));
        assert!(!is_leap_year(2021));
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert_eq!(days_in_month(2020, 2), 29);
        assert_eq!(days_in_month(2021, 2), 28);
    }

    #[test]
    fn rejects_invalid() {
        assert!(Date::try_from_ymd(2021, 2, 29).is_none());
        assert!(Date::try_from_ymd(2021, 13, 1).is_none());
        assert!(Date::try_from_ymd(2021, 0, 1).is_none());
        assert!(Date::try_from_ymd(2021, 4, 31).is_none());
        assert!(Date::try_from_ymd(2021, 4, 0).is_none());
    }

    #[test]
    fn parse_and_display() {
        let d: Date = "2021-11-25".parse().unwrap();
        assert_eq!(d, Date::from_ymd(2021, 11, 25));
        assert_eq!(d.to_string(), "2021-11-25");
        assert!("2021-02-30".parse::<Date>().is_err());
        assert!("2021-11".parse::<Date>().is_err());
        assert!("hello".parse::<Date>().is_err());
        assert!("2021-11-25-06".parse::<Date>().is_err());
    }

    #[test]
    fn iteration_and_arithmetic() {
        let start = Date::from_ymd(2021, 12, 30);
        let end = Date::from_ymd(2022, 1, 2);
        let days: Vec<String> = start.iter_to(end).map(|d| d.to_string()).collect();
        assert_eq!(days, ["2021-12-30", "2021-12-31", "2022-01-01", "2022-01-02"]);
        assert_eq!(end.days_since(start), 3);
        assert_eq!(start.plus_days(3), end);
        assert_eq!(start.succ(), Date::from_ymd(2021, 12, 31));
    }

    #[test]
    fn weekend_detection() {
        assert!(Date::from_ymd(2021, 11, 27).weekday().is_weekend()); // Saturday
        assert!(Date::from_ymd(2021, 11, 28).weekday().is_weekend()); // Sunday
        assert!(!Date::from_ymd(2021, 11, 26).weekday().is_weekend()); // Friday
    }

    #[test]
    fn month_from_number() {
        assert_eq!(Month::from_number(11), Some(Month::November));
        assert_eq!(Month::from_number(0), None);
        assert_eq!(Month::from_number(13), None);
        assert_eq!(Month::November.number(), 11);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_days(days in -1_000_000i64..1_000_000) {
            let d = Date::from_epoch_days(days);
            let (y, m, dd) = d.ymd();
            prop_assert_eq!(Date::from_ymd(y, m, dd).epoch_days(), days);
        }

        #[test]
        fn prop_weekday_cycles(days in -100_000i64..100_000) {
            let a = Date::from_epoch_days(days).weekday();
            let b = Date::from_epoch_days(days + 7).weekday();
            prop_assert_eq!(a, b);
        }

        #[test]
        fn prop_succ_increases(days in -100_000i64..100_000) {
            let d = Date::from_epoch_days(days);
            prop_assert_eq!(d.succ().days_since(d), 1);
            prop_assert!(d.succ() > d);
        }

        #[test]
        fn prop_ymd_valid(days in -1_000_000i64..1_000_000) {
            let (y, m, d) = Date::from_epoch_days(days).ymd();
            prop_assert!((1..=12).contains(&m));
            prop_assert!(d >= 1 && d <= days_in_month(y, m));
        }
    }
}
