//! Simulation time.
//!
//! Everything in the workspace is driven by a virtual clock: [`SimTime`] is
//! seconds since the Unix epoch in the *simulated* world (local time of the
//! observed networks, matching how the paper presents times). The paper's
//! supplemental-measurement pipeline truncates timestamps to 5-minute bins
//! before merging ICMP and rDNS data points (§6.1); [`SimTime::truncate`]
//! implements that.
//!
//! The virtual clock is also what makes simulation-derived telemetry
//! reproducible: metrics measured in [`SimTime`] / [`SimDuration`] units
//! (e.g. DHCP lease lifetimes) are `seed_stable` under the determinism
//! contract in `OBSERVABILITY.md`, whereas anything measured on the host
//! wall clock is not.

use crate::date::Date;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Seconds in a minute.
pub const MINUTE: u64 = 60;
/// Seconds in an hour.
pub const HOUR: u64 = 3_600;
/// Seconds in a day.
pub const DAY: u64 = 86_400;
/// Seconds in a week.
pub const WEEK: u64 = 7 * DAY;

/// A duration on the simulation clock, in whole seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Duration of `n` seconds.
    pub const fn secs(n: u64) -> Self {
        SimDuration(n)
    }

    /// Duration of `n` minutes.
    pub const fn mins(n: u64) -> Self {
        SimDuration(n * MINUTE)
    }

    /// Duration of `n` hours.
    pub const fn hours(n: u64) -> Self {
        SimDuration(n * HOUR)
    }

    /// Duration of `n` days.
    pub const fn days(n: u64) -> Self {
        SimDuration(n * DAY)
    }

    /// Total seconds.
    pub const fn as_secs(&self) -> u64 {
        self.0
    }

    /// Total whole minutes (floor).
    pub const fn as_mins(&self) -> u64 {
        self.0 / MINUTE
    }

    /// Minutes as a float, for histograms/CDFs.
    pub fn as_mins_f64(&self) -> f64 {
        self.0 as f64 / MINUTE as f64
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (h, rem) = (self.0 / HOUR, self.0 % HOUR);
        let (m, s) = (rem / MINUTE, rem % MINUTE);
        write!(f, "{h:02}:{m:02}:{s:02}")
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

/// An instant on the simulation clock: seconds since the Unix epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub i64);

impl SimTime {
    /// Midnight at the start of `date`.
    pub fn from_date(date: Date) -> SimTime {
        SimTime(date.epoch_days() * DAY as i64)
    }

    /// A specific wall-clock moment on `date`.
    pub fn from_date_hms(date: Date, h: u8, m: u8, s: u8) -> SimTime {
        debug_assert!(h < 24 && m < 60 && s < 60);
        SimTime::from_date(date) + SimDuration(h as u64 * HOUR + m as u64 * MINUTE + s as u64)
    }

    /// Raw seconds since the epoch.
    pub const fn as_secs(&self) -> i64 {
        self.0
    }

    /// Calendar date containing this instant.
    pub fn date(&self) -> Date {
        Date::from_epoch_days(self.0.div_euclid(DAY as i64))
    }

    /// Seconds elapsed since the most recent midnight.
    pub fn seconds_of_day(&self) -> u64 {
        self.0.rem_euclid(DAY as i64) as u64
    }

    /// Hour of day, `0..24`.
    pub fn hour(&self) -> u8 {
        (self.seconds_of_day() / HOUR) as u8
    }

    /// Minute within the hour, `0..60`.
    pub fn minute(&self) -> u8 {
        ((self.seconds_of_day() % HOUR) / MINUTE) as u8
    }

    /// Truncate down to a multiple of `bin` seconds (e.g. 300 for the paper's
    /// 5-minute merge bins).
    pub fn truncate(&self, bin: u64) -> SimTime {
        debug_assert!(bin > 0);
        SimTime(self.0.div_euclid(bin as i64) * bin as i64)
    }

    /// Elapsed duration since `earlier`; `None` if `earlier` is in the future.
    pub fn since(&self, earlier: SimTime) -> Option<SimDuration> {
        if self.0 >= earlier.0 {
            Some(SimDuration((self.0 - earlier.0) as u64))
        } else {
            None
        }
    }

    /// Saturating elapsed duration since `earlier` (zero when negative).
    pub fn since_sat(&self, earlier: SimTime) -> SimDuration {
        self.since(earlier).unwrap_or(SimDuration(0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sod = self.seconds_of_day();
        write!(
            f,
            "{} {:02}:{:02}:{:02}",
            self.date(),
            sod / HOUR,
            (sod % HOUR) / MINUTE,
            sod % MINUTE
        )
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0 as i64)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0 as i64;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0 as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_components() {
        let d = Date::from_ymd(2021, 11, 25);
        let t = SimTime::from_date_hms(d, 13, 45, 10);
        assert_eq!(t.date(), d);
        assert_eq!(t.hour(), 13);
        assert_eq!(t.minute(), 45);
        assert_eq!(t.to_string(), "2021-11-25 13:45:10");
    }

    #[test]
    fn truncate_five_minutes() {
        let d = Date::from_ymd(2021, 11, 1);
        let t = SimTime::from_date_hms(d, 9, 7, 31);
        assert_eq!(t.truncate(300), SimTime::from_date_hms(d, 9, 5, 0));
        // Already aligned stays put.
        let a = SimTime::from_date_hms(d, 9, 5, 0);
        assert_eq!(a.truncate(300), a);
    }

    #[test]
    fn durations() {
        assert_eq!(SimDuration::hours(2).as_mins(), 120);
        assert_eq!(SimDuration::days(1).as_secs(), 86_400);
        assert_eq!(SimDuration::mins(90).to_string(), "01:30:00");
        assert_eq!((SimDuration::mins(1) + SimDuration::secs(30)).as_secs(), 90);
        assert!((SimDuration::secs(90).as_mins_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn since_ordering() {
        let d = Date::from_ymd(2021, 11, 1);
        let a = SimTime::from_date_hms(d, 9, 0, 0);
        let b = SimTime::from_date_hms(d, 10, 30, 0);
        assert_eq!(b.since(a), Some(SimDuration::mins(90)));
        assert_eq!(a.since(b), None);
        assert_eq!(a.since_sat(b), SimDuration(0));
    }

    #[test]
    fn arithmetic() {
        let d = Date::from_ymd(2021, 11, 1);
        let t = SimTime::from_date_hms(d, 23, 30, 0);
        let t2 = t + SimDuration::hours(1);
        assert_eq!(t2.date(), Date::from_ymd(2021, 11, 2));
        assert_eq!(t2.hour(), 0);
        assert_eq!(t2 - SimDuration::hours(1), t);
        let mut m = t;
        m += SimDuration::mins(15);
        assert_eq!(m.minute(), 45);
    }

    #[test]
    fn negative_times_before_epoch() {
        let t = SimTime(-1); // 1969-12-31 23:59:59
        assert_eq!(t.date(), Date::from_ymd(1969, 12, 31));
        assert_eq!(t.hour(), 23);
        assert_eq!(t.truncate(300).seconds_of_day(), 23 * HOUR + 55 * MINUTE);
    }

    proptest! {
        #[test]
        fn prop_truncate_idempotent(secs in -10_000_000_000i64..10_000_000_000i64, bin in 1u64..100_000) {
            let t = SimTime(secs).truncate(bin);
            prop_assert_eq!(t.truncate(bin), t);
            prop_assert!(t.0 <= secs);
            prop_assert!(secs - t.0 < bin as i64);
        }

        #[test]
        fn prop_date_hms_roundtrip(days in -100_000i64..100_000, h in 0u8..24, m in 0u8..60, s in 0u8..60) {
            let d = Date::from_epoch_days(days);
            let t = SimTime::from_date_hms(d, h, m, s);
            prop_assert_eq!(t.date(), d);
            prop_assert_eq!(t.hour(), h);
            prop_assert_eq!(t.minute(), m);
        }
    }
}
