//! IPv4 prefix arithmetic.
//!
//! The paper's dynamicity heuristic (§4.1) operates on `/24` blocks and maps
//! them back to the most-specific announced covering prefix (§4.2, Fig. 1).
//! [`Slash24`] and [`Ipv4Net`] provide exactly those two granularities.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// A `/24` IPv4 block, identified by its 24 network bits.
///
/// Stored as the network address shifted right by 8 bits so the whole space
/// fits in a `u32` with the top byte zero; ordering follows address order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Slash24(u32);

impl Slash24 {
    /// Block containing `addr`.
    pub fn containing(addr: Ipv4Addr) -> Self {
        Slash24(u32::from(addr) >> 8)
    }

    /// Construct from the three leading octets.
    pub fn from_octets(a: u8, b: u8, c: u8) -> Self {
        Slash24(((a as u32) << 16) | ((b as u32) << 8) | c as u32)
    }

    /// The network address (`x.y.z.0`).
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.0 << 8)
    }

    /// The host with the given final octet.
    pub fn host(&self, last_octet: u8) -> Ipv4Addr {
        Ipv4Addr::from((self.0 << 8) | last_octet as u32)
    }

    /// Iterate all 256 addresses in the block.
    pub fn addrs(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        let base = self.0 << 8;
        (0u32..256).map(move |i| Ipv4Addr::from(base | i))
    }

    /// Raw 24-bit key (useful as a dense map key).
    pub fn key(&self) -> u32 {
        self.0
    }
}

impl From<Ipv4Addr> for Slash24 {
    fn from(a: Ipv4Addr) -> Self {
        Slash24::containing(a)
    }
}

impl fmt::Debug for Slash24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/24", self.network())
    }
}

impl fmt::Display for Slash24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/24", self.network())
    }
}

/// Errors produced when parsing or constructing [`Ipv4Net`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Prefix length above 32.
    BadLength(u8),
    /// Text did not parse as `a.b.c.d/len`.
    BadSyntax(String),
    /// Host bits were set in the network address.
    HostBitsSet(Ipv4Addr, u8),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::BadLength(l) => write!(f, "prefix length {l} exceeds 32"),
            NetError::BadSyntax(s) => write!(f, "malformed CIDR literal: {s:?}"),
            NetError::HostBitsSet(a, l) => write!(f, "{a} has host bits set for /{l}"),
        }
    }
}

impl std::error::Error for NetError {}

/// An IPv4 CIDR prefix (`network/len`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ipv4Net {
    network: u32,
    len: u8,
}

impl Ipv4Net {
    /// Create a prefix, normalizing (zeroing) host bits.
    pub fn new(addr: Ipv4Addr, len: u8) -> Result<Self, NetError> {
        if len > 32 {
            return Err(NetError::BadLength(len));
        }
        let mask = Self::mask_for(len);
        Ok(Ipv4Net {
            network: u32::from(addr) & mask,
            len,
        })
    }

    /// Create a prefix, rejecting addresses with host bits set.
    pub fn new_strict(addr: Ipv4Addr, len: u8) -> Result<Self, NetError> {
        let net = Self::new(addr, len)?;
        if net.network != u32::from(addr) {
            return Err(NetError::HostBitsSet(addr, len));
        }
        Ok(net)
    }

    fn mask_for(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    /// The network address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.network)
    }

    /// Prefix length in bits (`/len` in CIDR notation — not a container
    /// length, hence no `is_empty`).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Number of addresses covered (saturating at `u32::MAX` for `/0`).
    pub fn size(&self) -> u32 {
        if self.len == 0 {
            u32::MAX
        } else {
            1u32 << (32 - self.len as u32)
        }
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & Self::mask_for(self.len) == self.network
    }

    /// Whether `other` is fully covered by this prefix.
    pub fn covers(&self, other: &Ipv4Net) -> bool {
        self.len <= other.len && self.contains(other.network())
    }

    /// Number of `/24` blocks this prefix contains (1 for `/24`..`/32`).
    pub fn slash24_count(&self) -> u32 {
        if self.len >= 24 {
            1
        } else {
            1u32 << (24 - self.len as u32)
        }
    }

    /// Iterate the `/24` blocks covered by this prefix.
    pub fn slash24s(&self) -> impl Iterator<Item = Slash24> + '_ {
        let first = self.network >> 8;
        let n = self.slash24_count();
        (0..n).map(move |i| Slash24(first + i))
    }

    /// Iterate every address in the prefix. Use only for small prefixes.
    pub fn addrs(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        let first = self.network;
        let n = self.size() as u64;
        (0..n).map(move |i| Ipv4Addr::from(first.wrapping_add(i as u32)))
    }
}

impl fmt::Debug for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl fmt::Display for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for Ipv4Net {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| NetError::BadSyntax(s.to_string()))?;
        let addr: Ipv4Addr = addr
            .parse()
            .map_err(|_| NetError::BadSyntax(s.to_string()))?;
        let len: u8 = len.parse().map_err(|_| NetError::BadSyntax(s.to_string()))?;
        Ipv4Net::new_strict(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn slash24_roundtrip() {
        let a: Ipv4Addr = "192.0.2.57".parse().unwrap();
        let b = Slash24::containing(a);
        assert_eq!(b.network(), "192.0.2.0".parse::<Ipv4Addr>().unwrap());
        assert_eq!(b.host(57), a);
        assert_eq!(b.addrs().count(), 256);
    }

    #[test]
    fn slash24_from_octets_matches_containing() {
        assert_eq!(
            Slash24::from_octets(10, 1, 2),
            Slash24::containing("10.1.2.200".parse().unwrap())
        );
    }

    #[test]
    fn net_parse_display_roundtrip() {
        for s in ["10.0.0.0/8", "192.0.2.0/24", "130.89.0.0/16", "0.0.0.0/0"] {
            let n: Ipv4Net = s.parse().unwrap();
            assert_eq!(n.to_string(), s);
        }
    }

    #[test]
    fn net_strict_rejects_host_bits() {
        assert!("10.0.0.1/8".parse::<Ipv4Net>().is_err());
        assert!(Ipv4Net::new_strict("10.0.0.1".parse().unwrap(), 8).is_err());
        // Non-strict normalizes instead.
        let n = Ipv4Net::new("10.0.0.1".parse().unwrap(), 8).unwrap();
        assert_eq!(n.network(), "10.0.0.0".parse::<Ipv4Addr>().unwrap());
    }

    #[test]
    fn net_rejects_bad_len() {
        assert!(Ipv4Net::new("10.0.0.0".parse().unwrap(), 33).is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Net>().is_err());
        assert!("10.0.0.0".parse::<Ipv4Net>().is_err());
        assert!("banana/8".parse::<Ipv4Net>().is_err());
    }

    #[test]
    fn contains_and_covers() {
        let n: Ipv4Net = "130.89.0.0/16".parse().unwrap();
        assert!(n.contains("130.89.12.1".parse().unwrap()));
        assert!(!n.contains("130.90.0.1".parse().unwrap()));
        let sub: Ipv4Net = "130.89.12.0/24".parse().unwrap();
        assert!(n.covers(&sub));
        assert!(!sub.covers(&n));
        assert!(n.covers(&n));
    }

    #[test]
    fn slash24_enumeration() {
        let n: Ipv4Net = "192.0.2.0/23".parse().unwrap();
        let blocks: Vec<_> = n.slash24s().collect();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].network(), "192.0.2.0".parse::<Ipv4Addr>().unwrap());
        assert_eq!(blocks[1].network(), "192.0.3.0".parse::<Ipv4Addr>().unwrap());
        let single: Ipv4Net = "192.0.2.128/25".parse().unwrap();
        assert_eq!(single.slash24_count(), 1);
    }

    #[test]
    fn sizes() {
        assert_eq!("10.0.0.0/24".parse::<Ipv4Net>().unwrap().size(), 256);
        assert_eq!("10.0.0.0/16".parse::<Ipv4Net>().unwrap().size(), 65536);
        assert_eq!("10.0.0.0/32".parse::<Ipv4Net>().unwrap().size(), 1);
    }

    #[test]
    fn zero_len_prefix_contains_everything() {
        let n: Ipv4Net = "0.0.0.0/0".parse().unwrap();
        assert!(n.contains("255.255.255.255".parse().unwrap()));
        assert!(n.contains("0.0.0.0".parse().unwrap()));
    }

    proptest! {
        #[test]
        fn prop_slash24_contains_its_hosts(a in any::<u32>(), o in any::<u8>()) {
            let block = Slash24::containing(Ipv4Addr::from(a));
            let host = block.host(o);
            prop_assert_eq!(Slash24::containing(host), block);
        }

        #[test]
        fn prop_net_contains_network_addr(a in any::<u32>(), len in 0u8..=32) {
            let n = Ipv4Net::new(Ipv4Addr::from(a), len).unwrap();
            prop_assert!(n.contains(n.network()));
        }

        #[test]
        fn prop_slash24s_covered(a in any::<u32>(), len in 8u8..=24) {
            let n = Ipv4Net::new(Ipv4Addr::from(a), len).unwrap();
            for b in n.slash24s().take(64) {
                prop_assert!(n.contains(b.network()));
            }
        }

        #[test]
        fn prop_parse_roundtrip(a in any::<u32>(), len in 0u8..=32) {
            let n = Ipv4Net::new(Ipv4Addr::from(a), len).unwrap();
            let re: Ipv4Net = n.to_string().parse().unwrap();
            prop_assert_eq!(n, re);
        }
    }
}
