//! Open-loop dispatch: thousands of logical clients, a few OS threads.
//!
//! The generator materialises an [`ArrivalSchedule`] and replays it against
//! a sharded serve front in wall-clock time. Logical clients are cheap — a
//! client is a (shard assignment, ChaCha8 message-ID stream) pair — so
//! "thousands of concurrent clients" costs thousands of RNG states, not
//! thousands of threads. Dispatch runs on `config.workers` OS threads, each
//! owning one connected nonblocking socket per shard plus a 65536-slot
//! in-flight table per socket, so the receive path never takes a lock.
//!
//! Assignment is stable and deterministic: event *i* belongs to client
//! `i % clients`, client *c* is dispatched by worker `c % workers` through
//! shard `c % shards`. The timeline itself never depends on any of these
//! (see [`crate::schedule`]).

use crate::schedule::{ArrivalSchedule, LoadConfig};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rdns_dns::{Message, Question};
use rdns_model::SimTime;
use rdns_scan::TokenBucket;
use rdns_telemetry::{Counter, Determinism, Gauge, Histogram, Registry};
use std::collections::HashMap;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

/// Per-client seed spacing for the message-ID streams.
const CLIENT_STREAM: u64 = 0xC11E_4700_0003;
const CLIENT_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// A dispatch is "late" when it fires this far behind its scheduled instant.
const LATE_THRESHOLD_NANOS: u64 = 1_000_000;

/// Idle sleep while waiting for a distant arrival or a straggling response:
/// long enough to hand the core to the server threads, short enough to stay
/// within the late threshold.
const IDLE_SLEEP: Duration = Duration::from_micros(200);

/// Slot sentinel: no query in flight under this message ID.
const VACANT: u64 = u64::MAX;

/// Upper bound on datagrams classified per shard per drain pass, mirroring
/// the server's drain batching: responses are pulled and accounted
/// back-to-back, but the loop surfaces between batches so dispatch
/// deadlines are still checked under response floods.
const RECV_BATCH: usize = 64;

/// Wall-clock telemetry cells for the generator, one set per run. All
/// metrics are [`Determinism::WallClock`]: offered load replays a seeded
/// schedule, but completions, latencies, and drops depend on real kernel
/// timing.
#[derive(Debug)]
pub struct LoadStats {
    /// Queries dispatched onto the wire.
    pub sent: Counter,
    /// Responses with answers.
    pub answered: Counter,
    /// NXDOMAIN responses.
    pub nxdomain: Counter,
    /// NoError responses without answers.
    pub nodata: Counter,
    /// SERVFAIL responses.
    pub servfail: Counter,
    /// Responses that matched no in-flight query (late duplicates, evicted
    /// slots) or carried an unexpected rcode.
    pub unmatched: Counter,
    /// Queries never answered within the drain grace.
    pub timeout: Counter,
    /// Dispatches that fired >1ms behind schedule (open-loop fidelity).
    pub late: Counter,
    /// Dispatches delayed by the optional token-bucket ceiling.
    pub throttled: Counter,
    /// `send(2)` failures (full socket buffer).
    pub send_failed: Counter,
    /// Queries currently awaiting a response.
    pub in_flight: Gauge,
    /// Per-shard query latency in microseconds, indexed by shard.
    pub latency_us: Vec<Histogram>,
}

impl LoadStats {
    /// Unregistered cells (counters work but render nowhere).
    pub fn unregistered(shards: usize) -> LoadStats {
        LoadStats {
            sent: Counter::default(),
            answered: Counter::default(),
            nxdomain: Counter::default(),
            nodata: Counter::default(),
            servfail: Counter::default(),
            unmatched: Counter::default(),
            timeout: Counter::default(),
            late: Counter::default(),
            throttled: Counter::default(),
            send_failed: Counter::default(),
            in_flight: Gauge::default(),
            latency_us: (0..shards.max(1)).map(|_| Histogram::default()).collect(),
        }
    }

    /// Registry-backed cells under `rdns_loadgen_*`; the latency histogram
    /// is labeled per socket shard.
    pub fn with_registry(registry: &Registry, shards: usize) -> LoadStats {
        let c = |name, help| registry.counter(name, help, Determinism::WallClock);
        LoadStats {
            sent: c("rdns_loadgen_sent_total", "Queries dispatched onto the wire."),
            answered: c(
                "rdns_loadgen_answered_total",
                "Responses carrying at least one answer record.",
            ),
            nxdomain: c("rdns_loadgen_nxdomain_total", "NXDOMAIN responses."),
            nodata: c("rdns_loadgen_nodata_total", "NoError/NoData responses."),
            servfail: c("rdns_loadgen_servfail_total", "SERVFAIL responses."),
            unmatched: c(
                "rdns_loadgen_unmatched_total",
                "Responses matching no in-flight query, or unexpected rcodes.",
            ),
            timeout: c(
                "rdns_loadgen_timeout_total",
                "Queries unanswered within the drain grace.",
            ),
            late: c(
                "rdns_loadgen_late_total",
                "Dispatches that fired more than 1ms behind schedule.",
            ),
            throttled: c(
                "rdns_loadgen_throttled_total",
                "Dispatches delayed by the token-bucket rate ceiling.",
            ),
            send_failed: c(
                "rdns_loadgen_send_failed_total",
                "UDP send failures (full socket buffer).",
            ),
            in_flight: registry.gauge(
                "rdns_loadgen_in_flight",
                "Queries currently awaiting a response.",
                Determinism::WallClock,
            ),
            latency_us: (0..shards.max(1))
                .map(|k| {
                    registry.histogram(
                        &format!("rdns_loadgen_latency_us{{shard=\"{k}\"}}"),
                        "Query round-trip latency in microseconds, per socket shard.",
                        Determinism::WallClock,
                    )
                })
                .collect(),
        }
    }
}

/// Outcome of a load run: plain-value counters plus the latency SLO view.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Queries dispatched.
    pub sent: u64,
    /// Responses with answers.
    pub answered: u64,
    /// NXDOMAIN responses.
    pub nxdomain: u64,
    /// NoError/NoData responses.
    pub nodata: u64,
    /// SERVFAIL responses.
    pub servfail: u64,
    /// Unmatched or unclassifiable responses.
    pub unmatched: u64,
    /// Queries unanswered within the drain grace.
    pub timeouts: u64,
    /// Dispatches >1ms behind schedule.
    pub late: u64,
    /// Dispatches delayed by the rate ceiling.
    pub throttled: u64,
    /// UDP send failures.
    pub send_failed: u64,
    /// Peak concurrently-in-flight queries observed by any worker.
    pub max_in_flight: i64,
    /// Wall-clock duration of the run including drain.
    pub elapsed: Duration,
    /// Offered rate actually achieved: sent / elapsed.
    pub offered_qps: f64,
    /// Completion rate: (answered+nxdomain+nodata+servfail) / elapsed.
    pub completed_qps: f64,
    /// Median latency in microseconds (log2-bucket estimate).
    pub p50_us: Option<u64>,
    /// 99th-percentile latency in microseconds.
    pub p99_us: Option<u64>,
    /// 99.9th-percentile latency in microseconds.
    pub p999_us: Option<u64>,
    /// Latency observations per socket shard.
    pub latency_counts: Vec<u64>,
}

impl LoadReport {
    /// Queries that failed outright: SERVFAIL, timeout, unmatched, or
    /// unsendable. NXDOMAIN/NoData are *not* failures — they are correct
    /// authoritative answers about absent names.
    pub fn failed(&self) -> u64 {
        self.servfail + self.timeouts + self.unmatched + self.send_failed
    }

    /// Responses accounted for (every class except timeouts).
    pub fn completed(&self) -> u64 {
        self.answered + self.nxdomain + self.nodata + self.servfail
    }
}

/// The open-loop load generator.
pub struct LoadGenerator {
    config: LoadConfig,
    registry: Option<Registry>,
}

impl LoadGenerator {
    /// A generator replaying `config`'s schedule.
    pub fn new(config: LoadConfig) -> LoadGenerator {
        LoadGenerator {
            config,
            registry: None,
        }
    }

    /// Route telemetry through `registry` (as `rdns_loadgen_*`).
    pub fn with_registry(mut self, registry: &Registry) -> LoadGenerator {
        self.registry = Some(registry.clone());
        self
    }

    /// Run the schedule against the shard sockets at `addrs`, querying the
    /// PTR names of `targets`. Blocks until every query is answered or the
    /// drain grace expires.
    pub fn run(&self, addrs: &[SocketAddr], targets: &[Ipv4Addr]) -> io::Result<LoadReport> {
        assert!(!addrs.is_empty(), "need at least one shard address");
        let shards = addrs.len();
        let stats = match &self.registry {
            Some(r) => LoadStats::with_registry(r, shards),
            None => LoadStats::unregistered(shards),
        };
        let schedule = ArrivalSchedule::generate(&self.config, targets);
        let clients = self.config.clients.max(1);
        let workers = self.config.workers.max(1).min(clients);

        // Pre-encode one query template per distinct target; workers patch
        // the two ID bytes per dispatch instead of re-encoding.
        let mut template_index: HashMap<Ipv4Addr, usize> = HashMap::new();
        let mut templates: Vec<Vec<u8>> = Vec::new();
        let mut worker_events: Vec<Vec<WorkerEvent>> = vec![Vec::new(); workers];
        for (i, e) in schedule.events().iter().enumerate() {
            let pkt = *template_index.entry(e.target).or_insert_with(|| {
                templates.push(Message::query(0, Question::ptr_for(e.target)).encode());
                templates.len() - 1
            });
            let client = i % clients;
            worker_events[client % workers].push(WorkerEvent {
                at_nanos: e.at_nanos,
                pkt,
                shard: client % shards,
                local_client: client / workers,
            });
        }

        let start = Instant::now();
        let max_seen = std::thread::scope(|scope| -> io::Result<Vec<i64>> {
            let mut handles = Vec::with_capacity(workers);
            for (w, events) in worker_events.iter().enumerate() {
                let stats = &stats;
                let templates = &templates;
                let config = &self.config;
                handles.push(scope.spawn(move || {
                    run_worker(w, workers, events, addrs, templates, config, stats, start)
                }));
            }
            let mut maxes = Vec::with_capacity(workers);
            for h in handles {
                maxes.push(h.join().expect("load worker panicked")?);
            }
            Ok(maxes)
        })?;

        let elapsed = start.elapsed();
        let merged = Histogram::default();
        for h in &stats.latency_us {
            merged.absorb(h);
        }
        let secs = elapsed.as_secs_f64().max(f64::EPSILON);
        let report = LoadReport {
            sent: stats.sent.get(),
            answered: stats.answered.get(),
            nxdomain: stats.nxdomain.get(),
            nodata: stats.nodata.get(),
            servfail: stats.servfail.get(),
            unmatched: stats.unmatched.get(),
            timeouts: stats.timeout.get(),
            late: stats.late.get(),
            throttled: stats.throttled.get(),
            send_failed: stats.send_failed.get(),
            max_in_flight: max_seen.into_iter().max().unwrap_or(0),
            elapsed,
            offered_qps: stats.sent.get() as f64 / secs,
            completed_qps: (stats.answered.get()
                + stats.nxdomain.get()
                + stats.nodata.get()
                + stats.servfail.get()) as f64
                / secs,
            p50_us: merged.quantile(0.50),
            p99_us: merged.quantile(0.99),
            p999_us: merged.quantile(0.999),
            latency_counts: stats.latency_us.iter().map(|h| h.count()).collect(),
        };
        Ok(report)
    }
}

/// One event as a worker sees it: resolved template, shard, and the
/// worker-local client slot that owns the message-ID stream.
#[derive(Debug, Clone, Copy)]
struct WorkerEvent {
    at_nanos: u64,
    pkt: usize,
    shard: usize,
    local_client: usize,
}

/// Per-socket in-flight bookkeeping: send instant by message ID.
struct ShardState {
    sock: UdpSocket,
    slots: Vec<u64>,
    in_flight: i64,
}

/// Everything a worker allocates up front so that [`dispatch_loop`] — the
/// per-query hot path, declared panic- and alloc-free in `lint.toml` — can
/// run without touching the allocator: the shard sockets with their
/// in-flight tables, the pre-sized per-client RNG slots, the pacing bucket,
/// and the scratch packet buffer reused across dispatches.
struct WorkerState {
    shards: Vec<ShardState>,
    /// Per-client message-ID streams, lazily seeded: local slot l belongs to
    /// global client l·workers + worker. Pre-sized to the largest
    /// `local_client` so the hot loop never grows it.
    id_rngs: Vec<Option<ChaCha8Rng>>,
    /// Per-worker slice of the optional ceiling. The scanner's bucket ticks
    /// on whole sim-seconds, far too coarse for pacing (a 1s refill releases
    /// the whole second's quota as one burst, overflowing UDP buffers), so
    /// we feed it wall-milliseconds as if they were seconds and divide the
    /// rate by 1000: same bucket, millisecond pacing.
    ceiling: Option<TokenBucket>,
    /// Outgoing packet scratch, sized for the largest template.
    scratch: Vec<u8>,
}

#[allow(clippy::too_many_arguments)]
fn run_worker(
    worker: usize,
    workers: usize,
    events: &[WorkerEvent],
    addrs: &[SocketAddr],
    templates: &[Vec<u8>],
    config: &LoadConfig,
    stats: &LoadStats,
    start: Instant,
) -> io::Result<i64> {
    let mut shards = Vec::with_capacity(addrs.len());
    for addr in addrs {
        let sock = UdpSocket::bind("127.0.0.1:0")?;
        sock.connect(addr)?;
        sock.set_nonblocking(true)?;
        shards.push(ShardState {
            sock,
            slots: vec![VACANT; 1 << 16],
            in_flight: 0,
        });
    }
    let local_clients = events.iter().map(|e| e.local_client + 1).max().unwrap_or(0);
    let ceiling = config.rate_ceiling.map(|rate| {
        let per_tick = rate / workers as f64 / 1_000.0;
        let burst = per_tick.ceil().max(1.0) as u32;
        TokenBucket::new(per_tick, burst, SimTime(0))
    });
    let mut state = WorkerState {
        shards,
        id_rngs: vec![None; local_clients],
        ceiling,
        scratch: Vec::with_capacity(templates.iter().map(Vec::len).max().unwrap_or(0)),
    };
    dispatch_loop(
        worker, workers, events, templates, config, stats, start, &mut state,
    )
}

/// The per-query hot loop: replay due events, drain responses, pace.
///
/// Declared in `lint.toml` as panic- and alloc-free: every slot lookup is a
/// `get`/`get_mut` that branches into a telemetry counter instead of
/// indexing, timestamp arithmetic saturates, and the outgoing packet is
/// built in `state.scratch` rather than cloning the template per dispatch.
#[allow(clippy::too_many_arguments)]
fn dispatch_loop(
    worker: usize,
    workers: usize,
    events: &[WorkerEvent],
    templates: &[Vec<u8>],
    config: &LoadConfig,
    stats: &LoadStats,
    start: Instant,
    state: &mut WorkerState,
) -> io::Result<i64> {
    let mut throttled_event: Option<usize> = None;
    let mut buf = [0u8; 1500];
    let mut next = 0usize;
    let mut max_in_flight = 0i64;
    let deadline_grace = config.drain_grace;
    let mut drain_deadline: Option<Instant> = None;
    loop {
        let now_nanos = start.elapsed().as_nanos() as u64;
        // Dispatch everything due.
        while let Some(&e) = events.get(next) {
            if e.at_nanos > now_nanos {
                break;
            }
            if let Some(bucket) = state.ceiling.as_mut() {
                let tick = SimTime((now_nanos / 1_000_000) as i64);
                if !bucket.try_take(tick) {
                    // Count each *event* deferred once, not every retry.
                    if throttled_event != Some(next) {
                        throttled_event = Some(next);
                        stats.throttled.inc();
                    }
                    break;
                }
            }
            next += 1;
            if now_nanos.saturating_sub(e.at_nanos) > LATE_THRESHOLD_NANOS {
                stats.late.inc();
            }
            // Both lookups are infallible by construction (events were built
            // from these very tables); the counter branches keep the loop
            // panic-free even against a bookkeeping bug.
            let Some(rng_slot) = state.id_rngs.get_mut(e.local_client) else {
                stats.send_failed.inc();
                continue;
            };
            let Some(template) = templates.get(e.pkt) else {
                stats.send_failed.inc();
                continue;
            };
            let Some(shard) = state.shards.get_mut(e.shard) else {
                stats.send_failed.inc();
                continue;
            };
            let rng = rng_slot.get_or_insert_with(|| {
                let client = (e.local_client * workers + worker) as u64;
                ChaCha8Rng::seed_from_u64(
                    config.seed ^ CLIENT_STREAM ^ client.wrapping_mul(CLIENT_STRIDE),
                )
            });
            // Claim the in-flight slot *before* the packet is rendered and
            // sent, so the ID on the wire is always the ID being tracked
            // (collisions probe to a different ID — see `claim_slot`).
            let id = claim_slot(shard, (rng.next_u32() & 0xFFFF) as u16, now_nanos, stats);
            state.scratch.clear();
            state.scratch.extend_from_slice(template);
            if let [hi, lo, ..] = state.scratch.as_mut_slice() {
                *hi = (id >> 8) as u8;
                *lo = id as u8;
            }
            match shard.sock.send(&state.scratch) {
                Ok(_) => {
                    stats.sent.inc();
                    stats.in_flight.add(1);
                    max_in_flight = max_in_flight.max(stats.in_flight.get());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // Nothing went out: release the claimed slot.
                    if let Some(slot) = shard.slots.get_mut(id as usize) {
                        *slot = VACANT;
                    }
                    shard.in_flight -= 1;
                    stats.send_failed.inc();
                }
                Err(e) => return Err(e),
            }
        }
        // Drain responses on every shard socket, in bounded batches.
        let mut received_any = false;
        for (k, shard) in state.shards.iter_mut().enumerate() {
            if drain_shard(shard, k, stats, start, &mut buf)? > 0 {
                received_any = true;
            }
        }
        let in_flight: i64 = state.shards.iter().map(|s| s.in_flight).sum();
        let Some(upcoming) = events.get(next) else {
            if in_flight == 0 {
                return Ok(max_in_flight);
            }
            let deadline = *drain_deadline.get_or_insert_with(|| Instant::now() + deadline_grace);
            if Instant::now() >= deadline {
                // Give up on the stragglers.
                for shard in &mut state.shards {
                    let remaining = shard.in_flight;
                    stats.timeout.add(remaining as u64);
                    stats.in_flight.sub(remaining);
                    shard.in_flight = 0;
                }
                return Ok(max_in_flight);
            }
            if !received_any {
                std::thread::sleep(IDLE_SLEEP);
            }
            continue;
        };
        // Sleep only when the next arrival is comfortably far (or the
        // ceiling is holding it back); otherwise spin through another drain
        // pass to keep dispatch jitter low.
        let throttling = throttled_event == Some(next);
        let wait = upcoming.at_nanos.saturating_sub(start.elapsed().as_nanos() as u64);
        let idle = !received_any && (throttling || (wait > 500_000 && in_flight == 0));
        if idle {
            std::thread::sleep(IDLE_SLEEP);
        } else if wait > 100_000 {
            std::thread::yield_now();
        }
    }
}

/// Claim an in-flight slot for a dispatch whose RNG drew `id`.
///
/// The drawn ID is the preferred slot; when it is occupied the table is
/// probed linearly (wrapping) for a vacant ID. With 65536 slots and
/// bounded in-flight windows a vacancy always exists, so the older query
/// keeps its slot and both queries remain matchable — the historical
/// overwrite-on-collision raced the older query's late response against
/// the new query's slot, double-counting one collision as a timeout *and*
/// an unmatched response. Only when every slot is occupied is the older
/// query at the drawn ID retired deterministically as `unmatched` (its
/// response can no longer be attributed) and its slot taken over.
///
/// Returns the ID actually claimed; `shard.in_flight` is incremented. Runs
/// per dispatch, so it shares [`dispatch_loop`]'s panic- and alloc-free
/// hot-path contract.
fn claim_slot(shard: &mut ShardState, id: u16, now_nanos: u64, stats: &LoadStats) -> u16 {
    let mut candidate = id;
    loop {
        if let Some(slot) = shard.slots.get_mut(candidate as usize) {
            if *slot == VACANT {
                *slot = now_nanos;
                shard.in_flight += 1;
                return candidate;
            }
        }
        candidate = candidate.wrapping_add(1);
        if candidate == id {
            break;
        }
    }
    // Full table: 65536 queries in flight on this shard. Retire the older
    // query under the drawn ID deterministically and take the slot.
    stats.unmatched.inc();
    stats.in_flight.sub(1);
    if let Some(slot) = shard.slots.get_mut(id as usize) {
        *slot = now_nanos;
    }
    id
}

/// Drain up to [`RECV_BATCH`] queued responses from one shard socket,
/// classifying them back-to-back. Returns how many were received; the
/// caller loops its dispatch/drain cycle, so a flood is consumed across
/// passes without starving dispatch deadlines.
fn drain_shard(
    shard: &mut ShardState,
    shard_idx: usize,
    stats: &LoadStats,
    start: Instant,
    buf: &mut [u8],
) -> io::Result<usize> {
    let mut received = 0usize;
    while received < RECV_BATCH {
        match shard.sock.recv(buf) {
            Ok(n) => {
                received += 1;
                let datagram = buf.get(..n).unwrap_or_default();
                classify(datagram, shard, shard_idx, stats, start);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) => return Err(e),
        }
    }
    Ok(received)
}

/// Header-only response classification: enough to account the query without
/// decoding names. Bytes 0-1 are the ID, byte 3's low nibble the RCODE,
/// bytes 6-7 ANCOUNT. Runs once per received datagram, so it shares the
/// hot-path contract of [`dispatch_loop`]: malformed or unmatchable input
/// increments `unmatched` and returns — it never panics.
fn classify(
    buf: &[u8],
    shard: &mut ShardState,
    shard_idx: usize,
    stats: &LoadStats,
    start: Instant,
) {
    if buf.len() < 12 {
        stats.unmatched.inc();
        return;
    }
    let &[id_hi, id_lo, _, flags_lo, _, _, an_hi, an_lo, ..] = buf else {
        stats.unmatched.inc();
        return;
    };
    let id = u16::from_be_bytes([id_hi, id_lo]) as usize;
    let Some(slot) = shard.slots.get_mut(id) else {
        stats.unmatched.inc();
        return;
    };
    let sent_at = *slot;
    if sent_at == VACANT {
        stats.unmatched.inc();
        return;
    }
    *slot = VACANT;
    shard.in_flight -= 1;
    stats.in_flight.sub(1);
    let latency_ns = (start.elapsed().as_nanos() as u64).saturating_sub(sent_at);
    if let Some(latency) = stats.latency_us.get(shard_idx) {
        latency.observe(latency_ns / 1_000);
    }
    let rcode = flags_lo & 0x0F;
    let ancount = u16::from_be_bytes([an_hi, an_lo]);
    match (rcode, ancount) {
        (0, 0) => stats.nodata.inc(),
        (0, _) => stats.answered.inc(),
        (3, _) => stats.nxdomain.inc(),
        (2, _) => stats.servfail.inc(),
        _ => stats.unmatched.inc(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_shard() -> ShardState {
        ShardState {
            sock: UdpSocket::bind("127.0.0.1:0").expect("bind test socket"),
            slots: vec![VACANT; 1 << 16],
            in_flight: 0,
        }
    }

    /// A minimal DNS response header: `id`, RD|RA flags with `rcode`, and
    /// `ancount` answers.
    fn response(id: u16, rcode: u8, ancount: u16) -> [u8; 12] {
        let [id_hi, id_lo] = id.to_be_bytes();
        let [an_hi, an_lo] = ancount.to_be_bytes();
        [id_hi, id_lo, 0x81, 0x80 | rcode, 0, 0, an_hi, an_lo, 0, 0, 0, 0]
    }

    #[test]
    fn classify_counts_short_datagram_as_unmatched() {
        let stats = LoadStats::unregistered(1);
        let mut shard = test_shard();
        for len in 0..12 {
            classify(&vec![0u8; len], &mut shard, 0, &stats, Instant::now());
        }
        assert_eq!(stats.unmatched.get(), 12);
        assert_eq!(shard.in_flight, 0);
    }

    #[test]
    fn classify_counts_unknown_id_as_unmatched() {
        let stats = LoadStats::unregistered(1);
        let mut shard = test_shard();
        // No query with ID 7 is in flight: the slot is VACANT.
        classify(&response(7, 0, 1), &mut shard, 0, &stats, Instant::now());
        assert_eq!(stats.unmatched.get(), 1);
        assert_eq!(stats.answered.get(), 0);
        assert_eq!(shard.in_flight, 0);
    }

    #[test]
    fn classify_matches_in_flight_response_and_vacates_slot() {
        let stats = LoadStats::unregistered(1);
        let mut shard = test_shard();
        shard.slots[7] = 0; // sent at t=0
        shard.in_flight = 1;
        stats.in_flight.add(1);
        classify(&response(7, 0, 1), &mut shard, 0, &stats, Instant::now());
        assert_eq!(stats.answered.get(), 1);
        assert_eq!(shard.in_flight, 0);
        assert_eq!(stats.in_flight.get(), 0);
        assert_eq!(shard.slots[7], VACANT);
        assert_eq!(stats.latency_us[0].count(), 1);
        // A duplicate of the same response no longer matches anything.
        classify(&response(7, 0, 1), &mut shard, 0, &stats, Instant::now());
        assert_eq!(stats.unmatched.get(), 1);
        assert_eq!(stats.answered.get(), 1);
    }

    #[test]
    fn claim_slot_probes_past_collisions_without_losing_either_query() {
        // Regression for the latency-lane flake: an ID collision used to
        // overwrite the older query's slot, racing its late response into
        // the new slot — one collision became a timeout *and* an unmatched
        // response. Probing keeps both queries matchable with no failures.
        let stats = LoadStats::unregistered(1);
        let mut shard = test_shard();
        assert_eq!(claim_slot(&mut shard, 7, 100, &stats), 7);
        assert_eq!(claim_slot(&mut shard, 7, 200, &stats), 8, "collision must probe");
        assert_eq!(shard.slots[7], 100, "older query keeps its slot");
        assert_eq!(shard.slots[8], 200);
        assert_eq!(shard.in_flight, 2);
        assert_eq!(stats.timeout.get(), 0);
        assert_eq!(stats.unmatched.get(), 0);

        // Both responses now match their own queries, in either order.
        stats.in_flight.add(2);
        classify(&response(7, 0, 1), &mut shard, 0, &stats, Instant::now());
        classify(&response(8, 3, 0), &mut shard, 0, &stats, Instant::now());
        assert_eq!(stats.answered.get(), 1);
        assert_eq!(stats.nxdomain.get(), 1);
        assert_eq!(stats.unmatched.get(), 0);
        assert_eq!(shard.in_flight, 0);
    }

    #[test]
    fn claim_slot_wraps_around_the_table() {
        let stats = LoadStats::unregistered(1);
        let mut shard = test_shard();
        shard.slots[0xFFFF] = 1;
        shard.slots[0] = 2;
        shard.in_flight = 2;
        assert_eq!(claim_slot(&mut shard, 0xFFFF, 300, &stats), 1);
        assert_eq!(shard.slots[1], 300);
        assert_eq!(shard.in_flight, 3);
    }

    #[test]
    fn claim_slot_retires_oldest_deterministically_when_table_is_full() {
        let stats = LoadStats::unregistered(1);
        let mut shard = test_shard();
        for slot in shard.slots.iter_mut() {
            *slot = 5;
        }
        shard.in_flight = 1 << 16;
        stats.in_flight.add(1 << 16);
        assert_eq!(claim_slot(&mut shard, 42, 400, &stats), 42);
        assert_eq!(shard.slots[42], 400, "slot taken over by the new query");
        assert_eq!(stats.unmatched.get(), 1, "older query retired as unmatched");
        assert_eq!(stats.timeout.get(), 0);
        assert_eq!(shard.in_flight, 1 << 16, "retire + claim is in-flight neutral");
        assert_eq!(stats.in_flight.get(), (1 << 16) - 1);
    }

    #[test]
    fn classify_buckets_rcodes() {
        let stats = LoadStats::unregistered(1);
        let mut shard = test_shard();
        for (id, rcode) in [(1u16, 3u8), (2, 2), (3, 9)] {
            shard.slots[id as usize] = 0;
            shard.in_flight += 1;
            stats.in_flight.add(1);
            classify(&response(id, rcode, 0), &mut shard, 0, &stats, Instant::now());
        }
        assert_eq!(stats.nxdomain.get(), 1);
        assert_eq!(stats.servfail.get(), 1);
        // Reserved rcode 9: matched (slot vacated) but counted unmatched.
        assert_eq!(stats.unmatched.get(), 1);
        assert_eq!(shard.in_flight, 0);
    }
}
