//! Closed-loop saturation probe: how fast *can* the serve path go?
//!
//! The open-loop generator measures latency at a chosen offered rate; this
//! probe measures the ceiling. It keeps a fixed window of queries in flight
//! per shard socket and counts completions — a windowed closed loop, the
//! same discipline the pipelined sweeper uses, but with the lean wire path
//! (pre-encoded packets, header-only decode) so the probe itself is not the
//! bottleneck.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rdns_dns::{Message, Question};
use rdns_scan::Permutation;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

/// Configuration for a saturation run.
#[derive(Debug, Clone)]
pub struct SaturationConfig {
    /// Total completions to collect before stopping.
    pub total_queries: u64,
    /// In-flight window per shard socket.
    pub window_per_shard: u64,
    /// Seed for the target walk.
    pub seed: u64,
    /// Hard wall-clock cap; the probe reports whatever completed by then.
    pub time_limit: Duration,
}

impl Default for SaturationConfig {
    fn default() -> Self {
        SaturationConfig {
            total_queries: 100_000,
            window_per_shard: 64,
            seed: 1,
            time_limit: Duration::from_secs(30),
        }
    }
}

/// Outcome of a saturation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaturationReport {
    /// Queries completed (any response).
    pub completed: u64,
    /// Queries sent.
    pub sent: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Completions per second: the serve path's measured capacity.
    pub qps: f64,
    /// Whether the run hit the time limit before `total_queries`.
    pub timed_out: bool,
}

/// Drive the shard sockets at `addrs` flat-out and measure completion rate.
pub fn measure_saturation(
    addrs: &[SocketAddr],
    targets: &[Ipv4Addr],
    config: &SaturationConfig,
) -> io::Result<SaturationReport> {
    assert!(!addrs.is_empty(), "need at least one shard address");
    assert!(!targets.is_empty(), "need at least one target");
    let shards = addrs.len();
    // Pre-encode every target's query in permuted order; the send loop
    // cycles through the deck patching IDs.
    let deck: Vec<Vec<u8>> = Permutation::new(targets.len() as u64, config.seed)
        .map(|i| Message::query(0, Question::ptr_for(targets[i as usize])).encode())
        .collect();
    let socks: Vec<UdpSocket> = addrs
        .iter()
        .map(|a| {
            let s = UdpSocket::bind("127.0.0.1:0")?;
            s.connect(a)?;
            s.set_nonblocking(true)?;
            Ok(s)
        })
        .collect::<io::Result<_>>()?;

    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut sent = vec![0u64; shards];
    let mut recvd = vec![0u64; shards];
    let mut buf = [0u8; 1500];
    // Reusable send scratch: the deck entry is copied in (no per-send heap
    // allocation) and only the ID bytes are patched.
    let mut pkt: Vec<u8> = Vec::with_capacity(64);
    let mut next_pkt = 0usize;
    let mut seq: u16 = rng.gen();
    let mut total_sent = 0u64;
    let mut total_recvd = 0u64;
    let start = Instant::now();
    let mut timed_out = false;
    while total_recvd < config.total_queries {
        for k in 0..shards {
            while total_sent < config.total_queries && sent[k] - recvd[k] < config.window_per_shard
            {
                pkt.clear();
                pkt.extend_from_slice(&deck[next_pkt]);
                next_pkt = (next_pkt + 1) % deck.len();
                seq = seq.wrapping_add(1);
                pkt[0] = (seq >> 8) as u8;
                pkt[1] = seq as u8;
                match socks[k].send(&pkt) {
                    Ok(_) => {
                        sent[k] += 1;
                        total_sent += 1;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) => return Err(e),
                }
            }
            loop {
                match socks[k].recv(&mut buf) {
                    Ok(_) => {
                        recvd[k] += 1;
                        total_recvd += 1;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) => return Err(e),
                }
            }
        }
        if start.elapsed() > config.time_limit {
            timed_out = true;
            break;
        }
    }
    let elapsed = start.elapsed();
    Ok(SaturationReport {
        completed: total_recvd,
        sent: total_sent,
        elapsed,
        qps: total_recvd as f64 / elapsed.as_secs_f64().max(f64::EPSILON),
        timed_out,
    })
}
