//! rdns-loadgen: open-loop resolver load for the serve path.
//!
//! The paper's sweep universe is served by real operators to millions of
//! clients; this crate supplies the client side of that story for the
//! reproduction. It offers load to a [`rdns_dns::ShardedUdpServer`] three
//! ways:
//!
//! * [`schedule`] — a deterministic open-loop arrival timeline (Poisson or
//!   uniform), a pure function of the seed. The schedule *is* the workload:
//!   everything downstream merely replays it.
//! * [`generator`] — thousands of seeded logical clients replaying the
//!   timeline in wall-clock time over a few worker threads, recording
//!   per-shard latency into wall-clock telemetry histograms.
//! * [`saturation`] — a windowed closed-loop probe that measures the serve
//!   path's capacity ceiling in queries per second.
//!
//! Determinism contract: the *offered* load (arrival instants, target
//! order, per-client DNS message IDs) is seed-stable; the *observed* side
//! (latency, completion counts, drops) is wall-clock and must never feed
//! seed-stable state. Reuses the scanner's [`rdns_scan::Permutation`] for
//! burst-free target walks and [`rdns_scan::TokenBucket`] as an optional
//! rate ceiling.

pub mod generator;
pub mod saturation;
pub mod schedule;

pub use generator::{LoadGenerator, LoadReport, LoadStats};
pub use saturation::{measure_saturation, SaturationConfig, SaturationReport};
pub use schedule::{ArrivalProcess, ArrivalSchedule, LoadConfig, QueryEvent};
