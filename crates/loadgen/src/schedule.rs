//! Deterministic open-loop arrival schedules.
//!
//! An open-loop generator decides *when* to send from an arrival process,
//! not from response completions — the client population keeps offering
//! load even when the server lags, which is what exposes queueing collapse
//! (closed-loop harnesses self-throttle and hide it). The INET/OMNeT++ DNS
//! models drive their resolver workloads the same way.
//!
//! The whole timeline — arrival instants and query targets — is a pure
//! function of `(seed, process, rate, duration, targets)`. Client count and
//! worker count are dispatch concerns: they partition the timeline but never
//! reshape it, so two runs with the same seed offer byte-identical load no
//! matter how the work is spread ([`ArrivalSchedule::timeline_bytes`] is the
//! canonical encoding that pins this).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rdns_scan::Permutation;
use std::net::Ipv4Addr;
use std::time::Duration;

/// Stream-splitting constants: each consumer of the seed XORs its own tag so
/// the arrival clock, target walk, and per-client ID streams stay
/// uncorrelated.
const ARRIVAL_STREAM: u64 = 0xA551_7AC0_0001;
const TARGET_STREAM: u64 = 0x7A26_E700_0002;
const CYCLE_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// The inter-arrival process of the offered load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Exponential inter-arrivals (memoryless): the realistic model for
    /// many independent resolver clients.
    Poisson,
    /// Fixed inter-arrivals: a metronome, useful for SLO floors because the
    /// offered rate has zero variance.
    Uniform,
}

/// Configuration for a load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Master seed; every derived stream (arrivals, target order, per-client
    /// message IDs) is a pure function of it.
    pub seed: u64,
    /// Offered rate in queries per second.
    pub rate_qps: f64,
    /// How long the schedule runs.
    pub duration: Duration,
    /// Inter-arrival process.
    pub process: ArrivalProcess,
    /// Logical client population. Affects only dispatch (which client sends
    /// each query, hence which socket shard receives it) — never the
    /// timeline.
    pub clients: usize,
    /// Dispatch worker threads. Affects only how clients are partitioned
    /// across OS threads — never the timeline.
    pub workers: usize,
    /// Optional safety ceiling in queries per second, enforced with the
    /// scanner's [`rdns_scan::TokenBucket`]. `None` trusts the schedule.
    pub rate_ceiling: Option<f64>,
    /// How long to wait for in-flight responses after the last dispatch.
    pub drain_grace: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            seed: 0,
            rate_qps: 1000.0,
            duration: Duration::from_secs(1),
            process: ArrivalProcess::Poisson,
            clients: 1000,
            workers: 2,
            rate_ceiling: None,
            drain_grace: Duration::from_secs(1),
        }
    }
}

/// One scheduled query: fire at `at_nanos` (relative to run start) against
/// `target`'s PTR name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryEvent {
    /// Nanoseconds after run start.
    pub at_nanos: u64,
    /// The IPv4 address whose reverse name is queried.
    pub target: Ipv4Addr,
}

/// A fully materialised, time-ordered query timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalSchedule {
    events: Vec<QueryEvent>,
}

impl ArrivalSchedule {
    /// Generate the timeline for `config` over `targets`.
    ///
    /// Arrival instants come from a dedicated ChaCha8 stream; targets are
    /// visited in ZMap-style permuted order (no destination sees a burst of
    /// consecutive queries), re-permuted with a rotated seed on each full
    /// cycle. `config.clients` and `config.workers` are deliberately unused.
    pub fn generate(config: &LoadConfig, targets: &[Ipv4Addr]) -> ArrivalSchedule {
        assert!(config.rate_qps > 0.0, "rate must be positive");
        let horizon = config.duration.as_nanos() as u64;
        if targets.is_empty() || horizon == 0 {
            return ArrivalSchedule { events: Vec::new() };
        }
        let mut arrivals = ChaCha8Rng::seed_from_u64(config.seed ^ ARRIVAL_STREAM);
        let mut walk = TargetWalk::new(config.seed, targets.len() as u64);
        let interval_nanos = 1e9 / config.rate_qps;
        let mut events = Vec::new();
        let mut t = 0.0f64;
        let mut i = 0u64;
        loop {
            let at = match config.process {
                ArrivalProcess::Poisson => {
                    // Exponential inter-arrival: -ln(1-U)/λ, U ∈ [0,1).
                    let u: f64 = arrivals.gen();
                    t += -(1.0 - u).ln() * interval_nanos;
                    t
                }
                ArrivalProcess::Uniform => {
                    i += 1;
                    (i - 1) as f64 * interval_nanos
                }
            };
            let at_nanos = at as u64;
            if at_nanos >= horizon {
                return ArrivalSchedule { events };
            }
            events.push(QueryEvent {
                at_nanos,
                target: targets[walk.next_index() as usize],
            });
        }
    }

    /// The events in time order.
    pub fn events(&self) -> &[QueryEvent] {
        &self.events
    }

    /// Number of scheduled queries.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The offered timeline as a canonical byte string: 12 bytes per event
    /// (big-endian nanoseconds, then the four target octets). Two schedules
    /// offer identical load if and only if their timeline bytes match.
    pub fn timeline_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.events.len() * 12);
        for e in &self.events {
            out.extend_from_slice(&e.at_nanos.to_be_bytes());
            out.extend_from_slice(&e.target.octets());
        }
        out
    }
}

/// Endless permuted walk over `0..n`: each full cycle re-keys the
/// [`Permutation`] so consecutive cycles differ, yet the whole walk stays a
/// pure function of the seed.
struct TargetWalk {
    seed: u64,
    n: u64,
    cycle: u64,
    perm: Permutation,
}

impl TargetWalk {
    fn new(seed: u64, n: u64) -> TargetWalk {
        TargetWalk {
            seed,
            n,
            cycle: 0,
            perm: Permutation::new(n, seed ^ TARGET_STREAM),
        }
    }

    fn next_index(&mut self) -> u64 {
        loop {
            if let Some(i) = self.perm.next() {
                return i;
            }
            self.cycle += 1;
            self.perm = Permutation::new(
                self.n,
                self.seed ^ TARGET_STREAM ^ self.cycle.wrapping_mul(CYCLE_STRIDE),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets(n: u8) -> Vec<Ipv4Addr> {
        (0..n).map(|h| Ipv4Addr::new(10, 0, 0, h)).collect()
    }

    fn config(process: ArrivalProcess) -> LoadConfig {
        LoadConfig {
            seed: 42,
            rate_qps: 10_000.0,
            duration: Duration::from_millis(100),
            process,
            ..LoadConfig::default()
        }
    }

    #[test]
    fn uniform_schedule_is_a_metronome() {
        let s = ArrivalSchedule::generate(&config(ArrivalProcess::Uniform), &targets(16));
        assert_eq!(s.len(), 1000, "10k qps over 100ms");
        let gaps: Vec<u64> = s
            .events()
            .windows(2)
            .map(|w| w[1].at_nanos - w[0].at_nanos)
            .collect();
        assert!(
            gaps.iter().all(|g| (99_000..=101_000).contains(g)),
            "uniform gaps must all be ~100µs"
        );
    }

    #[test]
    fn poisson_schedule_hits_the_rate_on_average() {
        let s = ArrivalSchedule::generate(&config(ArrivalProcess::Poisson), &targets(16));
        // 1000 expected arrivals; 4σ ≈ 126.
        assert!(
            (850..=1150).contains(&s.len()),
            "poisson count {} too far from 1000",
            s.len()
        );
        assert!(
            s.events().windows(2).all(|w| w[0].at_nanos <= w[1].at_nanos),
            "events must be time-ordered"
        );
    }

    #[test]
    fn targets_are_spread_not_bursty() {
        let s = ArrivalSchedule::generate(&config(ArrivalProcess::Uniform), &targets(64));
        let repeats = s
            .events()
            .windows(2)
            .filter(|w| w[0].target == w[1].target)
            .count();
        assert!(repeats < 40, "permuted walk must not hammer one target: {repeats}");
        // Every target is visited (1000 events over 64 targets ≥ 15 cycles).
        let distinct: std::collections::BTreeSet<Ipv4Addr> =
            s.events().iter().map(|e| e.target).collect();
        assert_eq!(distinct.len(), 64);
    }

    #[test]
    fn empty_inputs_make_empty_schedules() {
        assert!(ArrivalSchedule::generate(&config(ArrivalProcess::Poisson), &[]).is_empty());
        let zero = LoadConfig {
            duration: Duration::ZERO,
            ..config(ArrivalProcess::Uniform)
        };
        assert!(ArrivalSchedule::generate(&zero, &targets(4)).is_empty());
    }

    #[test]
    fn timeline_bytes_roundtrip_identity() {
        let s = ArrivalSchedule::generate(&config(ArrivalProcess::Poisson), &targets(8));
        let bytes = s.timeline_bytes();
        assert_eq!(bytes.len(), s.len() * 12);
        let first = &bytes[..12];
        assert_eq!(&first[..8], &s.events()[0].at_nanos.to_be_bytes());
        assert_eq!(&first[8..], &s.events()[0].target.octets());
    }
}
