//! Satellite pin: the open-loop arrival schedule is a pure function of the
//! seed. Client and worker counts partition the dispatch of a timeline;
//! they must never change the timeline itself, or two "identical" load
//! runs with different thread counts would offer different workloads and
//! every cross-configuration comparison would be meaningless.

use proptest::prelude::*;
use rdns_loadgen::{ArrivalProcess, ArrivalSchedule, LoadConfig};
use std::net::Ipv4Addr;
use std::time::Duration;

fn targets(n: u16) -> Vec<Ipv4Addr> {
    (0..n)
        .map(|i| Ipv4Addr::new(10, 50, (i >> 8) as u8, i as u8))
        .collect()
}

fn config(
    seed: u64,
    process: ArrivalProcess,
    clients: usize,
    workers: usize,
) -> LoadConfig {
    LoadConfig {
        seed,
        rate_qps: 20_000.0,
        duration: Duration::from_millis(50),
        process,
        clients,
        workers,
        ..LoadConfig::default()
    }
}

proptest! {
    /// Same seed → byte-identical timeline, no matter how many clients or
    /// worker threads will later replay it.
    #[test]
    fn prop_timeline_pure_in_seed(
        seed in 0u64..10_000,
        process_sel in 0u8..2,
        clients in 1usize..5_000,
        workers in 1usize..16,
        n_targets in 1u16..512,
    ) {
        let process = if process_sel == 0 {
            ArrivalProcess::Poisson
        } else {
            ArrivalProcess::Uniform
        };
        let t = targets(n_targets);
        let reference =
            ArrivalSchedule::generate(&config(seed, process, 1, 1), &t).timeline_bytes();
        let varied =
            ArrivalSchedule::generate(&config(seed, process, clients, workers), &t)
                .timeline_bytes();
        prop_assert_eq!(&reference, &varied,
            "clients={} workers={} must not reshape the timeline", clients, workers);
    }

    /// Different seeds → distinct timelines (target order alone guarantees
    /// divergence even for the uniform metronome).
    #[test]
    fn prop_distinct_seeds_distinct_timelines(
        seed in 0u64..10_000,
        process_sel in 0u8..2,
    ) {
        let process = if process_sel == 0 {
            ArrivalProcess::Poisson
        } else {
            ArrivalProcess::Uniform
        };
        let t = targets(64);
        let a = ArrivalSchedule::generate(&config(seed, process, 10, 2), &t);
        let b = ArrivalSchedule::generate(&config(seed ^ 0xDEAD_BEEF, process, 10, 2), &t);
        prop_assert!(!a.is_empty());
        prop_assert_ne!(a.timeline_bytes(), b.timeline_bytes());
    }
}

#[test]
fn timeline_stable_across_repeated_generation() {
    let t = targets(100);
    let c = config(7, ArrivalProcess::Poisson, 100, 4);
    let a = ArrivalSchedule::generate(&c, &t).timeline_bytes();
    let b = ArrivalSchedule::generate(&c, &t).timeline_bytes();
    assert_eq!(a, b);
}
