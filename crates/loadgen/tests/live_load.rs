//! End-to-end: the generator and the saturation probe against a live
//! sharded server. Rates here are deliberately modest — CI boxes share
//! cores — the SLO-grade numbers live in the serve bench.

use rdns_dns::{FaultConfig, ShardedUdpServer, ZoneStore};
use rdns_loadgen::{
    measure_saturation, ArrivalProcess, LoadConfig, LoadGenerator, SaturationConfig,
};
use rdns_telemetry::Registry;
use std::net::{Ipv4Addr, SocketAddr};
use std::time::Duration;

fn test_store() -> (ZoneStore, Vec<Ipv4Addr>) {
    let store = ZoneStore::new();
    let mut targets = Vec::new();
    store.ensure_reverse_zone(Ipv4Addr::new(10, 77, 0, 1));
    for h in 0..=255u8 {
        let addr = Ipv4Addr::new(10, 77, 0, h);
        targets.push(addr);
        // Half the names exist: answered and NXDOMAIN paths both exercised.
        if h % 2 == 0 {
            store.set_ptr(
                addr,
                format!("host-{h}.resnet.example.edu").parse().unwrap(),
                300,
            );
        }
    }
    (store, targets)
}

fn spawn_shards(store: ZoneStore, n: usize) -> (Vec<SocketAddr>, rdns_dns::ShardedShutdownHandle) {
    let rt = tokio::runtime::Builder::new_multi_thread().build().unwrap();
    rt.block_on(async {
        let server = ShardedUdpServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            store,
            FaultConfig::default(),
            n,
        )
        .await
        .unwrap();
        let addrs = server.addrs().unwrap();
        let shutdown = server.shutdown_handle();
        tokio::spawn(server.run());
        (addrs, shutdown)
    })
}

#[test]
fn generator_completes_cleanly_against_live_shards() {
    let (store, targets) = test_store();
    let (addrs, shutdown) = spawn_shards(store, 2);
    let registry = Registry::new();
    let report = LoadGenerator::new(LoadConfig {
        seed: 11,
        rate_qps: 2_000.0,
        duration: Duration::from_millis(500),
        process: ArrivalProcess::Poisson,
        clients: 500,
        workers: 2,
        rate_ceiling: None,
        drain_grace: Duration::from_secs(2),
    })
    .with_registry(&registry)
    .run(&addrs, &targets)
    .unwrap();
    shutdown.shutdown();

    assert!(report.sent > 500, "should offer ~1000 queries: {report:?}");
    assert_eq!(report.failed(), 0, "no faults configured: {report:?}");
    assert_eq!(
        report.completed(),
        report.sent,
        "every query must be answered: {report:?}"
    );
    assert!(report.answered > 0, "even targets have PTRs: {report:?}");
    assert!(report.nxdomain > 0, "odd targets are NXDOMAIN: {report:?}");
    assert!(report.max_in_flight > 0);
    assert_eq!(report.latency_counts.len(), 2);
    for (k, n) in report.latency_counts.iter().enumerate() {
        assert!(*n > 0, "shard {k} must have observed latency samples");
    }
    assert!(report.p50_us.is_some() && report.p99_us.is_some() && report.p999_us.is_some());
    assert!(report.p50_us <= report.p99_us && report.p99_us <= report.p999_us);

    // The registry view carries the same story: labeled per-shard latency
    // histograms with quantile estimates (wall-clock class).
    let json = registry.render_json();
    assert!(json.contains(r#"rdns_loadgen_latency_us{shard=\"0\"}"#));
    assert!(json.contains(r#"rdns_loadgen_latency_us{shard=\"1\"}"#));
    assert!(json.contains("\"p999\""));
    // And the deterministic render drops every wall-clock loadgen metric.
    assert!(!registry.render_json_deterministic().contains("rdns_loadgen"));
}

#[test]
fn generator_load_is_spread_across_all_shards() {
    let (store, targets) = test_store();
    let (addrs, shutdown) = spawn_shards(store.clone(), 4);
    let report = LoadGenerator::new(LoadConfig {
        seed: 3,
        rate_qps: 2_000.0,
        duration: Duration::from_millis(300),
        process: ArrivalProcess::Uniform,
        clients: 400,
        workers: 2,
        rate_ceiling: None,
        drain_grace: Duration::from_secs(2),
    })
    .run(&addrs, &targets)
    .unwrap();
    shutdown.shutdown();
    assert_eq!(report.latency_counts.len(), 4);
    for (k, n) in report.latency_counts.iter().enumerate() {
        assert!(*n > 0, "client % 4 assignment must load shard {k}: {report:?}");
    }
}

#[test]
fn rate_ceiling_throttles_an_over_eager_schedule() {
    let (store, targets) = test_store();
    let (addrs, shutdown) = spawn_shards(store, 1);
    // Offer 5k qps but cap at 500: the bucket must intervene.
    let report = LoadGenerator::new(LoadConfig {
        seed: 5,
        rate_qps: 5_000.0,
        duration: Duration::from_millis(400),
        process: ArrivalProcess::Uniform,
        clients: 100,
        workers: 1,
        rate_ceiling: Some(500.0),
        drain_grace: Duration::from_secs(2),
    })
    .run(&addrs, &targets)
    .unwrap();
    shutdown.shutdown();
    assert!(
        report.throttled > 0,
        "a 10x over-offered schedule must hit the ceiling: {report:?}"
    );
    // The ceiling defers, it doesn't drop: all 2000 queries go out, but
    // paced at ≤500 qps — the wall-clock rate is what the cap promises.
    assert_eq!(report.sent, 2000, "{report:?}");
    assert!(
        report.offered_qps < 750.0,
        "the achieved send rate must respect the 500 qps ceiling: {report:?}"
    );
    assert!(
        report.elapsed >= Duration::from_secs(3),
        "pacing 2000 queries at 500 qps must stretch the run: {report:?}"
    );
}

#[test]
fn saturation_probe_measures_positive_capacity() {
    let (store, targets) = test_store();
    let (addrs, shutdown) = spawn_shards(store, 2);
    let report = measure_saturation(
        &addrs,
        &targets,
        &SaturationConfig {
            total_queries: 5_000,
            window_per_shard: 32,
            seed: 9,
            time_limit: Duration::from_secs(20),
        },
    )
    .unwrap();
    shutdown.shutdown();
    assert!(!report.timed_out, "5k queries must finish fast: {report:?}");
    assert_eq!(report.completed, 5_000);
    assert!(report.qps > 1_000.0, "loopback capacity sanity: {report:?}");
}
